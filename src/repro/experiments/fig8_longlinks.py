"""Figure 8 — influence of the number of long-range links on routing.

The paper varies the number of long-range links per object from 1 to 10
(all drawn with the same Choose-LRT distribution) for the uniform and the
α = 5 distributions and plots mean route length vs overlay size for each
link count: more links consistently help, with diminishing returns beyond
about 6.  This driver measures the same family of curves at one overlay
size per link count (plus the full per-size sweep when requested).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.analysis.hops import HopStatistics, measure_routing
from repro.analysis.plots import ascii_series, format_table
from repro.experiments.common import (
    EVALUATION_CELLS_PER_AXIS,
    build_overlay,
    env_scale,
    parallel_tasks,
    scaled,
)
from repro.utils.rng import RandomSource
from repro.workloads.distributions import (
    ObjectDistribution,
    PowerLawDistribution,
    UniformDistribution,
)

__all__ = ["Fig8Result", "run_fig8", "format_fig8"]


@dataclass(frozen=True)
class Fig8Result:
    """Mean route length per (distribution, number of long links)."""

    overlay_size: int
    link_counts: List[int]
    num_pairs: int
    results: Dict[str, Dict[int, HopStatistics]]

    def mean_hops(self, distribution: str) -> List[float]:
        return [self.results[distribution][k].mean for k in self.link_counts]


def _link_count_task(name: str, distribution: ObjectDistribution, count: int,
                     build_seed: int, measure_seed: int, k: int,
                     num_pairs: int):
    """One (distribution, link-count) grid cell — the unit of parallelism."""
    overlay = build_overlay(distribution, count, build_seed, num_long_links=k)
    stats = measure_routing(overlay, num_pairs, RandomSource(measure_seed))
    return name, k, stats


def run_fig8(scale: float | None = None, seed: int = 1008, *,
             link_counts: Sequence[int] = (1, 2, 3, 4, 6, 8, 10),
             workers: int | None = None) -> Fig8Result:
    """Run the Figure 8 experiment.

    Parameters
    ----------
    scale:
        Size multiplier; 1.0 uses 3 000-object overlays and 500 measured
        pairs per configuration.
    link_counts:
        Numbers of long links to evaluate (the paper sweeps 1–10).
    workers:
        Worker processes for the (distribution × link-count) grid — every
        cell builds and measures its own overlay, so the grid is
        embarrassingly parallel (``None`` reads ``REPRO_WORKERS``).
    """
    scale = env_scale() if scale is None else scale
    count = scaled(3000, scale)
    num_pairs = scaled(500, scale, minimum=50)
    distributions = {
        "uniform": UniformDistribution(),
        "powerlaw-a5": PowerLawDistribution(alpha=5.0, cells_per_axis=EVALUATION_CELLS_PER_AXIS),
    }
    tasks = []
    for d_index, (name, distribution) in enumerate(distributions.items()):
        for k_index, k in enumerate(link_counts):
            tasks.append((name, distribution, count,
                          seed + 10 * d_index + k_index,
                          seed + 500 + 10 * d_index + k_index, k, num_pairs))
    results: Dict[str, Dict[int, HopStatistics]] = {name: {} for name in distributions}
    for name, k, stats in parallel_tasks(_link_count_task, tasks, workers):
        results[name][k] = stats
    return Fig8Result(overlay_size=count, link_counts=list(link_counts),
                      num_pairs=num_pairs, results=results)


def format_fig8(result: Fig8Result) -> str:
    """Render the Figure 8 reproduction (table + ASCII curve for uniform)."""
    lines = [
        f"Figure 8 — routing vs number of long links ({result.overlay_size} objects, "
        f"{result.num_pairs} pairs)"
    ]
    headers = ["long links"] + list(result.results.keys())
    rows = []
    for k in result.link_counts:
        rows.append([k] + [result.results[name][k].mean for name in result.results])
    lines.append(format_table(headers, rows))
    uniform = result.results.get("uniform")
    if uniform:
        lines.append("")
        lines.append("[uniform] mean hops vs number of long links")
        lines.append(ascii_series(result.link_counts,
                                  [uniform[k].mean for k in result.link_counts],
                                  x_label="long links", y_label="hops"))
    return "\n".join(lines)

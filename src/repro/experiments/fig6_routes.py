"""Figure 6 — mean route length vs overlay size for the four distributions.

The paper grows overlays to 300 000 objects, measuring the mean greedy
route length over 100 000 random object pairs after every 10 000 joins,
for the uniform and the three power-law distributions, with one long link
per object.  The curves are poly-logarithmic and essentially independent of
the distribution.  This driver performs the same sweep at a configurable
scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.hops import (
    RoutingSweepPoint,
    sweep_overlay_sizes,
    sweep_protocol_overlay_sizes,
)
from repro.analysis.plots import ascii_series, format_table
from repro.core import VoroNet, VoroNetConfig
from repro.experiments.common import (
    CAPACITY_HEADROOM,
    checkpoint_schedule,
    env_scale,
    evaluation_distributions,
    parallel_tasks,
    scaled,
)
from repro.simulation.protocol import ProtocolSimulator
from repro.utils.rng import RandomSource
from repro.workloads.distributions import ObjectDistribution
from repro.workloads.generators import generate_objects

__all__ = ["Fig6Result", "run_fig6", "format_fig6"]


@dataclass(frozen=True)
class Fig6Result:
    """Route-length sweeps, one series per distribution."""

    checkpoints: List[int]
    num_pairs: int
    series: Dict[str, List[RoutingSweepPoint]]

    def mean_hops(self, distribution: str) -> List[float]:
        """The mean-hop series of one distribution, in checkpoint order."""
        return [point.mean_hops for point in self.series[distribution]]


def _sweep_one_distribution(distribution: ObjectDistribution, index: int,
                            seed: int, max_size: int, checkpoints: List[int],
                            num_pairs: int, num_long_links: int,
                            use_long_links: bool, use_bulk_load: bool,
                            use_protocol: bool):
    """One distribution's full sweep — the unit of work of ``run_fig6``.

    Module-level (not a closure) so :func:`parallel_tasks` can ship it to a
    worker process; everything it needs is rebuilt worker-side from seeds
    and primitives.  Returns ``(name, points)``.
    """
    rng = RandomSource(seed + index)
    positions = generate_objects(distribution, max_size, rng)

    if use_protocol:
        def protocol_factory(seed_offset=index) -> ProtocolSimulator:
            return ProtocolSimulator(VoroNetConfig(
                n_max=CAPACITY_HEADROOM * max_size,
                num_long_links=num_long_links,
                seed=seed + 100 + seed_offset,
            ), seed=seed + 100 + seed_offset)

        return distribution.name, sweep_protocol_overlay_sizes(
            positions, checkpoints, rng,
            num_pairs=num_pairs,
            simulator_factory=protocol_factory,
        )

    def factory(seed_offset=index) -> VoroNet:
        return VoroNet(VoroNetConfig(
            n_max=CAPACITY_HEADROOM * max_size,
            num_long_links=num_long_links,
            seed=seed + 100 + seed_offset,
        ))

    return distribution.name, sweep_overlay_sizes(
        positions, checkpoints, rng,
        num_pairs=num_pairs,
        overlay_factory=factory,
        use_long_links=use_long_links,
        use_bulk_load=use_bulk_load,
    )


def run_fig6(scale: float | None = None, seed: int = 1006, *,
             num_long_links: int = 1,
             use_long_links: bool = True,
             use_bulk_load: bool = False,
             use_protocol: bool = False,
             workers: int | None = None) -> Fig6Result:
    """Run the Figure 6 sweep.

    Parameters
    ----------
    scale:
        Size multiplier; 1.0 sweeps up to 6 000 objects in 6 checkpoints with
        600 measured pairs per checkpoint (the paper: 300 000 / 30 / 100 000).
    num_long_links / use_long_links:
        Overridden by the Figure 8 and baseline drivers to reuse the sweep.
    use_bulk_load:
        Grow the overlay between checkpoints with ``bulk_load`` instead of
        sequential routed joins — same measured structure, an order of
        magnitude cheaper to build, enabling paper-scale sweeps (N ≥ 10⁴).
    use_protocol:
        Run the sweep *message-level*: overlays grow through
        ``ProtocolSimulator.bulk_join`` and every measured route is a
        greedy ``QUERY`` over strictly local views — the ground-truth
        validation of the oracle sweep, now reaching N = 10⁴ thanks to the
        batched join pipeline (a sequential-join sweep capped out two
        orders of magnitude lower).  ``use_long_links`` must stay on —
        protocol nodes always route over their full view.
    workers:
        Worker processes for the four per-distribution sweeps (they are
        fully independent: distinct seeds, distinct overlays).  ``None``
        reads ``REPRO_WORKERS`` (default serial); results are identical to
        a serial run for any worker count.
    """
    scale = env_scale() if scale is None else scale
    max_size = scaled(6000, scale)
    checkpoints = checkpoint_schedule(max_size, 6)
    num_pairs = scaled(600, scale, minimum=50)
    if use_protocol and not use_long_links:
        raise ValueError("the protocol-mode sweep always routes over full "
                         "views; use_long_links=False is oracle-only")
    tasks = [
        (distribution, index, seed, max_size, checkpoints, num_pairs,
         num_long_links, use_long_links, use_bulk_load, use_protocol)
        for index, distribution in enumerate(evaluation_distributions())
    ]
    series: Dict[str, List[RoutingSweepPoint]] = dict(
        parallel_tasks(_sweep_one_distribution, tasks, workers))
    return Fig6Result(checkpoints=checkpoints, num_pairs=num_pairs, series=series)


def format_fig6(result: Fig6Result) -> str:
    """Render the Figure 6 reproduction as a table plus an ASCII plot."""
    lines = [
        "Figure 6 — mean route length vs overlay size "
        f"({result.num_pairs} pairs per checkpoint)"
    ]
    headers = ["objects"] + list(result.series.keys())
    rows = []
    for i, size in enumerate(result.checkpoints):
        rows.append([size] + [result.series[name][i].mean_hops
                              for name in result.series])
    lines.append(format_table(headers, rows))
    uniform = result.series.get("uniform")
    if uniform:
        lines.append("")
        lines.append("[uniform] mean hops vs overlay size")
        lines.append(ascii_series(
            [p.size for p in uniform], [p.mean_hops for p in uniform],
            x_label="objects", y_label="hops"))
    return "\n".join(lines)

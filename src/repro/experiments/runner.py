"""Command-line experiment runner.

Usage::

    python -m repro.experiments fig5            # one experiment
    python -m repro.experiments all             # everything
    python -m repro.experiments fig6 --scale 2  # larger run

Results are printed as text (tables + ASCII plots); redirect to a file to
archive a run.  ``--scale`` multiplies every workload size; the default of
1.0 finishes on a laptop in minutes, the paper's full 300 000-object runs
correspond to scale ≈ 50–75 for Figures 5–8.
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time
from typing import Callable, Dict, Tuple

from repro.experiments.ablation_baselines import format_baseline_comparison, run_baseline_comparison
from repro.experiments.ablation_churn_protocol import (
    format_churn_protocol,
    run_ablation_churn_protocol,
)
from repro.experiments.ablation_close_neighbors import format_ablation_close, run_ablation_close
from repro.experiments.ablation_maintenance import format_maintenance, run_maintenance_experiment
from repro.experiments.fig5_degree import format_fig5, run_fig5
from repro.experiments.fig6_routes import format_fig6, run_fig6
from repro.experiments.fig7_slope import format_fig7, run_fig7
from repro.experiments.fig8_longlinks import format_fig8, run_fig8

__all__ = ["main", "EXPERIMENTS"]

#: Registry of experiment name → (runner, formatter).
EXPERIMENTS: Dict[str, Tuple[Callable, Callable]] = {
    "fig5": (run_fig5, format_fig5),
    "fig6": (run_fig6, format_fig6),
    "fig7": (run_fig7, format_fig7),
    "fig8": (run_fig8, format_fig8),
    "abl1-close": (run_ablation_close, format_ablation_close),
    "abl2-baselines": (run_baseline_comparison, format_baseline_comparison),
    "abl3-maintenance": (run_maintenance_experiment, format_maintenance),
    "abl4-churn-protocol": (run_ablation_churn_protocol, format_churn_protocol),
}


def main(argv=None) -> int:
    """Entry point of ``python -m repro.experiments``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the VoroNet paper's evaluation figures.",
    )
    parser.add_argument("experiment", choices=sorted(EXPERIMENTS) + ["all"],
                        help="which experiment to run")
    parser.add_argument("--scale", type=float, default=None,
                        help="workload scale factor (default 1.0, paper scale ≈ 50-75)")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the experiment's base seed")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes for parallelisable sweeps "
                             "(0 = all CPUs; default serial, or REPRO_WORKERS); "
                             "results are identical for any worker count")
    args = parser.parse_args(argv)

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        runner, formatter = EXPERIMENTS[name]
        kwargs = {}
        if args.scale is not None:
            kwargs["scale"] = args.scale
        if args.seed is not None:
            kwargs["seed"] = args.seed
        if (args.workers is not None
                and "workers" in inspect.signature(runner).parameters):
            kwargs["workers"] = args.workers
        started = time.time()
        result = runner(**kwargs)
        elapsed = time.time() - started
        print("=" * 72)
        print(formatter(result))
        print(f"[{name} completed in {elapsed:.1f}s]")
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

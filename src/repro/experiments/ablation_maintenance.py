"""ABL3 — maintenance cost of joins and departures.

Section 4.2 argues that, beyond the poly-logarithmic routing phase, every
join and leave touches only an O(1) neighbourhood (region updates, close
declarations, long-link hand-overs).  This experiment measures exactly
that, in both execution modes:

* the oracle overlay reports the accounted message counts per operation
  (``OverlayStats``), across growing overlay sizes — the per-operation cost
  must stay flat while the routing hops grow poly-logarithmically;
* the message-level protocol simulator reports the true number of network
  messages per operation, validating the oracle-mode accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.analysis.plots import format_table
from repro.core import VoroNet, VoroNetConfig
from repro.experiments.common import CAPACITY_HEADROOM, env_scale, scaled
from repro.simulation.protocol import ProtocolSimulator
from repro.utils.rng import RandomSource
from repro.workloads.distributions import UniformDistribution
from repro.workloads.generators import generate_objects

__all__ = ["MaintenanceResult", "run_maintenance_experiment", "format_maintenance"]


@dataclass(frozen=True)
class MaintenanceResult:
    """Per-size maintenance costs (oracle mode) plus a protocol-mode sample."""

    sizes: List[int]
    join_messages: Dict[int, float]
    join_routing_hops: Dict[int, float]
    leave_messages: Dict[int, float]
    protocol_join_messages: float
    protocol_leave_messages: float
    protocol_size: int


def run_maintenance_experiment(scale: float | None = None,
                               seed: int = 2003, *,
                               use_bulk_join: bool = False) -> MaintenanceResult:
    """Measure join/leave message costs across overlay sizes.

    With ``use_bulk_join=True`` the protocol-mode base population is built
    through :meth:`~repro.simulation.protocol.ProtocolSimulator.bulk_join`
    instead of sequential routed joins, and sampled at the *largest* sweep
    size instead of the smallest — the probe joins/leaves still run the
    full sequential protocol, so the measured per-operation costs keep
    their paper semantics while the ground-truth sample reaches the sizes
    the oracle sweep covers.
    """
    scale = env_scale() if scale is None else scale
    sizes = [scaled(base, scale) for base in (500, 1000, 2000, 4000)]
    probe_count = scaled(200, scale, minimum=20)
    join_messages: Dict[int, float] = {}
    join_hops: Dict[int, float] = {}
    leave_messages: Dict[int, float] = {}
    for index, size in enumerate(sizes):
        rng = RandomSource(seed + index)
        positions = generate_objects(UniformDistribution(), size + probe_count, rng)
        # use_locate_index=False: this experiment measures the paper's
        # protocol costs, so every operation must enter the overlay at a
        # random peer — no grid-hinted entry-point shortcuts, now or under
        # any future default-entry policy.
        overlay = VoroNet(VoroNetConfig(
            n_max=CAPACITY_HEADROOM * (size + probe_count), seed=seed + index,
            use_locate_index=False))
        overlay.insert_many(positions[:size])
        overlay.stats.reset()
        # Measure a batch of fresh joins at this size...
        extra = overlay.insert_many(positions[size:size + probe_count])
        join_messages[size] = overlay.stats.joins.mean_messages
        join_hops[size] = overlay.stats.joins.mean_hops
        # ...and the matching departures.
        for victim in extra:
            overlay.remove(victim)
        leave_messages[size] = overlay.stats.leaves.mean_messages

    # Protocol-mode sample (message-level ground truth): built sequentially
    # at the smallest size, or via the batched bulk join at the largest.
    protocol_size = sizes[-1] if use_bulk_join else sizes[0]
    protocol_probes = min(100, probe_count)
    simulator = ProtocolSimulator(
        VoroNetConfig(n_max=CAPACITY_HEADROOM * (protocol_size + protocol_probes),
                      seed=seed), seed=seed)
    rng = RandomSource(seed + 99)
    positions = generate_objects(UniformDistribution(),
                                 protocol_size + protocol_probes, rng)
    if use_bulk_join:
        simulator.bulk_join(positions[:protocol_size])
    else:
        for position in positions[:protocol_size]:
            simulator.join(position)
    join_reports = [simulator.join(p) for p in positions[protocol_size:]]
    leave_reports = [simulator.leave(r.object_id) for r in join_reports]
    return MaintenanceResult(
        sizes=sizes,
        join_messages=join_messages,
        join_routing_hops=join_hops,
        leave_messages=leave_messages,
        protocol_join_messages=float(np.mean([r.messages for r in join_reports])),
        protocol_leave_messages=float(np.mean([r.messages for r in leave_reports])),
        protocol_size=protocol_size,
    )


def format_maintenance(result: MaintenanceResult) -> str:
    """Render the maintenance-cost experiment."""
    lines = ["Ablation ABL3 — maintenance cost per operation"]
    rows = [
        [size, result.join_routing_hops[size], result.join_messages[size],
         result.leave_messages[size]]
        for size in result.sizes
    ]
    lines.append(format_table(
        ["overlay size", "join routing hops", "join messages", "leave messages"],
        rows))
    lines.append("")
    lines.append(
        f"Protocol-mode ground truth at {result.protocol_size} objects: "
        f"join = {result.protocol_join_messages:.1f} messages, "
        f"leave = {result.protocol_leave_messages:.1f} messages"
    )
    return "\n".join(lines)

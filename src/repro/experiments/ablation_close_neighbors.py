"""ABL1 — the role of the close-neighbour sets ``cn(o)``.

The paper introduces close neighbours so routing keeps making progress when
"many objects are gathered in a small area" (Section 3.1).  This ablation
builds heavily clustered overlays with and without close-neighbour
maintenance and compares routing cost and view size, quantifying what the
sets buy and what they cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.analysis.hops import HopStatistics, measure_routing
from repro.analysis.plots import format_table
from repro.experiments.common import build_overlay, env_scale, parallel_tasks, scaled
from repro.utils.rng import RandomSource
from repro.workloads.distributions import (
    ClusteredDistribution,
    ObjectDistribution,
    PowerLawDistribution,
)

__all__ = ["AblationCloseResult", "run_ablation_close", "format_ablation_close"]


@dataclass(frozen=True)
class AblationCloseResult:
    """Routing and view-size figures with and without close neighbours."""

    overlay_size: int
    num_pairs: int
    routing: Dict[str, Dict[str, HopStatistics]]      # workload -> variant -> stats
    mean_view_size: Dict[str, Dict[str, float]]       # workload -> variant -> mean


def _ablation_cell_task(workload_name: str, distribution: ObjectDistribution,
                        variant: str, keep_close: bool, count: int,
                        build_seed: int, measure_seed: int, num_pairs: int):
    """One (workload, variant) ablation cell — the unit of parallelism."""
    overlay = build_overlay(distribution, count, build_seed,
                            maintain_close_neighbors=keep_close)
    stats = measure_routing(overlay, num_pairs, RandomSource(measure_seed))
    mean_view = float(np.mean(list(overlay.view_sizes().values())))
    return workload_name, variant, stats, mean_view


def run_ablation_close(scale: float | None = None, seed: int = 2001, *,
                       workers: int | None = None) -> AblationCloseResult:
    """Run the close-neighbour ablation on two clustered workloads.

    The 2×2 (workload × variant) grid builds four independent overlays;
    ``workers`` spreads the cells over processes (``None`` reads
    ``REPRO_WORKERS``; results are worker-count independent).
    """
    scale = env_scale() if scale is None else scale
    count = scaled(2000, scale)
    num_pairs = scaled(400, scale, minimum=50)
    workloads = {
        "clustered": ClusteredDistribution(num_clusters=5, spread=0.01),
        "powerlaw-a5": PowerLawDistribution(alpha=5.0),
    }
    tasks = []
    for w_index, (workload_name, distribution) in enumerate(workloads.items()):
        for variant, keep_close in (("with-cn", True), ("without-cn", False)):
            tasks.append((workload_name, distribution, variant, keep_close,
                          count, seed + w_index, seed + 50 + w_index, num_pairs))
    routing: Dict[str, Dict[str, HopStatistics]] = {name: {} for name in workloads}
    views: Dict[str, Dict[str, float]] = {name: {} for name in workloads}
    for workload_name, variant, stats, mean_view in parallel_tasks(
            _ablation_cell_task, tasks, workers):
        routing[workload_name][variant] = stats
        views[workload_name][variant] = mean_view
    return AblationCloseResult(overlay_size=count, num_pairs=num_pairs,
                               routing=routing, mean_view_size=views)


def format_ablation_close(result: AblationCloseResult) -> str:
    """Render the ablation as a table."""
    lines = [
        f"Ablation ABL1 — close-neighbour sets ({result.overlay_size} objects, "
        f"{result.num_pairs} pairs)"
    ]
    rows = []
    for workload, variants in result.routing.items():
        for variant, stats in variants.items():
            rows.append([
                workload, variant, stats.mean, stats.p95, stats.maximum,
                result.mean_view_size[workload][variant],
            ])
    lines.append(format_table(
        ["workload", "variant", "mean hops", "p95 hops", "max hops", "mean view"],
        rows))
    return "\n".join(lines)

"""ABL2 — VoroNet against the baseline systems.

Compares greedy routing on the same object placement across:

* full VoroNet (Voronoi + close + long links),
* Delaunay-only (no long links) — isolates the Kleinberg mechanism,
* a random-graph overlay (uniform random long links) — shows that the
  harmonic distribution, not the mere presence of shortcuts, provides
  navigability,
* the Kleinberg grid of comparable size — the construction VoroNet
  generalises (regular placement only),
* a Chord ring of comparable size — exact-match lookups plus the cost of a
  range query, the scenario the introduction argues hash-based overlays
  handle poorly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.analysis.hops import measure_routing
from repro.analysis.plots import format_table
from repro.baselines.chord import ChordRing
from repro.baselines.delaunay_only import DelaunayOnlyOverlay
from repro.baselines.kleinberg import KleinbergBaseline
from repro.baselines.random_graph import RandomGraphOverlay
from repro.core import range_query
from repro.experiments.common import CAPACITY_HEADROOM, build_overlay, env_scale, scaled
from repro.geometry.bounding import BoundingBox
from repro.utils.rng import RandomSource
from repro.workloads.distributions import UniformDistribution
from repro.workloads.generators import generate_objects, generate_routing_pairs

__all__ = ["BaselineComparisonResult", "run_baseline_comparison", "format_baseline_comparison"]


@dataclass(frozen=True)
class BaselineComparisonResult:
    """Per-system routing figures on comparable object populations."""

    overlay_size: int
    num_pairs: int
    mean_hops: Dict[str, float]
    success_rate: Dict[str, float]
    range_query_messages: Dict[str, float] = field(default_factory=dict)


def run_baseline_comparison(scale: float | None = None,
                            seed: int = 2002) -> BaselineComparisonResult:
    """Run the baseline comparison on a uniform placement."""
    scale = env_scale() if scale is None else scale
    count = scaled(2500, scale)
    num_pairs = scaled(400, scale, minimum=50)
    rng = RandomSource(seed)
    positions = generate_objects(UniformDistribution(), count, rng)

    mean_hops: Dict[str, float] = {}
    success: Dict[str, float] = {}
    range_messages: Dict[str, float] = {}

    # --- VoroNet -------------------------------------------------------
    voronet = build_overlay(UniformDistribution(), count, seed)
    stats = measure_routing(voronet, num_pairs, RandomSource(seed + 1))
    mean_hops["voronet"] = stats.mean
    success["voronet"] = 1.0

    # --- Delaunay-only --------------------------------------------------
    delaunay = DelaunayOnlyOverlay(n_max=CAPACITY_HEADROOM * count, seed=seed)
    delaunay.insert_many(positions)
    pairs = generate_routing_pairs(delaunay.object_ids(), num_pairs, RandomSource(seed + 2))
    hops = [delaunay.route(a, b).hops for a, b in pairs]
    mean_hops["delaunay-only"] = float(np.mean(hops))
    success["delaunay-only"] = 1.0

    # --- Random graph ----------------------------------------------------
    random_graph = RandomGraphOverlay(positions, links_per_node=7,
                                      rng=RandomSource(seed + 3))
    report = random_graph.measure(num_pairs, RandomSource(seed + 4))
    mean_hops["random-graph"] = float(report["mean_hops"])
    success["random-graph"] = float(report["success_rate"])

    # --- Kleinberg grid of comparable size ------------------------------
    side = max(4, int(round(count ** 0.5)))
    grid = KleinbergBaseline(side, rng=RandomSource(seed + 5))
    mean_hops["kleinberg-grid"] = grid.mean_route_length(num_pairs, RandomSource(seed + 6))
    success["kleinberg-grid"] = 1.0

    # --- Chord -----------------------------------------------------------
    ring = ChordRing(bits=24)
    for i in range(count):
        ring.join(f"node-{i}")
    lookups = [ring.lookup_key(f"key-{i}").hops for i in range(num_pairs)]
    mean_hops["chord"] = float(np.mean(lookups))
    success["chord"] = 1.0

    # --- Range query cost: VoroNet spread vs Chord per-value lookups ----
    # Query: attribute0 in [0.4, 0.6] with attribute1 in a narrow band.  The
    # DHT cannot exploit attribute locality: it must look up every *possible*
    # discrete value of the ranged attribute (the paper's "querying the
    # entire set of possible values for that range"), regardless of how many
    # objects actually match.  VoroNet pays routing plus a spread over the
    # regions intersecting the query rectangle.
    box = BoundingBox(0.40, 0.40, 0.60, 0.45)
    voro_result = range_query(voronet, box, start=voronet.random_object_id())
    range_messages["voronet"] = float(voro_result.total_messages)
    value_granularity = 256  # discrete values per attribute in the catalogue
    values_in_range = max(1, int(round(box.width * value_granularity)))
    chord_total, _ = ring.range_query_cost(
        [f"value-{i}" for i in range(values_in_range)])
    range_messages["chord"] = float(chord_total)

    return BaselineComparisonResult(
        overlay_size=count, num_pairs=num_pairs,
        mean_hops=mean_hops, success_rate=success,
        range_query_messages=range_messages,
    )


def format_baseline_comparison(result: BaselineComparisonResult) -> str:
    """Render the baseline comparison tables."""
    lines = [
        f"Ablation ABL2 — baseline comparison ({result.overlay_size} objects, "
        f"{result.num_pairs} pairs)"
    ]
    rows = [
        [system, result.mean_hops[system], result.success_rate[system]]
        for system in result.mean_hops
    ]
    lines.append(format_table(["system", "mean hops", "success rate"], rows))
    if result.range_query_messages:
        lines.append("")
        lines.append("Range query (same selectivity):")
        lines.append(format_table(
            ["system", "messages"],
            [[k, v] for k, v in result.range_query_messages.items()]))
    return "\n".join(lines)

"""ABL4 — message-level churn, crashes and self-healing repair.

The paper gives a graceful departure protocol (Section 3.3) and leaves
crash recovery open; PR 3's oracle-mode crash studies quantified the
damage, and the fault subsystem (:mod:`repro.simulation.faults`) now
repairs it through real messages.  This experiment sweeps the crash
fraction on a bulk-joined protocol overlay and reports, per fraction:

* the damage abrupt failures leave in surviving local views (dangling
  long links, stale close neighbours, dangling back registrations, stale
  Voronoi entries),
* how many heartbeat rounds detection needs and how many phased repair
  rounds convergence needs,
* the message cost of every phase (build / churn / detect / repair, with
  the repair sub-phases broken out), and
* whether the overlay converged back to a clean ``verify_views()`` with
  zero residual damage — entirely via messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.analysis.plots import format_table
from repro.experiments.common import env_scale, scaled
from repro.simulation.faults import ProtocolChurnHarness, ProtocolChurnReport

__all__ = ["ChurnProtocolResult", "run_ablation_churn_protocol",
           "format_churn_protocol"]


@dataclass(frozen=True)
class ChurnProtocolResult:
    """Per-crash-fraction churn/repair reports on one overlay size."""

    overlay_size: int
    churn_events: int
    loss_probability: float
    crash_fractions: List[float]
    reports: Dict[float, ProtocolChurnReport]

    @property
    def all_converged(self) -> bool:
        return all(report.converged for report in self.reports.values())


def run_ablation_churn_protocol(scale: float | None = None, seed: int = 2007, *,
                                crash_fractions: Sequence[float] = (0.05, 0.1, 0.2),
                                loss_probability: float = 0.0,
                                max_repair_rounds: int = 12) -> ChurnProtocolResult:
    """Run the churn + crash + repair sweep.

    Parameters
    ----------
    scale:
        Size multiplier; 1.0 builds 800-object overlays with 48 churn
        events per fraction (the acceptance-criterion scale of 1 000
        objects at 10 % crashes corresponds to the benchmark driver).
    crash_fractions:
        Fractions of the post-churn population crashed per run.
    loss_probability:
        Message-loss probability applied during detection and repair —
        non-zero values exercise the retry-safety of the repair rounds.
    """
    scale = env_scale() if scale is None else scale
    size = scaled(800, scale, minimum=64)
    churn_events = scaled(48, scale, minimum=16)
    reports: Dict[float, ProtocolChurnReport] = {}
    for index, fraction in enumerate(crash_fractions):
        harness = ProtocolChurnHarness(
            num_objects=size,
            seed=seed + index,
            churn_events=churn_events,
            crash_fraction=fraction,
            loss_probability=loss_probability,
            max_repair_rounds=max_repair_rounds,
        )
        reports[fraction] = harness.run()
    return ChurnProtocolResult(
        overlay_size=size,
        churn_events=churn_events,
        loss_probability=loss_probability,
        crash_fractions=list(crash_fractions),
        reports=reports,
    )


def format_churn_protocol(result: ChurnProtocolResult) -> str:
    """Render the ABL4 experiment as damage/convergence/cost tables."""
    lines = [
        "Ablation ABL4 — protocol-mode crash damage and self-healing repair "
        f"({result.overlay_size} objects, {result.churn_events} churn events, "
        f"loss p={result.loss_probability})"
    ]
    rows = []
    for fraction in result.crash_fractions:
        report = result.reports[fraction]
        damage = report.damage
        rows.append([
            f"{fraction:.0%}",
            report.crashed,
            damage.total_stale_entries,
            damage.affected_objects,
            report.detection_rounds,
            report.repair.rounds,
            report.phase_messages.get("detect", 0),
            report.phase_messages.get("repair", 0),
            "yes" if report.converged else "NO",
        ])
    lines.append(format_table(
        ["crash", "crashed", "stale entries", "affected", "detect rounds",
         "repair rounds", "detect msgs", "repair msgs", "converged"],
        rows))
    lines.append("")
    lines.append("Repair message breakdown (per crash fraction):")
    for fraction in result.crash_fractions:
        report = result.reports[fraction]
        phases = {key.split(":", 1)[1]: value
                  for key, value in report.phase_messages.items()
                  if key.startswith("repair:")}
        breakdown = ", ".join(f"{name}={count}"
                              for name, count in sorted(phases.items()))
        lines.append(f"  {fraction:.0%}: {breakdown}")
    return "\n".join(lines)

"""Experiment drivers reproducing every figure of the paper's evaluation.

Each module implements one experiment as a pure library function returning
a structured result, plus a text formatter.  The benchmark harness
(``benchmarks/``) and the command-line runner (``python -m
repro.experiments``) are thin wrappers around these drivers, so the exact
same code path produces the numbers recorded in ``EXPERIMENTS.md``.

| Experiment | Paper figure | Driver |
|---|---|---|
| Voronoi out-degree histograms | Figure 5 | :mod:`repro.experiments.fig5_degree` |
| Route length vs overlay size  | Figure 6 | :mod:`repro.experiments.fig6_routes` |
| log(H) vs log(log N) slope    | Figure 7 | :mod:`repro.experiments.fig7_slope` |
| Effect of #long links         | Figure 8 | :mod:`repro.experiments.fig8_longlinks` |
| Close-neighbour ablation      | (ABL1)   | :mod:`repro.experiments.ablation_close_neighbors` |
| Baseline comparison           | (ABL2)   | :mod:`repro.experiments.ablation_baselines` |
| Maintenance cost              | (ABL3)   | :mod:`repro.experiments.ablation_maintenance` |
| Churn/crash repair (protocol) | (ABL4)   | :mod:`repro.experiments.ablation_churn_protocol` |

Every driver accepts a ``scale`` factor: 1.0 is the laptop-sized default
documented in ``EXPERIMENTS.md``; larger values approach the paper's
300 000-object runs at correspondingly larger runtimes.
"""

from repro.experiments.fig5_degree import Fig5Result, run_fig5
from repro.experiments.fig6_routes import Fig6Result, run_fig6
from repro.experiments.fig7_slope import Fig7Result, run_fig7
from repro.experiments.fig8_longlinks import Fig8Result, run_fig8
from repro.experiments.ablation_close_neighbors import AblationCloseResult, run_ablation_close
from repro.experiments.ablation_baselines import BaselineComparisonResult, run_baseline_comparison
from repro.experiments.ablation_maintenance import MaintenanceResult, run_maintenance_experiment
from repro.experiments.ablation_churn_protocol import (
    ChurnProtocolResult,
    run_ablation_churn_protocol,
)

__all__ = [
    "run_fig5",
    "Fig5Result",
    "run_fig6",
    "Fig6Result",
    "run_fig7",
    "Fig7Result",
    "run_fig8",
    "Fig8Result",
    "run_ablation_close",
    "AblationCloseResult",
    "run_baseline_comparison",
    "BaselineComparisonResult",
    "run_maintenance_experiment",
    "MaintenanceResult",
    "run_ablation_churn_protocol",
    "ChurnProtocolResult",
]

"""Figure 5 — distribution of Voronoi out-degrees ``|vn(o)|``.

The paper builds a 300 000-object overlay under the uniform and the highly
sparse (α = 5) distributions and plots the histogram of the number of
Voronoi neighbours per object, observing that it is centred around 6
regardless of the distribution (planarity of the Delaunay graph).  This
driver reproduces the histogram for all four evaluation distributions at a
configurable scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.degree import DegreeSummary, degree_summary
from repro.analysis.plots import ascii_histogram, format_table
from repro.experiments.common import (
    build_overlay,
    env_scale,
    evaluation_distributions,
    parallel_tasks,
    scaled,
)
from repro.workloads.distributions import ObjectDistribution

__all__ = ["Fig5Result", "run_fig5", "format_fig5"]


@dataclass(frozen=True)
class Fig5Result:
    """Degree histograms and summaries, one per distribution."""

    overlay_size: int
    histograms: Dict[str, Dict[int, int]]
    summaries: Dict[str, DegreeSummary]

    @property
    def distributions(self) -> List[str]:
        return list(self.histograms.keys())


def _degree_histogram_task(distribution: ObjectDistribution, count: int,
                           seed: int):
    """Build one distribution's overlay and histogram (worker-side unit)."""
    overlay = build_overlay(distribution, count, seed)
    histogram = overlay.degree_histogram()
    return distribution.name, histogram, degree_summary(histogram)


def run_fig5(scale: float | None = None, seed: int = 1005, *,
             workers: int | None = None) -> Fig5Result:
    """Run the Figure 5 experiment.

    Parameters
    ----------
    scale:
        Size multiplier; 1.0 builds 4 000-object overlays (the paper uses
        300 000 — pass ``scale=75`` to match, given time).
    seed:
        Base seed; each distribution gets a distinct derived seed.
    workers:
        Worker processes for the four independent overlay builds (``None``
        reads ``REPRO_WORKERS``; results are worker-count independent).
    """
    scale = env_scale() if scale is None else scale
    count = scaled(4000, scale)
    tasks = [(distribution, count, seed + index)
             for index, distribution in enumerate(evaluation_distributions())]
    histograms: Dict[str, Dict[int, int]] = {}
    summaries: Dict[str, DegreeSummary] = {}
    for name, histogram, summary in parallel_tasks(_degree_histogram_task,
                                                   tasks, workers):
        histograms[name] = histogram
        summaries[name] = summary
    return Fig5Result(overlay_size=count, histograms=histograms, summaries=summaries)


def format_fig5(result: Fig5Result) -> str:
    """Render the Figure 5 reproduction as text (histograms + summary table)."""
    lines = [f"Figure 5 — Voronoi out-degree distribution ({result.overlay_size} objects)"]
    rows = []
    for name, summary in result.summaries.items():
        rows.append([name, summary.mean, summary.std, summary.mode,
                     summary.fraction_between(4, 8)])
    lines.append(format_table(
        ["distribution", "mean |vn|", "std", "mode", "frac in [4,8]"], rows))
    for name in ("uniform", "powerlaw-a5"):
        if name in result.histograms:
            lines.append("")
            lines.append(f"[{name}]")
            lines.append(ascii_histogram(result.histograms[name], label="out-degree"))
    return "\n".join(lines)

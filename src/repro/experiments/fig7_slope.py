"""Figure 7 — ``log(H)`` against ``log(log(N))``: the poly-log exponent.

The paper replots the Figure 6 data as ``log(H)`` vs ``log(log |O|)`` and
observes straight lines of slope ``x`` close to 2 for every distribution,
confirming the ``O(log² N)`` analysis.  This driver reuses the Figure 6
sweep and fits the slope per distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.plots import format_table
from repro.analysis.regression import LogLogFit, fit_polylog_exponent
from repro.experiments.fig6_routes import Fig6Result, run_fig6

__all__ = ["Fig7Result", "run_fig7", "format_fig7"]


@dataclass(frozen=True)
class Fig7Result:
    """Per-distribution fits of ``log H = x · log log N + c``."""

    sweep: Fig6Result
    fits: Dict[str, LogLogFit]

    def slope(self, distribution: str) -> float:
        return self.fits[distribution].slope


def run_fig7(scale: float | None = None, seed: int = 1007,
             sweep: Optional[Fig6Result] = None, *,
             use_protocol: bool = False,
             workers: int | None = None) -> Fig7Result:
    """Run the Figure 7 fit (optionally reusing an existing Figure 6 sweep).

    ``use_protocol=True`` fits the slope on the *message-level* sweep
    (``run_fig6(use_protocol=True)``): the poly-log exponent is then
    measured on actual greedy walks over per-node local views, validating
    the oracle-mode fit with protocol ground truth.  ``workers`` is passed
    through to the underlying Figure 6 sweep.
    """
    if sweep is None:
        sweep = run_fig6(scale=scale, seed=seed, use_protocol=use_protocol,
                         workers=workers)
    fits = {
        name: fit_polylog_exponent(
            [point.size for point in points],
            [point.mean_hops for point in points],
        )
        for name, points in sweep.series.items()
    }
    return Fig7Result(sweep=sweep, fits=fits)


def format_fig7(result: Fig7Result) -> str:
    """Render the Figure 7 reproduction (slope table)."""
    lines = ["Figure 7 — log(H) vs log(log N) linear fit (slope ≈ 2 expected)"]
    rows = [
        [name, fit.slope, fit.intercept, fit.r_squared]
        for name, fit in result.fits.items()
    ]
    lines.append(format_table(["distribution", "slope x", "intercept", "R^2"], rows))
    return "\n".join(lines)

"""Shared plumbing of the experiment drivers."""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core import VoroNet, VoroNetConfig
from repro.utils.rng import RandomSource
from repro.workloads.distributions import ObjectDistribution
from repro.workloads.generators import generate_objects

__all__ = [
    "scaled",
    "env_scale",
    "build_overlay",
    "checkpoint_schedule",
    "evaluation_distributions",
    "parallel_tasks",
    "resolve_workers",
    "CAPACITY_HEADROOM",
    "EVALUATION_CELLS_PER_AXIS",
]

#: Value-grid resolution used by the figure experiments' power-law
#: workloads.  The paper's 300 000-object overlays have a close-neighbour
#: radius ``d_min ≈ 0.001``, so even its most popular attribute value spans
#: many ``d_min``; at laptop-scale populations ``d_min`` is an order of
#: magnitude larger, and a fine value grid would collapse the α=5 hot spot
#: into a single close-neighbour clique (routing inside it becomes one hop,
#: which the paper's setting never exhibits).  A coarser grid keeps the
#: ratio between the hot-value extent and ``d_min`` in the paper's regime.
EVALUATION_CELLS_PER_AXIS = 8

#: Overlays are dimensioned with this headroom factor over the number of
#: objects actually inserted.  The paper sets ``N_max`` to the final overlay
#: size; giving the capacity a small headroom (as a deployment would) keeps
#: ``d_min`` — and therefore close-neighbour upkeep in the extreme α=5 hot
#: spot — proportionally smaller without affecting any routing claim (the
#: poly-log bound is in ``N_max`` and only improves when ``N < N_max``).
CAPACITY_HEADROOM = 4


def env_scale(default: float = 1.0) -> float:
    """Experiment scale factor, overridable via ``REPRO_BENCH_SCALE``."""
    value = os.environ.get("REPRO_BENCH_SCALE")
    if value is None:
        return default
    return max(0.05, float(value))


def scaled(base: int, scale: float, minimum: int = 8) -> int:
    """Scale an object/pair count, never below ``minimum``."""
    return max(minimum, int(round(base * scale)))


def build_overlay(distribution: ObjectDistribution, count: int, seed: int, *,
                  num_long_links: int = 1,
                  maintain_close_neighbors: bool = True,
                  capacity: int | None = None,
                  bulk: bool = False) -> VoroNet:
    """Build an overlay populated with ``count`` objects from a distribution.

    With ``bulk=True`` the overlay is constructed through
    :meth:`~repro.core.overlay.VoroNet.bulk_load` — identical Voronoi and
    close-neighbour structure, long links drawn from the same distribution,
    but without ``count`` routed joins.  Use it whenever the experiment
    measures properties of the *final* overlay rather than the join process
    itself.
    """
    rng = RandomSource(seed)
    positions = generate_objects(distribution, count, rng)
    config = VoroNetConfig(
        n_max=capacity if capacity is not None else CAPACITY_HEADROOM * count,
        num_long_links=num_long_links,
        maintain_close_neighbors=maintain_close_neighbors,
        seed=seed,
    )
    overlay = VoroNet(config)
    if bulk:
        overlay.bulk_load(positions)
    else:
        overlay.insert_many(positions)
    return overlay


def resolve_workers(workers: Optional[int], tasks: int) -> int:
    """Number of worker processes to actually use for ``tasks`` tasks.

    ``workers=None`` consults the ``REPRO_WORKERS`` environment variable
    (defaulting to 1, i.e. serial); ``workers=0`` or any negative value
    means "use every CPU".  The result is clamped to the task count — it
    never pays to fork more processes than there are tasks.
    """
    if workers is None:
        env = os.environ.get("REPRO_WORKERS")
        workers = int(env) if env else 1
    if workers <= 0:
        try:
            workers = len(os.sched_getaffinity(0))
        except AttributeError:  # pragma: no cover - non-Linux
            workers = os.cpu_count() or 1
    return max(1, min(workers, max(tasks, 1)))


def parallel_tasks(func: Callable, arg_tuples: Sequence[Tuple],
                   workers: Optional[int] = None) -> List:
    """Run ``func(*args)`` for each tuple, optionally across processes.

    The sweep drivers hand independent work units (one distribution, one
    shard range, one parameter cell) to this helper; with ``workers > 1``
    they run in a process pool, otherwise serially in-process.  Results
    come back in submission order either way, so callers can zip them with
    their inputs.

    ``func`` must be a **module-level** function and every argument must be
    picklable — closures and overlay objects cannot cross the process
    boundary, so tasks receive seeds and configuration primitives and
    rebuild their state worker-side.  The pool prefers the ``fork`` start
    method (cheap on Linux, shares the loaded modules read-only) and falls
    back to ``spawn`` where fork is unavailable.
    """
    arg_tuples = list(arg_tuples)
    workers = resolve_workers(workers, len(arg_tuples))
    if workers <= 1 or len(arg_tuples) <= 1:
        return [func(*args) for args in arg_tuples]
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
    with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
        futures = [pool.submit(func, *args) for args in arg_tuples]
        return [future.result() for future in futures]


def evaluation_distributions() -> List[ObjectDistribution]:
    """The paper's four evaluation distributions, tuned for laptop scale.

    Uniform plus power-law α ∈ {1, 2, 5}, the power-law families built on
    the coarser :data:`EVALUATION_CELLS_PER_AXIS` value grid (see its
    docstring for the scaling rationale).
    """
    from repro.workloads.distributions import PowerLawDistribution, UniformDistribution

    return [
        UniformDistribution(),
        PowerLawDistribution(alpha=1.0, cells_per_axis=EVALUATION_CELLS_PER_AXIS),
        PowerLawDistribution(alpha=2.0, cells_per_axis=EVALUATION_CELLS_PER_AXIS),
        PowerLawDistribution(alpha=5.0, cells_per_axis=EVALUATION_CELLS_PER_AXIS),
    ]


def checkpoint_schedule(max_size: int, steps: int) -> List[int]:
    """Evenly spaced overlay-size checkpoints ending at ``max_size``.

    Mirrors the paper's "measured after every 10 000 adds" protocol with a
    configurable number of steps.
    """
    if steps < 1:
        raise ValueError("steps must be >= 1")
    return sorted({max(8, round(max_size * (i + 1) / steps)) for i in range(steps)})

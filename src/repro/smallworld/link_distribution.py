"""Long-range link-length distributions.

Two samplers live here:

* :func:`sample_grid_long_range_contact` — Kleinberg's original discrete
  distribution on the grid, where node ``u`` picks node ``v`` with
  probability proportional to ``d(u, v)^{-s}`` (lattice distance);
* :func:`sample_radial_offset` — the continuous, radially symmetric
  distribution VoroNet uses (Algorithm 3): log-uniform radius between
  ``d_min`` and ``√2``, uniform angle, giving the ``1/(K d²)`` area density
  of Lemma 2.

The grid sampler backs the Kleinberg baseline; the radial sampler is shared
with :mod:`repro.core.long_range` (re-exported there in overlay terms).
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.utils.rng import RandomSource

__all__ = [
    "grid_harmonic_weights",
    "sample_grid_long_range_contact",
    "sample_radial_offset",
    "radial_offset_pdf",
]

GridCoord = Tuple[int, int]


def grid_harmonic_weights(n: int, source: GridCoord, exponent: float) -> np.ndarray:
    """Unnormalised ``d^{-s}`` weights from ``source`` to every grid node.

    Parameters
    ----------
    n:
        Grid side length (the grid is ``n × n``).
    source:
        ``(row, col)`` of the choosing node; its own weight is zero.
    exponent:
        The clustering exponent ``s``; Kleinberg's navigable value in two
        dimensions is ``s = 2``.
    """
    rows, cols = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    manhattan = np.abs(rows - source[0]) + np.abs(cols - source[1])
    with np.errstate(divide="ignore"):
        weights = np.where(manhattan > 0, manhattan.astype(np.float64) ** (-exponent), 0.0)
    return weights


def sample_grid_long_range_contact(n: int, source: GridCoord, exponent: float,
                                   rng: RandomSource) -> GridCoord:
    """Draw the long-range contact of ``source`` in an ``n × n`` grid.

    The contact is any other grid node, picked with probability proportional
    to ``(lattice distance)^{-exponent}``.
    """
    weights = grid_harmonic_weights(n, source, exponent)
    flat = weights.ravel()
    total = flat.sum()
    if total <= 0:
        raise ValueError("grid too small to have any long-range candidate")
    probabilities = flat / total
    index = int(rng.generator.choice(flat.size, p=probabilities))
    return (index // n, index % n)


def sample_radial_offset(d_min: float, d_max: float, rng: RandomSource) -> Tuple[float, float]:
    """Draw a planar offset with log-uniform radius and uniform angle.

    This is the body of Choose-LRT without the translation to the chooser's
    position; the induced spatial density at distance ``d`` is
    ``1 / (2π ln(d_max/d_min) d²)``.
    """
    if not 0.0 < d_min < d_max:
        raise ValueError("need 0 < d_min < d_max")
    a = rng.uniform(math.log(d_min), math.log(d_max))
    theta = rng.uniform(0.0, 2.0 * math.pi)
    radius = math.exp(a)
    return (radius * math.cos(theta), radius * math.sin(theta))


def radial_offset_pdf(distance_value: float, d_min: float, d_max: float) -> float:
    """Area density of :func:`sample_radial_offset` at the given distance."""
    if distance_value < d_min or distance_value > d_max:
        return 0.0
    return 1.0 / (2.0 * math.pi * math.log(d_max / d_min) * distance_value ** 2)

"""Kleinberg's small-world grid model (Section 2.1 of the paper).

The model is an ``n × n`` grid where every node is connected to its (up to
four) lattice neighbours and to ``k`` long-range contacts drawn with
probability proportional to ``d^{-s}`` in lattice distance.  Greedy routing
forwards to the neighbour closest (in lattice distance) to the target.
Kleinberg proved that ``s = 2`` is the unique exponent for which greedy
routing finds ``O(log² n)`` paths.

This implementation is both the baseline the paper positions itself
against (VoroNet generalises it to arbitrary object placements) and the
reference for the navigability sweep in :mod:`repro.smallworld.navigability`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


from repro.smallworld.link_distribution import sample_grid_long_range_contact
from repro.utils.rng import RandomSource

__all__ = ["KleinbergGrid", "GridRouteResult"]

GridCoord = Tuple[int, int]


@dataclass(frozen=True)
class GridRouteResult:
    """Outcome of one greedy route on the grid."""

    source: GridCoord
    target: GridCoord
    hops: int
    success: bool
    path: Optional[Tuple[GridCoord, ...]] = None


class KleinbergGrid:
    """An ``n × n`` Kleinberg small-world network.

    Parameters
    ----------
    n:
        Grid side length.
    long_links_per_node:
        Number of long-range contacts per node (``k``; typically one).
    exponent:
        Clustering exponent ``s`` of the ``d^{-s}`` contact distribution.
    rng:
        Random source (or seed) for contact selection.

    Examples
    --------
    >>> grid = KleinbergGrid(16, exponent=2.0, rng=RandomSource(3))
    >>> result = grid.greedy_route((0, 0), (15, 15))
    >>> result.success
    True
    """

    def __init__(self, n: int, *, long_links_per_node: int = 1,
                 exponent: float = 2.0, rng: Optional[RandomSource] = None) -> None:
        if n < 2:
            raise ValueError("the grid needs side length at least 2")
        if long_links_per_node < 0:
            raise ValueError("long_links_per_node must be non-negative")
        self.n = n
        self.exponent = float(exponent)
        self.long_links_per_node = long_links_per_node
        self._rng = rng if rng is not None else RandomSource()
        self._long_links: Dict[GridCoord, List[GridCoord]] = {}
        self._build_long_links()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build_long_links(self) -> None:
        for row in range(self.n):
            for col in range(self.n):
                source = (row, col)
                contacts: List[GridCoord] = []
                for _ in range(self.long_links_per_node):
                    contacts.append(sample_grid_long_range_contact(
                        self.n, source, self.exponent, self._rng))
                self._long_links[source] = contacts

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Total number of nodes (``n²``)."""
        return self.n * self.n

    def lattice_neighbors(self, node: GridCoord) -> List[GridCoord]:
        """The up-to-four grid neighbours of a node."""
        row, col = node
        candidates = [(row - 1, col), (row + 1, col), (row, col - 1), (row, col + 1)]
        return [
            (r, c) for r, c in candidates
            if 0 <= r < self.n and 0 <= c < self.n
        ]

    def long_range_contacts(self, node: GridCoord) -> List[GridCoord]:
        """The long-range contacts of a node."""
        return list(self._long_links[node])

    def neighbors(self, node: GridCoord) -> List[GridCoord]:
        """All outgoing neighbours (lattice plus long-range)."""
        return self.lattice_neighbors(node) + self.long_range_contacts(node)

    @staticmethod
    def lattice_distance(a: GridCoord, b: GridCoord) -> int:
        """Manhattan (lattice) distance between two nodes."""
        return abs(a[0] - b[0]) + abs(a[1] - b[1])

    def contains(self, node: GridCoord) -> bool:
        """Whether the coordinates denote a node of the grid."""
        return 0 <= node[0] < self.n and 0 <= node[1] < self.n

    def random_node(self) -> GridCoord:
        """A uniformly random grid node."""
        return (self._rng.integer(0, self.n), self._rng.integer(0, self.n))

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def greedy_route(self, source: GridCoord, target: GridCoord, *,
                     max_hops: Optional[int] = None,
                     record_path: bool = False) -> GridRouteResult:
        """Greedy routing by lattice distance (Kleinberg's decentralised algorithm).

        Greedy always succeeds on the grid because every node has a lattice
        neighbour strictly closer to the target; ``max_hops`` is only a
        safety valve.
        """
        if not (self.contains(source) and self.contains(target)):
            raise ValueError("source and target must be grid nodes")
        limit = max_hops if max_hops is not None else 4 * self.n * self.n
        current = source
        hops = 0
        path = [source] if record_path else None
        while current != target:
            best = current
            best_distance = self.lattice_distance(current, target)
            for neighbor in self.neighbors(current):
                d = self.lattice_distance(neighbor, target)
                if d < best_distance:
                    best, best_distance = neighbor, d
            if best == current:
                return GridRouteResult(source=source, target=target, hops=hops,
                                       success=False,
                                       path=tuple(path) if path else None)
            current = best
            hops += 1
            if record_path:
                path.append(current)
            if hops > limit:
                return GridRouteResult(source=source, target=target, hops=hops,
                                       success=False,
                                       path=tuple(path) if path else None)
        return GridRouteResult(source=source, target=target, hops=hops,
                               success=True, path=tuple(path) if path else None)

    def mean_route_length(self, num_pairs: int, rng: Optional[RandomSource] = None) -> float:
        """Mean greedy route length over random source/target pairs."""
        rng = rng if rng is not None else self._rng
        total = 0
        for _ in range(num_pairs):
            source = (rng.integer(0, self.n), rng.integer(0, self.n))
            target = (rng.integer(0, self.n), rng.integer(0, self.n))
            while target == source:
                target = (rng.integer(0, self.n), rng.integer(0, self.n))
            total += self.greedy_route(source, target).hops
        return total / num_pairs

"""Small-world substrate: Kleinberg's grid model and its link distributions.

VoroNet generalises Kleinberg's small-world construction from the ``n × n``
grid to arbitrary object placements via Voronoi tessellations.  This
package implements the original model — the background of Section 2.1 and
the natural baseline for the overlay — plus the harmonic link-length
distributions both constructions rely on and navigability measurement
helpers.
"""

from repro.smallworld.kleinberg_grid import KleinbergGrid, GridRouteResult
from repro.smallworld.link_distribution import (
    grid_harmonic_weights,
    sample_grid_long_range_contact,
    sample_radial_offset,
)
from repro.smallworld.navigability import (
    NavigabilityPoint,
    measure_grid_routing,
    sweep_exponents,
)

__all__ = [
    "KleinbergGrid",
    "GridRouteResult",
    "grid_harmonic_weights",
    "sample_grid_long_range_contact",
    "sample_radial_offset",
    "NavigabilityPoint",
    "measure_grid_routing",
    "sweep_exponents",
]

"""Navigability measurements on the Kleinberg grid.

Kleinberg's theorem (recalled in Section 2.1) says greedy routing on the
grid achieves poly-logarithmic paths exactly when the clustering exponent
``s`` equals the dimension (2).  These helpers measure greedy performance
across grid sizes and exponents, providing both the baseline series for the
comparison benchmark and a sanity check that our grid substrate reproduces
the classic U-shaped exponent curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.smallworld.kleinberg_grid import KleinbergGrid
from repro.utils.rng import RandomSource

__all__ = ["NavigabilityPoint", "measure_grid_routing", "sweep_exponents"]


@dataclass(frozen=True)
class NavigabilityPoint:
    """One measurement: grid parameters plus the observed mean route length."""

    n: int
    exponent: float
    long_links: int
    mean_hops: float
    num_pairs: int


def measure_grid_routing(n: int, *, exponent: float = 2.0,
                         long_links_per_node: int = 1,
                         num_pairs: int = 200,
                         rng: Optional[RandomSource] = None) -> NavigabilityPoint:
    """Build one Kleinberg grid and measure its mean greedy route length."""
    rng = rng if rng is not None else RandomSource()
    grid = KleinbergGrid(n, exponent=exponent,
                         long_links_per_node=long_links_per_node, rng=rng)
    mean_hops = grid.mean_route_length(num_pairs, rng)
    return NavigabilityPoint(n=n, exponent=exponent,
                             long_links=long_links_per_node,
                             mean_hops=mean_hops, num_pairs=num_pairs)


def sweep_exponents(n: int, exponents: Sequence[float], *,
                    num_pairs: int = 200,
                    rng: Optional[RandomSource] = None) -> List[NavigabilityPoint]:
    """Measure greedy routing for several clustering exponents on one grid size.

    The resulting series exhibits Kleinberg's signature minimum at
    ``s = 2`` once ``n`` is large enough.
    """
    rng = rng if rng is not None else RandomSource()
    return [
        measure_grid_routing(n, exponent=exponent, num_pairs=num_pairs, rng=rng)
        for exponent in exponents
    ]

"""Churn and failure injection.

Two injectors drive dynamism experiments:

* :class:`ChurnScheduler` replays *graceful* joins and leaves (objects run
  the departure protocol of Section 3.3) against either the oracle overlay
  or the protocol simulator, at configurable rates on the virtual clock;
* :class:`CrashInjector` removes objects *abruptly* — without running the
  leave protocol — and then reports how much state (dangling long links,
  stale close neighbours, dangling back registrations) the survivors are
  left with.  The paper does not give a crash-repair protocol; quantifying
  the damage is how we exercise the limitation it acknowledges.

Both injectors speak the *oracle* overlay.  The message-level counterpart —
crash/loss/partition injection through the network layer, heartbeat failure
detection and the self-healing repair protocol — lives in
:mod:`repro.simulation.faults`.  :func:`assess_partition_damage` is the
shared census both the fault harnesses and the partition-merge runtime
(:mod:`repro.simulation.merge`) use to quantify cross-side divergence in
the same stale-reference terms as :class:`CrashDamageReport`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.overlay import VoroNet
from repro.geometry.point import Point
from repro.simulation.engine import SimulationEngine
from repro.simulation.events import Event
from repro.utils.rng import RandomSource
from repro.workloads.distributions import ObjectDistribution, UniformDistribution

__all__ = ["ChurnScheduler", "CrashInjector", "CrashDamageReport",
           "PartitionDamageReport", "assess_partition_damage"]


class ChurnScheduler:  # simlint: ignore[SIM003] — one per experiment, not per message
    """Schedules graceful joins and leaves on a simulation engine.

    Joins and leaves are drawn from **one merged arrival process**: a
    single Poisson stream at rate ``join_rate + leave_rate`` whose arrivals
    are classified join/leave with probability proportional to their rates
    (the superposition theorem).  Two independent streams — the obvious
    alternative — share no ordering guarantee when the rates differ: every
    join would be scheduled before any leave at equal timestamps, and the
    relative interleaving would drift with the rate ratio instead of being
    exchangeable.

    Parameters
    ----------
    engine:
        The virtual clock driving the churn.
    join / leave:
        Callables performing one join (given a position) / one leave (given
        nothing; the callee picks the victim).
    join_rate / leave_rate:
        Mean number of joins / leaves per unit of virtual time (events are
        spaced by exponential inter-arrival times).
    distribution:
        Placement distribution for joining objects.
    """

    def __init__(self, engine: SimulationEngine, *,
                 join: Callable[[Point], None],
                 leave: Callable[[], None],
                 join_rate: float = 1.0,
                 leave_rate: float = 0.5,
                 distribution: Optional[ObjectDistribution] = None,
                 rng: Optional[RandomSource] = None) -> None:
        if join_rate <= 0 or leave_rate < 0:
            raise ValueError("join_rate must be > 0 and leave_rate >= 0")
        self._engine = engine
        self._join = join
        self._leave = leave
        self._join_rate = join_rate
        self._leave_rate = leave_rate
        self._distribution = distribution or UniformDistribution()
        # Interactive/standalone default; experiments pass a seeded stream.
        self._rng = rng if rng is not None else RandomSource()  # simlint: ignore[SIM002]
        self._scheduled: List[Event] = []
        self.joins_executed = 0
        self.leaves_executed = 0

    def start(self, horizon: float) -> int:
        """Schedule churn events over the next ``horizon`` time units.

        Times are relative to the engine's *current* clock, so a scheduler
        can be started on a warm simulator (e.g. after a ``bulk_join``
        advanced the virtual time).  Returns the number of events
        scheduled; the handles are kept so :meth:`stop` can cancel them.
        """
        begin = self._engine.now
        total_rate = self._join_rate + self._leave_rate
        join_share = self._join_rate / total_rate
        time = begin
        scheduled = 0
        while True:
            time += self._rng.exponential(1.0 / total_rate)
            if time > begin + horizon:
                break
            if self._rng.uniform() < join_share:
                position = self._distribution.sample(1, self._rng)[0]
                event = self._engine.schedule_at(time, self._make_join(position),
                                                 label="churn-join")
            else:
                event = self._engine.schedule_at(time, self._make_leave(),
                                                 label="churn-leave")
            self._scheduled.append(event)
            scheduled += 1
        return scheduled

    def stop(self) -> int:
        """Cancel every churn event still pending; returns how many.

        Harness teardown calls this so a partially drained schedule cannot
        leak stale joins/leaves into a later phase (the engine's
        ``quiescent`` check ignores cancelled events, so batched operations
        remain usable immediately after stopping).
        """
        cancelled = 0
        for event in self._scheduled:
            if not event.cancelled and event.time > self._engine.now:
                cancelled += 1
            event.cancel()
        self._scheduled.clear()
        return cancelled

    def _make_join(self, position: Point) -> Callable[[], None]:
        def action() -> None:
            self._join(position)
            self.joins_executed += 1
        return action

    def _make_leave(self) -> Callable[[], None]:
        def action() -> None:
            self._leave()
            self.leaves_executed += 1
        return action


@dataclass(frozen=True)
class CrashDamageReport:
    """State damage observed after abrupt (non-graceful) departures.

    ``dangling_back_links`` counts back-registrations whose *source*
    crashed (the reverse pointer now serves nobody); ``stale_voronoi_entries``
    counts local Voronoi-view entries pointing at crashed ids — always zero
    in oracle mode, where views are derived from the shared kernel, but
    nonzero for the message-level simulator until the repair protocol
    scrubs them.
    """

    crashed: int
    dangling_long_links: int
    stale_close_neighbors: int
    affected_objects: int
    dangling_back_links: int = 0
    stale_voronoi_entries: int = 0

    @property
    def total_stale_entries(self) -> int:
        return (self.dangling_long_links + self.stale_close_neighbors
                + self.dangling_back_links + self.stale_voronoi_entries)


class CrashInjector:  # simlint: ignore[SIM003] — one per experiment, not per message
    """Abruptly removes objects from an oracle-mode overlay.

    The triangulation itself is repaired (the hosting substrate notices the
    peer vanished), but none of the protocol-level hand-overs run, so other
    objects are left with dangling long links and stale close-neighbour
    entries — exactly what :meth:`assess_damage` quantifies.
    """

    def __init__(self, overlay: VoroNet, rng: Optional[RandomSource] = None) -> None:
        self._overlay = overlay
        # Interactive/standalone default; experiments pass a seeded stream.
        self._rng = rng if rng is not None else RandomSource()  # simlint: ignore[SIM002]
        self._crashed: List[int] = []

    def crash_random(self, count: int) -> List[int]:
        """Crash ``count`` uniformly random objects; returns their ids."""
        victims: List[int] = []
        for _ in range(count):
            ids = self._overlay.object_ids()
            if len(ids) <= 3:
                break
            victim = ids[self._rng.integer(0, len(ids))]
            self.crash(victim)
            victims.append(victim)
        return victims

    def crash(self, object_id: int) -> None:
        """Crash one object: drop it from the tessellation, skip the protocol."""
        # Bypass VoroNet.remove on purpose: no detach_object, no notifications.
        overlay = self._overlay
        overlay.triangulation.remove(object_id)
        del overlay._nodes[object_id]  # noqa: SLF001 - deliberate fault injection
        # The *substrate* state (tessellation, locate grid, shard store,
        # caches) is repaired — only the protocol-level hand-overs are
        # skipped.  Per the overlay's epoch contract, direct mutation must
        # invalidate the routing tables, or survivors would greedily
        # forward to crashed ids; likewise the grid and the sharded store
        # must drop the id or lookups would enter the overlay at a dead
        # peer.  The invalidation is overlay-wide (bare call): any
        # survivor, anywhere, may hold a long link at the victim, and a
        # crash by definition runs none of the hand-overs that would
        # enumerate them.
        overlay.locate_index.discard(object_id)
        overlay.shard_store.discard(object_id)
        overlay.invalidate_routing_tables()
        self._crashed.append(object_id)

    def assess_damage(self) -> CrashDamageReport:
        """Count dangling references the crashes left in surviving objects."""
        overlay = self._overlay
        crashed = set(self._crashed)
        dangling_links = 0
        stale_close = 0
        dangling_back = 0
        affected = set()
        for object_id in overlay.object_ids():
            node = overlay.node(object_id)
            for link in node.long_links:
                if link.neighbor in crashed:
                    dangling_links += 1
                    affected.add(object_id)
            for close_id in node.close_neighbors:
                if close_id in crashed:
                    stale_close += 1
                    affected.add(object_id)
            for back_link in node.back_links:
                if back_link.source in crashed:
                    dangling_back += 1
                    affected.add(object_id)
        return CrashDamageReport(
            crashed=len(crashed),
            dangling_long_links=dangling_links,
            stale_close_neighbors=stale_close,
            affected_objects=len(affected),
            dangling_back_links=dangling_back,
        )

    def repair(self) -> int:
        """Scrub dangling references (a minimal anti-entropy pass).

        Returns the number of entries fixed.  Long links pointing at crashed
        objects are re-resolved by looking up the owner of their target
        point; stale close neighbours and back registrations whose source
        crashed are dropped.
        """
        overlay = self._overlay
        crashed = set(self._crashed)
        fixed = 0
        affected: List[int] = []
        for object_id in overlay.object_ids():
            node = overlay.node(object_id)
            touched = False
            for index, link in enumerate(node.long_links):
                if link.neighbor in crashed:
                    new_owner = overlay.owner_of(link.target)
                    node.retarget_long_link(index, new_owner)
                    if overlay.config.maintain_back_links:
                        overlay.node(new_owner).add_back_link(object_id, index,
                                                              link.target)
                    touched = True
                    fixed += 1
            stale = {c for c in node.close_neighbors if c in crashed}
            for close_id in sorted(stale):
                node.discard_close_neighbor(close_id)
                touched = True
                fixed += 1
            dangling_back = {bl for bl in node.back_links if bl.source in crashed}
            if dangling_back:
                # Back registrations are not routed on — no epoch impact.
                node.back_links -= dangling_back
                fixed += len(dangling_back)
            if touched:
                affected.append(object_id)
        # Retargeted links / dropped close entries changed forwarding
        # candidates (epoch contract); unlike the crash itself, the scrub
        # knows exactly whose, so the bump is per-shard targeted.
        overlay.invalidate_routing_tables(affected)
        return fixed


@dataclass(frozen=True)
class PartitionDamageReport:
    """Cross-side divergence census during (or after) a network split.

    The partition analogue of :class:`CrashDamageReport`: instead of
    references to *crashed* peers it counts references that cross the cut
    — entries each side must scrub while split (the peer is unreachable
    and presumed dead) and the merge protocol must restore on heal.
    ``boundary_objects`` is how many live objects hold at least one
    cross-side reference: the population the anti-entropy flood starts
    from.
    """

    sides: int
    cross_voronoi_entries: int
    cross_close_entries: int
    cross_long_links: int
    cross_back_links: int
    boundary_objects: int

    @property
    def total_cross_references(self) -> int:
        return (self.cross_voronoi_entries + self.cross_close_entries
                + self.cross_long_links + self.cross_back_links)


def assess_partition_damage(nodes: Dict[int, object],
                            side_of: Callable[[int], Optional[int]],
                            ) -> PartitionDamageReport:
    """Count the cross-side references a split leaves in protocol views.

    ``nodes`` maps live object ids to protocol nodes (``voronoi`` /
    ``close`` / ``long_links`` / ``back_links`` attributes, the
    :class:`~repro.simulation.protocol.ProtocolNode` shape);``side_of``
    returns a node's side index or ``None`` for unassigned ids (which
    never count as cross-side, matching ``SplitSpec.separates``).  Used
    by the merge harness both to measure divergence right after a split
    opens and to assert the per-side repairs scrubbed every cross
    reference before heal.
    """
    sides = set()
    cross_voronoi = cross_close = cross_long = cross_back = 0
    boundary = 0
    for object_id in sorted(nodes):
        node = nodes[object_id]
        own_side = side_of(object_id)
        if own_side is not None:
            sides.add(own_side)
        if own_side is None:
            continue

        def crosses(peer: int) -> bool:
            peer_side = side_of(peer)
            return peer_side is not None and peer_side != own_side  # noqa: B023

        voronoi = sum(1 for peer in node.voronoi
                      if peer != object_id and crosses(peer))
        close = sum(1 for peer in node.close if crosses(peer))
        longs = sum(1 for link in node.long_links
                    if link.neighbor != object_id and crosses(link.neighbor))
        backs = sum(1 for source, _index in node.back_links if crosses(source))
        cross_voronoi += voronoi
        cross_close += close
        cross_long += longs
        cross_back += backs
        if voronoi or close or longs or backs:
            boundary += 1
    return PartitionDamageReport(sides=len(sides),
                                 cross_voronoi_entries=cross_voronoi,
                                 cross_close_entries=cross_close,
                                 cross_long_links=cross_long,
                                 cross_back_links=cross_back,
                                 boundary_objects=boundary)

"""The discrete-event simulation engine.

A minimal but complete event-driven core: a priority queue ordered by
virtual time with deterministic tie-breaking, cancellation, bounded runs
and basic accounting.  All higher layers (the network, churn injection,
the VoroNet protocol) only ever talk to :meth:`SimulationEngine.schedule`
and :meth:`SimulationEngine.run`.

Hot-path design
---------------
The engine is the floor under every message-level experiment, so the inner
loop is deliberately flat.  The heap stores 4-tuples
``(time, sequence, action, arg)`` — compared entirely at C level by
``heapq``, since the unique ``(time, sequence)`` prefix settles every
comparison — and comes in two flavours:

* **API entries** carry a cancellable :class:`Event` in the action slot
  (marked by the sentinel arg ``_EVENT_ENTRY``): what :meth:`schedule` /
  :meth:`schedule_call` return, supporting ``cancel()`` and inspection.
* **Raw entries** carry a bare ``(callable, argument)`` pair: the
  network's per-message delivery fast path (:meth:`push_call`), which
  allocates nothing but the tuple.  Raw entries cannot be cancelled
  individually — the network voids in-flight deliveries wholesale through
  :meth:`cancel_actions` (on ``unregister``), which rebuilds the heap.

Quiescence — the phase barrier of ``bulk_join`` and the repair protocol —
is O(1): a counter of cancelled-but-still-queued events is maintained
incrementally, and the queue is compacted in place when cancelled entries
outnumber live ones, so mass cancellation (churn teardown, heartbeat
``stop``) cannot leave the heap dominated by dead entries.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from repro.simulation.events import NO_ARG, Event

__all__ = ["SimulationEngine", "Watchdog"]

#: Queues smaller than this are never compacted — rebuilding them costs
#: more than lazily popping the handful of cancelled entries.
_COMPACT_MIN_QUEUE = 64


class _EventEntry:
    """Sentinel: this heap entry's action slot holds an :class:`Event`."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "EVENT_ENTRY"


_EVENT_ENTRY = _EventEntry()


class SimulationEngine:
    """Priority-queue driven virtual-time simulator.

    Examples
    --------
    >>> engine = SimulationEngine()
    >>> fired = []
    >>> _ = engine.schedule(2.0, lambda: fired.append("b"))
    >>> _ = engine.schedule(1.0, lambda: fired.append("a"))
    >>> engine.run()
    2
    >>> fired
    ['a', 'b']
    """

    __slots__ = ("_queue", "_sequence", "_now", "_processed", "_cancelled")

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, Any, Any]] = []
        self._sequence = 0
        self._now = 0.0
        self._processed = 0
        #: Cancelled events still sitting in the queue.  Maintained by
        #: Event.cancel() (via ``_note_cancelled``), the pop paths and
        #: compaction; ``quiescent`` is the O(1) comparison of this
        #: against the queue length.
        self._cancelled = 0

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    @property
    def runnable_events(self) -> int:
        """Number of non-cancelled events still queued (O(1))."""
        return len(self._queue) - self._cancelled

    @property
    def quiescent(self) -> bool:
        """Whether no runnable (non-cancelled) event is pending — in O(1).

        Batched operations such as the protocol simulator's ``bulk_join``
        use this as a precondition: their phase barriers assume each
        drain consumed *their* messages, which only holds when nothing
        unrelated was in flight to begin with.  The check compares the
        incrementally maintained cancelled-event count against the queue
        length, so polling it is free even with 10⁵ events queued.
        """
        return len(self._queue) == self._cancelled

    # ------------------------------------------------------------------
    def schedule(self, delay: float, action: Callable[[], None],
                 label: Optional[str] = None) -> Event:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        time = self._now + delay
        sequence = self._sequence
        self._sequence = sequence + 1
        event = Event(time, sequence, action, label)
        event._engine = self
        heapq.heappush(self._queue, (time, sequence, event, _EVENT_ENTRY))
        return event

    def schedule_call(self, delay: float, action: Callable[[Any], None],
                      arg: Any, label: Optional[str] = None) -> Event:
        """Schedule ``action(arg)`` on a cancellable event.

        Equivalent to ``schedule(delay, lambda: action(arg))`` without the
        per-call closure allocation.  For fire-and-forget work that needs
        no cancel handle at all (message delivery), :meth:`push_call` is
        cheaper still.
        """
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        time = self._now + delay
        sequence = self._sequence
        self._sequence = sequence + 1
        event = Event(time, sequence, action, label, arg)
        event._engine = self
        heapq.heappush(self._queue, (time, sequence, event, _EVENT_ENTRY))
        return event

    def push_call(self, delay: float, action: Callable[[Any], None],
                  arg: Any) -> None:
        """Schedule ``action(arg)`` with no event object — the delivery path.

        The entry is the bare heap tuple: nothing is allocated beyond it,
        and the run loop invokes ``action(arg)`` without cancellation or
        bookkeeping checks.  No handle is returned; such entries are only
        removable wholesale via :meth:`cancel_actions`.  The caller
        guarantees ``delay`` is non-negative (latency models and the fault
        plane already enforce this).
        """
        time = self._now + delay
        sequence = self._sequence
        self._sequence = sequence + 1
        heapq.heappush(self._queue, (time, sequence, action, arg))

    def schedule_at(self, time: float, action: Callable[[], None],
                    label: Optional[str] = None) -> Event:
        """Schedule ``action`` at an absolute virtual time (not before now)."""
        if time < self._now:
            raise ValueError(f"cannot schedule in the past ({time} < {self._now})")
        return self.schedule(time - self._now, action, label)

    # ------------------------------------------------------------------
    # cancellation bookkeeping
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """An in-queue event was cancelled; compact when they dominate."""
        self._cancelled += 1
        if (self._cancelled * 2 > len(self._queue)
                and len(self._queue) >= _COMPACT_MIN_QUEUE):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify, in place.

        In place (slice assignment) so aliases of the queue held by a
        running drain loop stay valid; discarded events are detached from
        the engine so late ``cancel()`` calls on them cannot skew the
        runnable accounting.
        """
        live = []
        for entry in self._queue:
            if entry[3] is _EVENT_ENTRY and entry[2].cancelled:
                entry[2]._engine = None
            else:
                live.append(entry)
        self._queue[:] = live
        heapq.heapify(self._queue)
        self._cancelled = 0

    def cancel_actions(self, action: Callable[..., None]) -> List[Any]:
        """Remove every pending entry whose action is ``action`` (by identity).

        Returns the removed entries' arguments (``NO_ARG`` for thunk
        events), so the caller can account for what was voided.  Matches
        both raw delivery entries and API events (the latter are marked
        cancelled and dropped).  The network layer uses this on
        ``unregister`` to void in-flight deliveries to a node that just
        left or crashed — its delivery entries all carry the handler bound
        at registration time.  The pass doubles as a compaction: already
        cancelled events are dropped too (unreported).
        """
        removed: List[Any] = []
        keep = []
        for entry in self._queue:
            target = entry[2]
            if entry[3] is _EVENT_ENTRY:
                if target.cancelled:
                    target._engine = None
                    continue
                if target.action is action:
                    target.cancelled = True
                    target._engine = None
                    removed.append(target.arg)
                    continue
            elif target is action:
                removed.append(entry[3])
                continue
            keep.append(entry)
        if len(keep) != len(self._queue):
            self._queue[:] = keep
            heapq.heapify(self._queue)
        self._cancelled = 0
        return removed

    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending event; returns False when none is left."""
        queue = self._queue
        while queue:
            time, _sequence, action, arg = heapq.heappop(queue)
            if arg is _EVENT_ENTRY:
                event = action
                if event.cancelled:
                    self._cancelled -= 1
                    continue
                event._engine = None
                self._now = time
                event_arg = event.arg
                if event_arg is NO_ARG:
                    event.action()
                else:
                    event.action(event_arg)
            else:
                self._now = time
                action(arg)
            self._processed += 1
            return True
        return False

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the queue drains (or ``max_events`` is hit); returns events run."""
        queue = self._queue
        pop = heapq.heappop
        event_entry = _EVENT_ENTRY
        no_arg = NO_ARG
        executed = 0
        if max_events is None:
            # The unbounded drain is the phase barrier of every protocol
            # operation — inline the step loop so a message delivery costs
            # one C-level tuple pop and one call.
            while queue:
                time, _sequence, action, arg = pop(queue)
                if arg is event_entry:
                    event = action
                    if event.cancelled:
                        self._cancelled -= 1
                        continue
                    event._engine = None
                    self._now = time
                    arg = event.arg
                    if arg is no_arg:
                        event.action()
                    else:
                        event.action(arg)
                else:
                    self._now = time
                    action(arg)
                executed += 1
            self._processed += executed
            return executed
        while executed < max_events and self.step():
            executed += 1
        return executed

    def run_until_quiescent(self, max_events: Optional[int] = None) -> int:
        """Drain every runnable event; returns how many were executed.

        The batched operations' phase barrier: ``bulk_join`` and the repair
        protocol call this between phases so each phase observes the
        complete effect of the previous one.  Functionally this is
        :meth:`run` — the queue is drained until :attr:`quiescent` — but
        the intent (barrier, not "run the simulation") is explicit at the
        call sites.
        """
        return self.run(max_events)

    def run_until(self, time: float) -> int:
        """Run every event scheduled up to and including ``time``."""
        executed = 0
        queue = self._queue
        while queue:
            head = queue[0]
            if head[3] is _EVENT_ENTRY and head[2].cancelled:
                heapq.heappop(queue)
                self._cancelled -= 1
                head[2]._engine = None
                continue
            if head[0] > time:
                break
            self.step()
            executed += 1
        self._now = max(self._now, time)
        return executed

    def reset(self) -> None:
        """Drop every pending event and rewind the clock to zero."""
        for entry in self._queue:
            if entry[3] is _EVENT_ENTRY:
                entry[2]._engine = None
        self._queue.clear()
        self._cancelled = 0
        self._now = 0.0
        self._processed = 0


class Watchdog:
    """Progress-aware timeout built on the engine's cancellable events.

    Arms one scheduled event ``timeout`` time units out.  :meth:`poke`
    records progress without touching the queue (an O(1) attribute write —
    safe to call once per message on the hot path); when the armed event
    fires, the watchdog compares the clock against the last recorded
    progress and either *re-schedules itself* at ``last_progress + timeout``
    (progress happened, so the operation is alive) or invokes ``on_expire``
    (nothing happened for a full timeout window: a genuine wedge).

    This is what lets the protocol layer put a timeout on multi-hop
    operations whose healthy duration is unbounded (a routed walk pokes the
    watchdog on every hop) while still detecting a crash-severed operation
    after exactly one quiet window.  An operation that completes cancels
    its watchdog, so a fault-free run schedules and cancels the same events
    regardless of outcome — byte-identical virtual time and message counts,
    which the deterministic-replay tests rely on.
    """

    __slots__ = ("_engine", "timeout", "_on_expire", "_label", "_event",
                 "_last_progress", "fired")

    def __init__(self, engine: SimulationEngine, timeout: float,
                 on_expire: Callable[[], None],
                 label: Optional[str] = "watchdog") -> None:
        if timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        self._engine = engine
        self.timeout = timeout
        self._on_expire = on_expire
        self._label = label
        self._last_progress = engine.now
        #: Number of genuine expiries delivered to ``on_expire`` so far.
        self.fired = 0
        self._event: Optional[Event] = engine.schedule(timeout, self._fire,
                                                       label=label)

    @property
    def active(self) -> bool:
        """Whether an expiry event is currently armed."""
        return self._event is not None

    def poke(self) -> None:
        """Record progress: the expiry check slides to ``now + timeout``."""
        self._last_progress = self._engine.now

    def cancel(self) -> None:
        """Disarm the watchdog (the operation completed)."""
        event = self._event
        if event is not None:
            event.cancel()
            self._event = None

    def rearm(self, timeout: Optional[float] = None) -> None:
        """Re-arm after an expiry (or re-start a cancelled watchdog).

        An optional new ``timeout`` implements per-retry backoff.  Progress
        is reset to *now*: the retry just issued counts as activity.
        """
        if timeout is not None:
            if timeout <= 0:
                raise ValueError(f"timeout must be positive, got {timeout}")
            self.timeout = timeout
        self.cancel()
        self._last_progress = self._engine.now
        self._event = self._engine.schedule(self.timeout, self._fire,
                                            label=self._label)

    def _fire(self) -> None:
        self._event = None
        deadline = self._last_progress + self.timeout
        if self._engine.now < deadline:
            # Progress since arming: slide the expiry check to one full
            # quiet window past the last recorded activity.
            self._event = self._engine.schedule_at(deadline, self._fire,
                                                   label=self._label)
            return
        self.fired += 1
        self._on_expire()

"""The discrete-event simulation engine.

A minimal but complete event-driven core: a priority queue of
:class:`~repro.simulation.events.Event` objects ordered by virtual time,
with deterministic tie-breaking, cancellation, bounded runs and basic
accounting.  All higher layers (the network, churn injection, the VoroNet
protocol) only ever talk to :meth:`SimulationEngine.schedule` and
:meth:`SimulationEngine.run`.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional

from repro.simulation.events import Event

__all__ = ["SimulationEngine"]


class SimulationEngine:
    """Priority-queue driven virtual-time simulator.

    Examples
    --------
    >>> engine = SimulationEngine()
    >>> fired = []
    >>> _ = engine.schedule(2.0, lambda: fired.append("b"))
    >>> _ = engine.schedule(1.0, lambda: fired.append("a"))
    >>> engine.run()
    2
    >>> fired
    ['a', 'b']
    """

    def __init__(self) -> None:
        self._queue: List[Event] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._processed = 0

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    @property
    def quiescent(self) -> bool:
        """Whether no runnable (non-cancelled) event is pending.

        Batched operations such as the protocol simulator's ``bulk_join``
        use this as a precondition: their phase barriers assume each
        ``run()`` drained *their* messages, which only holds when nothing
        unrelated was in flight to begin with.
        """
        return not any(not event.cancelled for event in self._queue)

    def schedule(self, delay: float, action: Callable[[], None],
                 label: Optional[str] = None) -> Event:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        event = Event(time=self._now + delay, sequence=next(self._sequence),
                      action=action, label=label)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time: float, action: Callable[[], None],
                    label: Optional[str] = None) -> Event:
        """Schedule ``action`` at an absolute virtual time (not before now)."""
        if time < self._now:
            raise ValueError(f"cannot schedule in the past ({time} < {self._now})")
        return self.schedule(time - self._now, action, label)

    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending event; returns False when none is left."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.fire()
            self._processed += 1
            return True
        return False

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the queue drains (or ``max_events`` is hit); returns events run."""
        executed = 0
        while self.step():
            executed += 1
            if max_events is not None and executed >= max_events:
                break
        return executed

    def run_until(self, time: float) -> int:
        """Run every event scheduled up to and including ``time``."""
        executed = 0
        while self._queue:
            upcoming = self._queue[0]
            if upcoming.cancelled:
                heapq.heappop(self._queue)
                continue
            if upcoming.time > time:
                break
            self.step()
            executed += 1
        self._now = max(self._now, time)
        return executed

    def reset(self) -> None:
        """Drop every pending event and rewind the clock to zero."""
        self._queue.clear()
        self._now = 0.0
        self._processed = 0

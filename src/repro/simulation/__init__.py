"""Discrete-event simulation substrate.

The paper evaluates VoroNet by simulation; this package provides the
simulator: an event engine with virtual time, a message-passing network
layer with latency models and per-message accounting, metric and trace
collection, churn/failure injection, and — most importantly — the
*message-level* implementation of the VoroNet protocol
(:mod:`repro.simulation.protocol`) in which every object acts only on its
local view and every exchanged message is explicit.  The oracle-mode
overlay in :mod:`repro.core` is the fast path used for large parameter
sweeps; this package is what validates its decentralisation and
maintenance-cost claims.

Scaling protocol-mode experiments
---------------------------------
Two mechanisms let the message-level simulator reach the overlay sizes the
oracle handles:

* **Batched construction** — ``ProtocolSimulator.bulk_join(positions)``
  builds an overlay through the pipelined message phases (Morton-sorted
  ``ADD_OBJECT`` carving from locate-grid hinted introducers, a
  back-registration hand-over pass, grid-exact close discovery, and
  grid-seeded long-link searches) instead of running every join to
  quiescence.  It returns a ``BulkJoinReport`` with per-phase message
  counts; the resulting per-node views are identical to
  ``VoroNet.bulk_load`` on the same positions and seed.  Use it to build
  the population, then drive sequential ``join``/``leave``/``query``
  probes for paper-faithful per-operation costs.
* **Per-node routing cache** — each ``ProtocolNode`` serves greedy
  forwarding from a flat candidate block cached against its local view
  epoch, the protocol-mode analogue of the oracle's epoch-cached routing
  tables.  ``VoroNetConfig.use_node_routing_cache`` (default ``True``)
  switches back to per-hop candidate-dict assembly for parity testing;
  answers and hop counts are identical either way.

Fault injection and self-healing
--------------------------------
:mod:`repro.simulation.faults` adds the crash story the paper leaves
open: a ``FaultPlane`` woven into the network layer (crashed nodes,
probabilistic loss/delay, partitions on the virtual clock), heartbeat
failure detection with per-node suspect lists, and a phased repair
protocol that heals surviving views — Voronoi scrubs, long-link
re-resolution through the routed search machinery, close re-discovery —
entirely through counted messages.  ``ProtocolChurnHarness`` wires it all
into one reproducible churn/crash/repair experiment; the oracle-mode
injectors in :mod:`repro.simulation.failures` remain the fast path for
damage accounting without message simulation.

Crash-at-any-message hardening and fuzzing
------------------------------------------
Multi-message operations (join carving, close discovery, long-link
search, leave hand-over) are guarded by engine-scheduled ``Watchdog``
timeouts with idempotent, version-stamped retries under a
``TimeoutPolicy``; a node dying mid-conversation surfaces as a
``timed_out`` outcome instead of wedging the protocol.
:mod:`repro.simulation.fuzz` turns the simulator's determinism into a
Jepsen-style harness: ``CrashScheduleFuzzer`` crashes victims at exact
global message indices — multi-crash sequences and partition windows
armed the same way — and asserts convergence back to clean views, with
every failure replayable from its serialized ``FuzzTrace`` (the classic
single-crash ``(seed, message_index, victim_rank)`` triple is the
one-event special case; see ``TESTING.md``).

Partitions and merge
--------------------
:mod:`repro.simulation.merge` completes the WAN story: a ``FaultPlane``
``split`` cuts the message plane k ways while ``PartitionRuntime`` forks
the substrate per side, so **every** side keeps serving queries and
accepting inserts against its own tessellation; on heal, the union
kernel is rebuilt deterministically (lowest-id wins coordinate and
published-id collisions) and ``MergeProtocol`` floods version-stamped
``MERGE_DIGEST`` anti-entropy across the healed cut until views verify
clean.  ``ProtocolMergeHarness`` drives the scenario matrix (k-way,
asymmetric, flapping) with per-side availability accounting.
"""

from repro.simulation.engine import SimulationEngine, Watchdog
from repro.simulation.events import Event
from repro.simulation.network import (
    ConstantLatency,
    Message,
    Network,
    UniformLatency,
)
from repro.simulation.metrics import MetricsRegistry
from repro.simulation.trace import TraceRecorder
from repro.simulation.failures import (
    ChurnScheduler,
    CrashDamageReport,
    CrashInjector,
    PartitionDamageReport,
    assess_partition_damage,
)
from repro.simulation.faults import (
    FaultDecision,
    FaultPlane,
    HeartbeatConfig,
    HeartbeatDetector,
    PartitionSpec,
    ProtocolChurnHarness,
    ProtocolChurnReport,
    ProtocolCrashInjector,
    RepairProtocol,
    RepairReport,
    SplitSpec,
)
from repro.simulation.fuzz import (
    CrashEvent,
    CrashSchedule,
    CrashScheduleFuzzer,
    FuzzOutcome,
    FuzzSweepReport,
    FuzzTrace,
    PartitionEvent,
)
from repro.simulation.merge import (
    HealSummary,
    MergeHarnessReport,
    MergeProtocol,
    MergeReport,
    PartitionRuntime,
    ProtocolMergeHarness,
)
from repro.simulation.protocol import (
    BulkJoinReport,
    JoinReport,
    LeaveReport,
    ProtocolSimulator,
    QueryReport,
    TimeoutPolicy,
)

__all__ = [
    "SimulationEngine",
    "Watchdog",
    "Event",
    "Network",
    "Message",
    "ConstantLatency",
    "UniformLatency",
    "MetricsRegistry",
    "TraceRecorder",
    "ChurnScheduler",
    "CrashDamageReport",
    "CrashInjector",
    "PartitionDamageReport",
    "assess_partition_damage",
    "FaultDecision",
    "FaultPlane",
    "HeartbeatConfig",
    "HeartbeatDetector",
    "PartitionSpec",
    "SplitSpec",
    "ProtocolChurnHarness",
    "ProtocolChurnReport",
    "ProtocolCrashInjector",
    "RepairProtocol",
    "RepairReport",
    "HealSummary",
    "MergeHarnessReport",
    "MergeProtocol",
    "MergeReport",
    "PartitionRuntime",
    "ProtocolMergeHarness",
    "ProtocolSimulator",
    "BulkJoinReport",
    "JoinReport",
    "LeaveReport",
    "QueryReport",
    "TimeoutPolicy",
    "CrashEvent",
    "CrashSchedule",
    "CrashScheduleFuzzer",
    "FuzzOutcome",
    "FuzzSweepReport",
    "FuzzTrace",
    "PartitionEvent",
]

"""Discrete-event simulation substrate.

The paper evaluates VoroNet by simulation; this package provides the
simulator: an event engine with virtual time, a message-passing network
layer with latency models and per-message accounting, metric and trace
collection, churn/failure injection, and — most importantly — the
*message-level* implementation of the VoroNet protocol
(:mod:`repro.simulation.protocol`) in which every object acts only on its
local view and every exchanged message is explicit.  The oracle-mode
overlay in :mod:`repro.core` is the fast path used for large parameter
sweeps; this package is what validates its decentralisation and
maintenance-cost claims.
"""

from repro.simulation.engine import SimulationEngine
from repro.simulation.events import Event
from repro.simulation.network import (
    ConstantLatency,
    Message,
    Network,
    UniformLatency,
)
from repro.simulation.metrics import MetricsRegistry
from repro.simulation.trace import TraceRecorder
from repro.simulation.failures import ChurnScheduler, CrashInjector
from repro.simulation.protocol import (
    JoinReport,
    LeaveReport,
    ProtocolSimulator,
    QueryReport,
)

__all__ = [
    "SimulationEngine",
    "Event",
    "Network",
    "Message",
    "ConstantLatency",
    "UniformLatency",
    "MetricsRegistry",
    "TraceRecorder",
    "ChurnScheduler",
    "CrashInjector",
    "ProtocolSimulator",
    "JoinReport",
    "LeaveReport",
    "QueryReport",
]

"""Events of the discrete-event engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

__all__ = ["Event"]


@dataclass(order=True)
class Event:
    """One scheduled event.

    Events are ordered by ``(time, sequence)`` so simultaneous events run in
    scheduling order, which keeps runs deterministic.

    Attributes
    ----------
    time:
        Virtual time at which the event fires.
    sequence:
        Monotonic tie-breaker assigned by the engine.
    action:
        Zero-argument callable executed when the event fires.
    label:
        Optional human-readable label for tracing/debugging.
    cancelled:
        Cancelled events are skipped (lazily) when popped from the queue.
    """

    time: float
    sequence: int
    action: Callable[[], None] = field(compare=False)
    label: Optional[str] = field(default=None, compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when due."""
        self.cancelled = True

    def fire(self) -> None:
        """Execute the event's action (no-op when cancelled)."""
        if not self.cancelled:
            self.action()

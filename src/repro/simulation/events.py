"""Events of the discrete-event engine.

:class:`Event` is the hottest allocation in the message plane — every
protocol message becomes one — so it is a hand-rolled ``__slots__`` class
rather than a dataclass: no per-instance ``__dict__``, no generated
``__init__`` indirection, and ordering comparisons that touch exactly the
``(time, sequence)`` key.  The engine additionally keeps its heap keyed by
``(time, sequence)`` tuples so ``heapq`` compares C-level tuples instead of
calling back into Python (see :mod:`repro.simulation.engine`); the rich
comparisons here are kept for API compatibility and direct use in tests.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

__all__ = ["Event", "NO_ARG"]


class _NoArg:
    """Sentinel: the event's action takes no argument."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NO_ARG"


#: Sentinel distinguishing "no argument" from "argument is None".
NO_ARG = _NoArg()


class Event:
    """One scheduled event.

    Events are ordered by ``(time, sequence)`` so simultaneous events run in
    scheduling order, which keeps runs deterministic.

    Attributes
    ----------
    time:
        Virtual time at which the event fires.
    sequence:
        Monotonic tie-breaker assigned by the engine.
    action:
        Callable executed when the event fires.  Called with ``arg`` when
        one was supplied (the engine's ``schedule_call`` fast path — this
        is how the network layer attaches ``(handler, message)`` pairs to
        delivery events without allocating a closure per message) and with
        no arguments otherwise.
    arg:
        Optional single argument passed to ``action``; :data:`NO_ARG` when
        the action is a plain thunk.
    label:
        Optional human-readable label for tracing/debugging.
    cancelled:
        Cancelled events are skipped (lazily) when popped from the queue.
    """

    __slots__ = ("time", "sequence", "action", "arg", "label", "cancelled",
                 "_engine")

    def __init__(self, time: float, sequence: int,
                 action: Callable[..., None],
                 label: Optional[str] = None,
                 arg: Any = NO_ARG) -> None:
        self.time = time
        self.sequence = sequence
        self.action = action
        self.arg = arg
        self.label = label
        self.cancelled = False
        #: Owning engine while the event sits in its queue; cleared when the
        #: event is popped (fired or discarded) so that late ``cancel()``
        #: calls cannot skew the engine's runnable-event accounting.
        self._engine = None

    # ------------------------------------------------------------------
    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when due."""
        if self.cancelled:
            return
        self.cancelled = True
        engine = self._engine
        if engine is not None:
            engine._note_cancelled()

    def fire(self) -> None:
        """Execute the event's action (no-op when cancelled)."""
        if self.cancelled:
            return
        if self.arg is NO_ARG:
            self.action()
        else:
            self.action(self.arg)

    # ------------------------------------------------------------------
    # ordering by (time, sequence) — matches the engine's heap key
    # ------------------------------------------------------------------
    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.sequence) < (other.time, other.sequence)

    def __le__(self, other: "Event") -> bool:
        return (self.time, self.sequence) <= (other.time, other.sequence)

    def __gt__(self, other: "Event") -> bool:
        return (self.time, self.sequence) > (other.time, other.sequence)

    def __ge__(self, other: "Event") -> bool:
        return (self.time, self.sequence) >= (other.time, other.sequence)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (self.time, self.sequence) == (other.time, other.sequence)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        flag = " cancelled" if self.cancelled else ""
        return (f"Event(time={self.time!r}, sequence={self.sequence!r}, "
                f"label={self.label!r}{flag})")

"""Partition merge: split-brain service and anti-entropy reconciliation.

The fault plane can *open* clock-windowed partitions; this module is the
other half of the WAN story — what happens while the overlay is split,
and how the two (or k) diverged halves become one overlay again:

* :class:`PartitionRuntime` forks the shared substrate per side when a
  :meth:`~repro.simulation.faults.FaultPlane.split` opens: each side gets
  a deep-copied kernel with the other sides' vertices removed (its
  members presume everyone across the cut dead and recompute) and its own
  locate grid, so **both sides keep serving queries and accepting
  inserts** against their own topologically consistent tessellation.
  Split-era inserts publish side-local ids drawn from the id space every
  side believes is next — the collision the merge resolves.
* On heal, :meth:`PartitionRuntime.heal` rebuilds the union: the
  pre-split kernel absorbs every side's inserts (ascending id — the
  deterministic lowest-id rule — with coordinate-overlap losers torn
  down and re-carved ids re-assigned from the healed allocator) and its
  version is advanced past every side's fork, so the union dominates the
  kernel-version partial order.
* :class:`MergeProtocol` then runs the epidemic anti-entropy phase:
  boundary nodes of the healed cut exchange version-stamped
  ``MERGE_DIGEST`` views that flood to each node's refreshed neighbours
  (the epidemic neighbour-notify shape), exonerating split-era suspicion
  and re-running close discovery across the cut; the existing
  :class:`~repro.simulation.faults.RepairProtocol` settles long-link
  retargeting and any stragglers, until ``verify_views()`` is clean.

:class:`ProtocolMergeHarness` wires the whole scenario — split, per-side
stabilisation (a *scoped* repair against the side kernel), both-side
inserts and queries (availability measured per side and phase), heal,
merge, and a final parity check against a never-split oracle overlay
built from the union — for the test-suite and
``benchmarks/bench_partition_merge.py``.
"""

from __future__ import annotations

import copy
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.config import VoroNetConfig
from repro.geometry.delaunay import DelaunayTriangulation, DuplicatePointError
from repro.geometry.locate_grid import LocateGrid
from repro.geometry.point import Point
from repro.serving.observability import AvailabilityTracker
from repro.simulation.failures import (PartitionDamageReport,
                                       assess_partition_damage)
from repro.simulation.faults import (FaultPlane, HeartbeatConfig,
                                     HeartbeatDetector, RepairProtocol,
                                     SplitSpec)
from repro.simulation.protocol import JoinReport, ProtocolSimulator
from repro.utils.rng import RandomSource
from repro.workloads.distributions import ObjectDistribution, UniformDistribution
from repro.workloads.generators import generate_objects

__all__ = [
    "PartitionRuntime",
    "HealSummary",
    "MergeProtocol",
    "MergeReport",
    "ProtocolMergeHarness",
    "MergeHarnessReport",
]

#: Rounds-per-epoch stride: each merge round floods under a fresh epoch
#: (``base * stride + round``) so a second round can re-flood where the
#: first round's copies fed the fault plane, while epochs still increase
#: strictly across repeated (flapping) heals.
_EPOCH_STRIDE = 64


class _SideState:  # simlint: ignore[SIM003] — one per split side, not per message
    """One side's forked substrate while a split is open."""

    __slots__ = ("index", "members", "kernel", "locate", "inserted")

    def __init__(self, index: int, members: Set[int],
                 kernel: DelaunayTriangulation, locate: LocateGrid) -> None:
        self.index = index
        self.members = members
        self.kernel = kernel
        self.locate = locate
        #: Object ids published on this side while split, in join order —
        #: the population whose side-local published ids can collide.
        self.inserted: List[int] = []


@dataclass(frozen=True)
class HealSummary:
    """Union-rebuild accounting from one :meth:`PartitionRuntime.heal`."""

    spec: SplitSpec
    epoch: int
    union_inserts: int
    union_removals: int
    coordinate_conflicts: int
    id_collisions_resolved: int
    side_versions: Tuple[int, ...]
    union_version: int


class PartitionRuntime:  # simlint: ignore[SIM003] — one per experiment, not per message
    """Keeps both sides of a split serving, then rebuilds the union on heal.

    The runtime owns the *substrate divergence* model: the message plane
    is already cut by the fault plane's :class:`SplitSpec`; what the
    protocol additionally needs is for each side's kernel consultations
    (``complete_insertion``, repair scrubs, locate-grid seeding) to see
    only that side's world.  :meth:`side` swaps the simulator's kernel and
    locate grid for a side's fork — the global pair is set aside
    unmutated, so :meth:`heal` can rebuild the union against the pre-split
    truth plus per-side deltas instead of reconciling two full forks.
    """

    def __init__(self, simulator: ProtocolSimulator) -> None:
        if simulator.network.faults is None:
            simulator.network.faults = FaultPlane()
        self.simulator = simulator
        self.faults: FaultPlane = simulator.network.faults
        self.spec: Optional[SplitSpec] = None
        self._sides: List[_SideState] = []
        self._global_kernel: Optional[DelaunayTriangulation] = None
        self._global_locate: Optional[LocateGrid] = None
        self._published_base = 0
        self._epoch = 0
        # Query ids far above the serving layer's range, so a runtime
        # riding on a serving simulator never collides in query_answers.
        self._query_seq = 1 << 40
        #: ``(virtual time, spec)`` for every heal the fault plane fired
        #: our hook for — the heal-hook seam ``FaultPlane.on_heal`` exists
        #: for.
        self.heal_log: List[Tuple[float, object]] = []
        self.faults.on_heal(self._note_heal)

    def _note_heal(self, spec: object) -> None:
        self.heal_log.append((self.simulator.engine.now, spec))

    # ------------------------------------------------------------------
    # split lifecycle
    # ------------------------------------------------------------------
    def open_split(self, sides: Sequence[Sequence[int]], *,
                   in_flight: str = "deliver") -> SplitSpec:
        """Open a k-way split and fork the substrate per side.

        ``sides`` must partition the live population.  Each side's kernel
        fork starts as a deep copy of the shared kernel with every other
        side's vertex removed — the removals bump the fork's version, so
        each side's scrub stamps strictly dominate the pre-split ones.
        """
        simulator = self.simulator
        if self.spec is not None:
            raise RuntimeError("a split is already open")
        if not simulator.engine.quiescent:
            raise RuntimeError("cannot open a split with messages in flight")
        assigned = set()
        for side in sides:
            assigned.update(side)
        live = set(simulator.nodes)
        if assigned != live:
            raise ValueError("split sides must partition the live population")
        spec = self.faults.split(sides, simulator.engine.now,
                                 in_flight=in_flight)
        self.spec = spec
        self._published_base = simulator._next_id
        self._global_kernel = simulator.kernel
        self._global_locate = simulator.locate
        self._sides = []
        for index, members in enumerate(spec.sides):
            kernel = copy.deepcopy(self._global_kernel)
            for other in sorted(set(kernel.vertex_ids()) - set(members)):
                kernel.remove(other)
            locate = LocateGrid()
            locate.bulk_insert(
                (object_id, simulator.nodes[object_id].position)
                for object_id in sorted(members))
            self._sides.append(_SideState(index, set(members), kernel, locate))
        return spec

    @property
    def num_sides(self) -> int:
        return len(self._sides)

    def side_members(self, index: int) -> Set[int]:
        """Current membership of one side (split-era joiners included)."""
        return set(self._sides[index].members)

    def side_inserted(self, index: int) -> List[int]:
        """Object ids published on ``index`` while the split was open."""
        return list(self._sides[index].inserted)

    @contextmanager
    def side(self, index: int) -> Iterator[_SideState]:
        """Swap the simulator's kernel/locate for one side's fork.

        Everything run under the context — joins, scoped repairs — sees
        the side's world; the previous pair is restored on exit.  The
        engine must be quiescent at the swap boundaries (an in-flight
        message delivered under the wrong kernel would consult the wrong
        tessellation).
        """
        simulator = self.simulator
        if not simulator.engine.quiescent:
            raise RuntimeError("cannot switch sides with messages in flight")
        state = self._sides[index]
        previous = (simulator.kernel, simulator.locate)
        simulator.kernel = state.kernel
        simulator.locate = state.locate
        try:
            yield state
        finally:
            simulator.kernel, simulator.locate = previous

    # ------------------------------------------------------------------
    # split-era service
    # ------------------------------------------------------------------
    def side_join(self, index: int, position: Point, *,
                  introducer: Optional[int] = None) -> JoinReport:
        """Publish an object on one side while the split is open.

        The join runs the full distributed protocol against the side's
        fork.  The new object's *published* identity is the next id in
        the side-local sequence every side believes is free (base = the
        allocator value when the split opened), which is exactly how two
        isolated halves mint colliding ids; its object id stays globally
        unique, which is what lets the heal resolve the collision
        deterministically.
        """
        state = self._sides[index]
        simulator = self.simulator
        with self.side(index):
            if introducer is None:
                live = sorted(object_id for object_id in state.members
                              if object_id in simulator.nodes)
                if not live:
                    raise RuntimeError(f"side {index} has no live members")
                introducer = live[0]
            report = simulator.join(position, introducer=introducer)
            object_id = report.object_id
            if report.outcome == "completed" and object_id in simulator.nodes:
                node = simulator.nodes[object_id]
                node.published_id = self._published_base + len(state.inserted)
                state.members.add(object_id)
                state.inserted.append(object_id)
                assert self.spec is not None
                self.spec.assign(object_id, index)
        return report

    def side_query(self, index: int, target: Point, *,
                   start: Optional[int] = None) -> Optional[Dict]:
        """Serve one query from a side; ``None`` when no answer arrived.

        Unlike :meth:`ProtocolSimulator.query` — which silently
        substitutes the start node when the walk dies — this surfaces an
        unanswered query as a miss, which is the honest availability
        signal during a split (a walk whose next hop crosses the cut
        feeds the fault plane and never answers).
        """
        state = self._sides[index]
        simulator = self.simulator
        live = sorted(object_id for object_id in state.members
                      if object_id in simulator.nodes)
        if start is None:
            if not live:
                return None
            start = live[0]
        query_id = self._query_seq
        self._query_seq += 1
        simulator.start_query(target, start=start, query_id=query_id)
        simulator.engine.run()
        return simulator.query_answers.pop(query_id, None)

    # ------------------------------------------------------------------
    # heal: union rebuild
    # ------------------------------------------------------------------
    def heal(self) -> HealSummary:
        """Close the split and rebuild the shared substrate as the union.

        Restores the pre-split kernel/locate, heals the fault plane (the
        registered heal hooks fire), then applies every side's delta:
        departed vertices are removed, split-era inserts are carved into
        the union in ascending object-id order — the deterministic
        lowest-id rule; an insert whose exact coordinates are already
        taken (both sides carved the same point: a region overlap) loses
        and is torn down — and published-id collisions are re-assigned
        from the healed allocator.  Finally the union kernel's version is
        advanced past every side fork, so its snapshots dominate the
        partial order at every node.
        """
        simulator = self.simulator
        spec = self.spec
        if spec is None:
            raise RuntimeError("no split is open")
        if not simulator.engine.quiescent:
            raise RuntimeError("cannot heal with messages in flight")
        assert self._global_kernel is not None
        assert self._global_locate is not None
        simulator.kernel = self._global_kernel
        simulator.locate = self._global_locate
        side_versions = tuple(state.kernel.version for state in self._sides)
        self.faults.heal_partitions()
        kernel = simulator.kernel
        locate = simulator.locate
        removals = 0
        for object_id in sorted(kernel.vertex_ids()):
            if object_id not in simulator.nodes:
                kernel.remove(object_id)
                locate.discard(object_id)
                removals += 1
        inserts = 0
        conflicts = 0
        for object_id in sorted(simulator.nodes):
            if object_id in kernel:
                continue
            node = simulator.nodes[object_id]
            try:
                kernel.insert(node.position, vertex_id=object_id,
                              hint=locate.hint(node.position))
            except DuplicatePointError:
                # Region overlap: an earlier (lower) id already carved
                # these exact coordinates on the other side.  Lowest id
                # keeps the region; the loser is torn down, exactly as a
                # duplicate-coordinate join is refused in steady state.
                conflicts += 1
                simulator.network.unregister(object_id)
                del simulator.nodes[object_id]
                continue
            locate.insert(object_id, node.position)
            inserts += 1
        kernel.advance_version(max(side_versions, default=0) + 1)
        # Published-id collisions: objects inserted on different sides
        # minted the same side-local id.  The lowest object id keeps the
        # published identity; every loser re-publishes under a fresh id
        # from the healed allocator (its region was already re-carved
        # into the union above).
        claims: Dict[int, List[int]] = {}
        for state in self._sides:
            for object_id in state.inserted:
                if object_id not in simulator.nodes:
                    continue
                published = simulator.nodes[object_id].published_id
                if published is not None:
                    claims.setdefault(published, []).append(object_id)
        collisions = 0
        for published in sorted(claims):
            claimants = sorted(claims[published])
            for loser in claimants[1:]:
                simulator.nodes[loser].published_id = simulator._next_id
                simulator._next_id += 1
                collisions += 1
        self._epoch += 1
        summary = HealSummary(spec=spec, epoch=self._epoch,
                              union_inserts=inserts, union_removals=removals,
                              coordinate_conflicts=conflicts,
                              id_collisions_resolved=collisions,
                              side_versions=side_versions,
                              union_version=kernel.version)
        self.spec = None
        self._sides = []
        return summary


@dataclass(frozen=True)
class MergeReport:
    """Outcome of one heal + anti-entropy merge."""

    converged: bool
    rounds: int
    time_to_converge: float
    digest_messages: int
    reconcile_messages: int
    repair_messages: Dict[str, int]
    union_inserts: int
    union_removals: int
    coordinate_conflicts: int
    id_collisions_resolved: int
    boundary_edges: int
    verify_problems: int

    @property
    def messages(self) -> int:
        return (self.digest_messages + self.reconcile_messages
                + sum(self.repair_messages.values()))


class MergeProtocol:  # simlint: ignore[SIM003] — one per heal, not per message
    """Epidemic anti-entropy across a healed cut, settled by repair.

    Each round: every boundary edge of the healed split (union-kernel
    edges whose endpoints sat on different sides) carries one
    version-stamped ``MERGE_DIGEST`` from its lower endpoint; the digest
    floods epoch-guarded through the refreshed neighbourhoods, refreshing
    views, exonerating split-era suspicion and re-running close discovery
    across the cut, with ``MERGE_RECONCILE`` acks pulling in nodes whose
    digest copies were lost.  The standing :class:`RepairProtocol` then
    settles what flooding cannot — long links retargeted *within* a side
    re-resolve to their union owners via the routed search, and any view
    the flood missed is scrubbed by the audit pass — until
    ``verify_views()`` is clean or ``max_rounds`` is spent.
    """

    def __init__(self, simulator: ProtocolSimulator, spec: SplitSpec, *,
                 epoch_base: int = 1,
                 max_rounds: int = 4,
                 max_repair_rounds: int = 8,
                 detector: Optional[HeartbeatDetector] = None) -> None:
        self.simulator = simulator
        self.spec = spec
        self.epoch_base = epoch_base
        self.max_rounds = max_rounds
        self.repairer = RepairProtocol(simulator, detector=detector,
                                       max_rounds=max_repair_rounds)

    def boundary_edges(self) -> List[Tuple[int, int]]:
        """Union-kernel edges crossing the healed cut, each once, sorted."""
        spec = self.spec
        edges: Set[Tuple[int, int]] = set()
        for u, v in self.simulator.kernel.edges():
            side_u = spec.side_of(u)
            side_v = spec.side_of(v)
            if side_u is not None and side_v is not None and side_u != side_v:
                edges.add((min(u, v), max(u, v)))
        return sorted(edges)

    def run(self, union: Optional[HealSummary] = None) -> MergeReport:
        """Run digest + settle rounds until clean views (or the cap)."""
        simulator = self.simulator
        network = simulator.network
        heal_time = simulator.engine.now
        boundary = self.boundary_edges()
        digest_total = reconcile_total = 0
        repair_messages: Dict[str, int] = {}
        rounds = 0
        converged = False
        problems: List[str] = []
        for round_index in range(self.max_rounds):
            rounds += 1
            epoch = self.epoch_base * _EPOCH_STRIDE + round_index
            version = simulator.kernel.version
            digest_before = network.sent_by_kind.get("MERGE_DIGEST", 0)
            reconcile_before = network.sent_by_kind.get("MERGE_RECONCILE", 0)
            for u, v in boundary:
                sender = simulator.nodes.get(u)
                if sender is None or v not in simulator.nodes:
                    continue
                simulator.send(sender, v, "MERGE_DIGEST",
                               {"epoch": epoch, "version": version})
            simulator.engine.run_until_quiescent()
            digest_total += (network.sent_by_kind.get("MERGE_DIGEST", 0)
                             - digest_before)
            reconcile_total += (network.sent_by_kind.get("MERGE_RECONCILE", 0)
                                - reconcile_before)
            settle = self.repairer.repair()
            for phase, count in settle.phase_messages.items():
                repair_messages[phase] = repair_messages.get(phase, 0) + count
            problems = simulator.verify_views()
            if settle.converged and not problems:
                converged = True
                break
        simulator.trace.record(simulator.engine.now, "partition_merge",
                               rounds=rounds, converged=converged,
                               boundary_edges=len(boundary))
        return MergeReport(
            converged=converged, rounds=rounds,
            time_to_converge=simulator.engine.now - heal_time,
            digest_messages=digest_total,
            reconcile_messages=reconcile_total,
            repair_messages=repair_messages,
            union_inserts=union.union_inserts if union else 0,
            union_removals=union.union_removals if union else 0,
            coordinate_conflicts=union.coordinate_conflicts if union else 0,
            id_collisions_resolved=(union.id_collisions_resolved
                                    if union else 0),
            boundary_edges=len(boundary),
            verify_problems=len(problems))


@dataclass(frozen=True)
class MergeHarnessReport:
    """One full split/serve/heal/merge experiment (possibly flapping)."""

    num_objects: int
    cycles: int
    sides: int
    converged: bool
    cycle_reports: Tuple[MergeReport, ...]
    damage_reports: Tuple[PartitionDamageReport, ...]
    availability: Dict
    final_verify_problems: int
    oracle_view_parity: bool
    routing_parity_queries: int
    routing_parity_mismatches: int
    messages: int
    virtual_time: float

    @property
    def routing_parity(self) -> bool:
        return self.routing_parity_mismatches == 0


class ProtocolMergeHarness:  # simlint: ignore[SIM003] — one per experiment, not per message
    """Drives the full partition/merge scenario matrix, reproducibly.

    Each cycle (``cycles > 1`` models flapping partitions): assign every
    live object a side (seeded shuffle honouring ``side_fractions``),
    open the split, measure *degraded* availability (queries issued while
    views still reference the far side feed the fault plane), let
    detection suspect the cut and run a **scoped repair per side** so
    each half converges to its own fork, insert ``inserts_per_side``
    objects on *every* side (minting colliding published ids), measure
    *stable* per-side availability, then heal and merge.  After the last
    cycle the overlay must be byte-identical to a never-split oracle
    tessellation built from the union, including routing parity on
    sampled lookups.
    """

    def __init__(self, *, num_objects: int = 120, seed: int = 7,
                 num_sides: int = 2,
                 side_fractions: Optional[Sequence[float]] = None,
                 cycles: int = 1,
                 inserts_per_side: int = 2,
                 queries_per_side: int = 12,
                 degraded_queries_per_side: int = 4,
                 num_long_links: int = 1,
                 loss_probability: float = 0.0,
                 heartbeat_interval: float = 8.0,
                 miss_threshold: int = 2,
                 max_detection_rounds: int = 8,
                 max_side_repair_rounds: int = 6,
                 max_merge_rounds: int = 4,
                 max_repair_rounds: int = 8,
                 parity_queries: int = 32,
                 in_flight: str = "deliver",
                 distribution: Optional[ObjectDistribution] = None) -> None:
        if num_sides < 2:
            raise ValueError(f"need at least 2 sides, got {num_sides}")
        if side_fractions is not None:
            if len(side_fractions) != num_sides:
                raise ValueError("side_fractions must name every side")
            if any(f <= 0 for f in side_fractions):
                raise ValueError("side fractions must be positive")
        if num_objects < 8 * num_sides:
            raise ValueError(f"{num_objects} objects cannot sustain "
                             f"{num_sides} independently serving sides")
        self.num_objects = num_objects
        self.seed = seed
        self.num_sides = num_sides
        self.side_fractions = (tuple(side_fractions)
                               if side_fractions is not None else None)
        self.cycles = cycles
        self.inserts_per_side = inserts_per_side
        self.queries_per_side = queries_per_side
        self.degraded_queries_per_side = degraded_queries_per_side
        self.loss_probability = loss_probability
        self.max_detection_rounds = max_detection_rounds
        self.max_side_repair_rounds = max_side_repair_rounds
        self.max_merge_rounds = max_merge_rounds
        self.max_repair_rounds = max_repair_rounds
        self.parity_queries = parity_queries
        self.in_flight = in_flight
        self.distribution = distribution or UniformDistribution()
        capacity = 4 * (num_objects
                        + cycles * num_sides * inserts_per_side + 8)
        self.config = VoroNetConfig(n_max=capacity,
                                    num_long_links=num_long_links, seed=seed)
        self.faults = FaultPlane(seed=seed + 1)
        self.simulator = ProtocolSimulator(self.config, seed=seed,
                                           faults=self.faults)
        self.runtime = PartitionRuntime(self.simulator)
        self.detector = HeartbeatDetector(
            self.simulator,
            config=HeartbeatConfig(interval=heartbeat_interval,
                                   miss_threshold=miss_threshold))
        self.availability = AvailabilityTracker()
        self.activity_rng = RandomSource(seed + 5)

    # ------------------------------------------------------------------
    def _assign_sides(self) -> List[List[int]]:
        """Seeded side assignment of the live population, every side ≥ 4."""
        live = sorted(self.simulator.nodes)
        # Fisher–Yates over the sorted ids with the harness stream: the
        # assignment depends only on (seed, population), not dict order.
        for i in range(len(live) - 1, 0, -1):
            j = self.activity_rng.integer(0, i + 1)
            live[i], live[j] = live[j], live[i]
        fractions = self.side_fractions
        if fractions is None:
            fractions = tuple(1.0 for _ in range(self.num_sides))
        total = sum(fractions)
        sides: List[List[int]] = []
        offset = 0
        for index, fraction in enumerate(fractions):
            if index == self.num_sides - 1:
                chunk = live[offset:]
            else:
                count = max(4, int(round(len(live) * fraction / total)))
                chunk = live[offset:offset + count]
            offset += len(chunk)
            if len(chunk) < 4:
                raise RuntimeError(f"side {index} too small ({len(chunk)}); "
                                   f"grow num_objects or rebalance fractions")
            sides.append(chunk)
        return sides

    def _cross_side_suspected(self, spec: SplitSpec) -> bool:
        """Has every monitored cross-side peer landed on a suspect list?"""
        simulator = self.simulator
        for object_id in sorted(simulator.nodes):
            node = simulator.nodes[object_id]
            own = spec.side_of(object_id)
            if own is None:
                continue
            for peer in node.monitored_peers():
                peer_side = spec.side_of(peer)
                if (peer_side is not None and peer_side != own
                        and peer not in node.suspects):
                    return False
        return True

    def _serve_side_queries(self, spec: SplitSpec, phase: str,
                            count: int) -> None:
        for index in range(self.num_sides):
            for _ in range(count):
                target = self.activity_rng.random_point()
                answer = self.runtime.side_query(index, target)
                self.availability.record(index, phase, answer is not None)

    # ------------------------------------------------------------------
    def run(self) -> MergeHarnessReport:
        simulator = self.simulator
        runtime = self.runtime
        positions = generate_objects(self.distribution, self.num_objects,
                                     RandomSource(self.seed + 3))
        simulator.bulk_join(positions)
        cycle_reports: List[MergeReport] = []
        damage_reports: List[PartitionDamageReport] = []
        converged = True
        for _cycle in range(self.cycles):
            spec = runtime.open_split(self._assign_sides(),
                                      in_flight=self.in_flight)
            damage_reports.append(
                assess_partition_damage(simulator.nodes, spec.side_of))
            # Degraded phase: views still reference the far side, so a
            # walk whose greedy next hop crosses the cut dies silently.
            self._serve_side_queries(spec, "degraded",
                                     self.degraded_queries_per_side)
            # Detection + per-side stabilisation, under the configured
            # split-era loss (retry-safe machinery only).
            self.faults.set_loss(self.loss_probability)
            for _ in range(self.max_detection_rounds):
                self.detector.run_round()
                if self._cross_side_suspected(spec):
                    break
            for index in range(self.num_sides):
                with runtime.side(index):
                    RepairProtocol(simulator, detector=self.detector,
                                   max_rounds=self.max_side_repair_rounds,
                                   scope=runtime.side_members(index)).repair()
            self.faults.set_loss(0.0)
            # Both-side inserts: every side publishes against its own
            # fork, minting colliding side-local ids.
            for _ in range(self.inserts_per_side):
                for index in range(self.num_sides):
                    runtime.side_join(index,
                                      self.activity_rng.random_point())
            # Stable phase: each side serves from its own tessellation.
            self._serve_side_queries(spec, "stable", self.queries_per_side)
            # Heal + merge.
            summary = runtime.heal()
            self.availability.mark_heal(simulator.engine.now)
            self.faults.set_loss(self.loss_probability)
            merge = MergeProtocol(
                simulator, summary.spec, epoch_base=summary.epoch,
                max_rounds=self.max_merge_rounds,
                max_repair_rounds=self.max_repair_rounds,
                detector=self.detector)
            report = merge.run(summary)
            self.faults.set_loss(0.0)
            if report.converged:
                self.availability.mark_converged(simulator.engine.now)
            cycle_reports.append(report)
            converged = converged and report.converged
        # Never-split oracle: one tessellation built from the union
        # population.  Delaunay triangulations are unique in general
        # position, so insertion order cannot matter — byte-identical
        # views here mean the merge truly erased the split.
        oracle = DelaunayTriangulation()
        for object_id in sorted(simulator.nodes):
            oracle.insert(simulator.nodes[object_id].position,
                          vertex_id=object_id)
        view_parity = all(
            set(simulator.nodes[object_id].voronoi)
            == set(oracle.neighbors(object_id))
            for object_id in sorted(simulator.nodes))
        mismatches = 0
        parity_rng = RandomSource(self.seed + 11)
        live = sorted(simulator.nodes)
        for k in range(self.parity_queries):
            target = parity_rng.random_point()
            start = live[parity_rng.integer(0, len(live))]
            query_id = (1 << 41) + k
            simulator.start_query(target, start=start, query_id=query_id)
            simulator.engine.run()
            answer = simulator.query_answers.pop(query_id, None)
            expected = oracle.nearest_vertex(target)
            if answer is None or answer["owner"] != expected:
                mismatches += 1
        problems = simulator.verify_views()
        return MergeHarnessReport(
            num_objects=self.num_objects, cycles=self.cycles,
            sides=self.num_sides,
            converged=converged and not problems,
            cycle_reports=tuple(cycle_reports),
            damage_reports=tuple(damage_reports),
            availability=self.availability.summary(),
            final_verify_problems=len(problems),
            oracle_view_parity=view_parity,
            routing_parity_queries=self.parity_queries,
            routing_parity_mismatches=mismatches,
            messages=simulator.network.messages_sent,
            virtual_time=simulator.engine.now)

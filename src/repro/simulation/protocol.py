"""Message-level (distributed) implementation of the VoroNet protocol.

This module runs Algorithms 1–5 of the paper the way a deployment would:
every object is a :class:`ProtocolNode` owning *only its local view*
(positions of its Voronoi neighbours, close neighbours, long-range contacts
and back registrations), and every interaction between objects is an
explicit :class:`~repro.simulation.network.Message` delivered through the
event engine and counted.  Greedy forwarding decisions are taken purely
from the local view of the node currently holding the message.

One shared :class:`~repro.geometry.delaunay.DelaunayTriangulation` instance
acts as each object's *local* topologically consistent Voronoi computation
(the role Sugihara–Iri plays in the paper): when a region owner executes
``AddVoronoiRegion`` / ``RemoveVoronoiRegion`` it consults the kernel to
obtain the updated neighbourhoods it must distribute.  This substitution
changes no message: the set of objects that must be informed — the new
object's Voronoi neighbours — is exactly the set the kernel reports, and
each is notified with one counted ``REGION_UPDATE`` message, as in the
paper.  What the simulation therefore measures faithfully is the paper's
own cost model: hops per routed operation and messages per maintenance
operation.

Batched construction (:meth:`ProtocolSimulator.bulk_join`)
----------------------------------------------------------
Sequential :meth:`ProtocolSimulator.join` runs every join to quiescence —
N routed ``ADD_OBJECT`` walks from random introducers, N routed long-link
searches — which caps protocol-mode experiments well below the overlay
sizes the oracle reaches with :meth:`~repro.core.overlay.VoroNet.bulk_load`.
:meth:`ProtocolSimulator.bulk_join` is the message-level mirror of that
fast path: the batch is Morton-sorted, ``ADD_OBJECT`` routing is seeded
from the simulator's :class:`~repro.geometry.locate_grid.LocateGrid` (the
introducer is already next to the new region), and the protocol phases are
pipelined across the whole batch — one engine drain per phase instead of
one per join.  Every message is still explicit and counted; what the batch
removes is the per-join quiescence barriers, the poly-log routing walks,
and the repeated view snapshots a node receives while its neighbourhood
fills in (each recipient gets its final view exactly once).

Per-node routing cache
----------------------
Greedy forwarding reads each node's candidates from a lazily built flat
``(id, x, y)`` block cached against the node's :attr:`ProtocolNode.view_epoch`,
which every view-mutating message handler bumps — the protocol-mode
analogue of the oracle's epoch-cached routing tables.  The
``use_node_routing_cache`` configuration switch keeps the per-hop dict
assembly baseline for parity tests; answers are identical either way.

Fault tolerance
---------------
Crash/loss/partition injection and the self-healing protocol live in
:mod:`repro.simulation.faults`.  The message side is implemented here as
ordinary handlers — ``PING``/``PONG`` heartbeats, ``SUSPECT_NOTIFY``
suspicion gossip, ``VIEW_SCRUB`` view repair, and the reuse of the routed
``SEARCH_LONG_LINK`` machinery to re-resolve dangling long links — each
respecting the ``view_epoch`` contract above.

The oracle-mode overlay (:class:`repro.core.overlay.VoroNet`) is the fast
path for large sweeps; integration tests check that both executions produce
the same neighbour structure on identical inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Callable, ClassVar, Dict, List, Optional,
                    Sequence, Set, Tuple)

import numpy as np

from repro.core.config import VoroNetConfig
from repro.core.long_range import choose_long_range_target, choose_long_range_target_array
from repro.geometry.delaunay import DelaunayTriangulation, DuplicatePointError, morton_order
from repro.geometry.locate_grid import LocateGrid
from repro.geometry.point import Point, distance
from repro.simulation.engine import SimulationEngine, Watchdog
from repro.simulation.metrics import MetricsRegistry
from repro.simulation.network import ConstantLatency, LatencyModel, Message, Network
from repro.simulation.trace import TraceRecorder
from repro.utils.rng import RandomSource

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.simulation.faults import FaultPlane

__all__ = ["ProtocolSimulator", "ProtocolNode", "JoinReport", "LeaveReport",
           "QueryReport", "BulkJoinReport", "TimeoutPolicy"]

#: Default number of ``ADD_OBJECT`` sends pipelined between engine drains in
#: :meth:`ProtocolSimulator.bulk_join`.  View snapshots are deferred to the
#: dedicated views phase, so routing during the carve runs over pre-batch
#: views either way (harmless: a stale view only shortens the walk to
#: wherever the hint landed, the kernel carve is exact); what the drain
#: between chunks refreshes is the locate grid, keeping the next chunk's
#: introducer hints O(1) from their targets, and it bounds how many
#: messages sit in flight at once.
DEFAULT_BULK_CHUNK = 128


# ----------------------------------------------------------------------
# reports
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JoinReport:
    """Cost of one distributed join.

    ``outcome`` is ``"completed"`` on the happy path, ``"timed_out"`` when
    the operation's watchdog exhausted its retries (e.g. the only node
    holding the pending join's starter state crashed mid-conversation) and
    ``"rejected"`` when the position duplicated a published object.  A
    non-completed join never hangs the caller: the engine drains, the
    report states what happened, and the repair protocol's audits own any
    residual cleanup.
    """

    object_id: int
    routing_hops: int
    messages: int
    virtual_time: float
    outcome: str = "completed"


@dataclass(frozen=True)
class BulkJoinReport:
    """Cost of one batched distributed construction.

    ``phase_messages`` breaks the total down by protocol phase
    (``carve`` / ``views`` / ``handover`` / ``close`` / ``long_links``);
    the same counts are recorded in the simulator's trace as
    ``bulk_join_phase`` records and aggregated into the
    ``bulk_join_messages`` histogram.

    ``timed_out`` lists batch members that never made it into the overlay
    (they crashed mid-batch, or their carve could not be re-driven within
    the audit budget); empty in every fault-free run.
    """

    object_ids: List[int]
    messages: int
    phase_messages: Dict[str, int]
    virtual_time: float
    timed_out: Tuple[int, ...] = ()


@dataclass(frozen=True)
class LeaveReport:
    """Cost of one distributed (graceful) departure.

    ``outcome`` is ``"timed_out"`` when the leaver crashed while its own
    hand-over was still draining — the survivors saw an abrupt crash, not
    a graceful departure, and the detect/repair pipeline owns the cleanup.
    """

    object_id: int
    messages: int
    virtual_time: float
    outcome: str = "completed"


@dataclass(frozen=True)
class QueryReport:
    """Cost and answer of one distributed point query."""

    target: Point
    owner: int
    routing_hops: int
    messages: int


@dataclass(frozen=True)
class TimeoutPolicy:
    """Per-operation timeout/retry/backoff parameters.

    The timeouts are *quiet windows*, not operation budgets: each tracked
    operation runs a progress-aware :class:`~repro.simulation.engine.Watchdog`
    that is poked on every forwarding hop and partial reply, so a long but
    healthy routed walk never expires — only a genuinely wedged operation
    (its in-flight message fed to a crash, loss or partition) does.  On
    expiry the operation's retry hook re-issues its idempotent,
    version-stamped messages and the window is stretched by ``backoff``;
    after ``max_retries`` expiries the operation is abandoned and surfaced
    as a ``timed_out`` outcome.  ``enabled=False`` restores the pre-hardening
    behaviour (no watchdogs are ever armed).
    """

    join_timeout: float = 12.0
    close_timeout: float = 12.0
    long_link_timeout: float = 12.0
    max_retries: int = 3
    backoff: float = 2.0
    enabled: bool = True

    def __post_init__(self) -> None:
        for name in ("join_timeout", "close_timeout", "long_link_timeout"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {self.backoff}")


# ----------------------------------------------------------------------
# per-object state
# ----------------------------------------------------------------------
@dataclass
class _LocalLongLink:
    target: Point
    neighbor: int
    neighbor_position: Point


@dataclass
class ProtocolNode:
    """One object and its strictly local view.

    ``view_epoch`` counts local view mutations: every message handler that
    changes the view bumps it (via :meth:`touch_view`), invalidating the
    node's cached flat routing block.  ``view_version`` tracks the newest
    kernel version whose snapshot this node has applied, so a view update
    overtaken in flight (possible under non-FIFO latency models and the
    pipelined bulk join) can never overwrite a fresher one.
    """

    object_id: int
    position: Point
    simulator: "ProtocolSimulator" = field(repr=False)
    voronoi: Dict[int, Point] = field(default_factory=dict)
    close: Dict[int, Point] = field(default_factory=dict)
    long_links: List[_LocalLongLink] = field(default_factory=list)
    back_links: Dict[Tuple[int, int], Point] = field(default_factory=dict)
    #: Voronoi neighbours whose ``CLOSE_REPLY`` is still awaited, and
    #: whether the close phase already completed.  Set-based (not a bare
    #: counter) so duplicate and late replies are idempotent: a reply from
    #: a peer not in the set changes nothing, and the long-link phase can
    #: never be double-started by a retried request's second answer.
    pending_close_peers: Set[int] = field(default_factory=set)
    close_phase_done: bool = False
    #: Long-link slots whose ``LONG_LINK_ESTABLISHED`` is still awaited.
    #: First establishment wins; a late duplicate (a retried search whose
    #: original answer survived after all) is told to drop its redundant
    #: back registration instead of overwriting the link.
    pending_link_indices: Set[int] = field(default_factory=set)
    #: Whether this node already applied its first ``CREATE_OBJECT`` view
    #: snapshot.  A duplicate (retried carve re-sending the snapshot)
    #: refreshes the view but must not restart close discovery or append
    #: another batch of long links.
    bootstrapped: bool = False
    view_epoch: int = 0
    view_version: int = -1
    #: Failure-detection bookkeeping (driven by the fault subsystem,
    #: :mod:`repro.simulation.faults`).  ``last_heard`` maps a monitored
    #: peer to the newest heartbeat round it answered, ``missed_heartbeats``
    #: counts its consecutive unanswered rounds, and ``suspects`` is this
    #: node's local list of peers presumed crashed.  None of these are part
    #: of the routing view, so they never bump ``view_epoch``.
    last_heard: Dict[int, int] = field(default_factory=dict)
    missed_heartbeats: Dict[int, int] = field(default_factory=dict)
    suspects: Set[int] = field(default_factory=set)
    #: Piggy-backed liveness (``HeartbeatConfig.piggyback``): virtual time
    #: this node last received *any* message from a peer, and the
    #: ``(detector era, round)`` in which this node last pinged a peer
    #: (the era scopes entries to one detector, so bookkeeping left by a
    #: retired detector can never suppress answers to a new one).
    #: Maintained only while the simulator's ``piggyback_liveness`` switch
    #: is on; like the detector bookkeeping above, not part of the
    #: routing view.
    last_contact: Dict[int, float] = field(default_factory=dict)
    last_ping_round: Dict[int, Tuple[Optional[int], int]] = field(
        default_factory=dict)
    #: Peers exonerated after being suspected (their PONG refuted the
    #: suspicion).  Suspicion scrubbed their close entry destructively, so
    #: the repair protocol's close re-discovery must revisit this node
    #: even once its suspect list is empty; the repair round clears the
    #: set after re-discovering.
    rehabilitated: Set[int] = field(default_factory=set)
    #: Externally published identity.  Normally ``None`` (the object id is
    #: the identity); objects inserted *during* a network split publish a
    #: side-local id drawn from the id space both sides believe is next —
    #: the collision the merge protocol resolves deterministically on heal
    #: (lowest object id keeps the claim, losers are re-assigned from the
    #: healed allocator).
    published_id: Optional[int] = None
    #: Newest merge epoch this node has reconciled (``MERGE_DIGEST``
    #: handling).  The epoch guard is what terminates the epidemic flood:
    #: a node hearing a digest for an epoch it already processed stays
    #: silent instead of re-flooding.
    merge_epoch: int = -1
    _block_epoch: int = field(default=-1, repr=False, init=False)
    _block: Optional[List[Tuple[int, float, float]]] = field(default=None, repr=False,
                                                             init=False)

    # ------------------------------------------------------------------
    # view helpers
    # ------------------------------------------------------------------
    def touch_view(self) -> None:
        """Mark the local view changed, invalidating the cached routing block."""
        self.view_epoch += 1

    def routing_candidates(self) -> Dict[int, Point]:
        """Every neighbour usable for greedy forwarding, with its position."""
        candidates: Dict[int, Point] = {}
        candidates.update(self.voronoi)
        candidates.update(self.close)
        for link in self.long_links:
            if link.neighbor != self.object_id:
                candidates[link.neighbor] = link.neighbor_position
        candidates.pop(self.object_id, None)
        return candidates

    def routing_block(self) -> List[Tuple[int, float, float]]:
        """Flat ``(id, x, y)`` forwarding candidates, cached per view epoch.

        Rebuilt lazily from :meth:`routing_candidates` whenever the view
        epoch moved, so the block is always equal to the freshly assembled
        candidate dict — the invariant the protocol-level cache tests pin.
        """
        if self._block is None or self._block_epoch != self.view_epoch:
            self._block = [(neighbor, position[0], position[1])
                           for neighbor, position in self.routing_candidates().items()]
            self._block_epoch = self.view_epoch
        return self._block

    def greedy_next_hop(self, target: Point) -> Optional[int]:
        """Neighbour strictly closer to ``target`` than this node, if any.

        Peers on the local suspect list are never selected: forwarding to a
        presumed-crashed node would silently lose the message, so routed
        repair traffic (and any operation racing a repair) detours around
        suspects instead.  Suspicion is not view state, so the cached
        routing block is filtered at selection time rather than rebuilt.
        """
        tx, ty = target
        px, py = self.position
        best = None
        best_d = (px - tx) * (px - tx) + (py - ty) * (py - ty)
        suspects = self.suspects if self.suspects else None
        if self.simulator.config.use_node_routing_cache:
            for neighbor, x, y in self.routing_block():
                if suspects is not None and neighbor in suspects:
                    continue
                d = (x - tx) * (x - tx) + (y - ty) * (y - ty)
                if d < best_d:
                    best, best_d = neighbor, d
        else:
            for neighbor, (x, y) in self.routing_candidates().items():
                if suspects is not None and neighbor in suspects:
                    continue
                d = (x - tx) * (x - tx) + (y - ty) * (y - ty)
                if d < best_d:
                    best, best_d = neighbor, d
        return best

    def view_size(self) -> int:
        """Total number of entries stored at this object."""
        return (len(self.voronoi) + len(self.close) + len(self.long_links)
                + len(self.back_links))

    def monitored_peers(self) -> Set[int]:
        """Every peer this node holds a reference to, and therefore monitors.

        The heartbeat detector pings exactly this set: Voronoi neighbours,
        close neighbours, long-link endpoints *and* back-link sources — a
        crash is only observable by the nodes left holding a reference to
        the victim, so monitoring the full reference set is what makes
        detection complete.
        """
        peers = set(self.voronoi) | set(self.close)
        peers.update(link.neighbor for link in self.long_links)
        peers.update(source for source, _index in self.back_links)
        peers.discard(self.object_id)
        return peers

    def references(self, peer: int) -> bool:
        """Whether any local view entry still points at ``peer``."""
        return (peer in self.voronoi or peer in self.close
                or any(link.neighbor == peer for link in self.long_links)
                or any(source == peer for source, _index in self.back_links))

    def apply_suspicion(self, peers: Set[int]) -> bool:
        """Locally scrub state that only serves a now-suspected peer.

        Close entries for suspects and back registrations *sourced* at
        suspects are dropped: both are pure services to the peer, so a
        node presuming it dead stops providing them — a local decision
        needing no message, like the paper's local functions.  A false
        suspicion costs only a close entry, which the repair protocol's
        grid-seeded re-discovery (and the peer's own declarations)
        restores.  Voronoi entries are *not* touched here: replacing them
        needs a fresh consistent view, which only a version-stamped
        ``VIEW_SCRUB``/``REGION_UPDATE`` can deliver.  Returns whether the
        view changed (the epoch is bumped if so).
        """
        changed = False
        for peer in sorted(peers):
            if self.close.pop(peer, None) is not None:
                changed = True
        stale_back = [key for key in self.back_links if key[0] in peers]
        for key in stale_back:
            del self.back_links[key]
            changed = True
        if changed:
            self.touch_view()
        return changed

    def gc_suspects(self) -> None:
        """Drop suspects no longer referenced by any local view entry.

        Called by the repair driver after a round drains: once every stale
        reference to a suspect has been scrubbed or retargeted, the node's
        part in that suspect's repair is over.  A suspect with a surviving
        reference is kept, which is what makes repair retry-safe when
        repair messages are themselves lost.
        """
        self.suspects = {peer for peer in self.suspects if self.references(peer)}

    # ------------------------------------------------------------------
    # message handling
    # ------------------------------------------------------------------
    #: Message kind → unbound handler, resolved once per kind instead of
    #: rebuilding the ``_on_<kind>`` attribute name on every delivery.
    #: Per-class (see ``__init_subclass__``): a subclass overriding a
    #: handler gets its own cache, so the override is actually dispatched.
    _DISPATCH: ClassVar[Dict[str, Callable]] = {}

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        cls._DISPATCH = {}

    def handle(self, message: Message) -> None:
        """Dispatch an incoming message to its protocol handler."""
        simulator = self.simulator
        if simulator.piggyback_liveness:
            # Any delivered message is proof of life: record the contact
            # and exonerate a suspected sender (the generalisation of the
            # PONG handler's exoneration to all protocol traffic).
            sender = message.sender
            if sender != self.object_id:
                self.last_contact[sender] = simulator.engine.now
                if self.missed_heartbeats:
                    self.missed_heartbeats.pop(sender, None)
                if sender in self.suspects:
                    self.suspects.discard(sender)
                    self.rehabilitated.add(sender)
        cls = type(self)
        handler = cls._DISPATCH.get(message.kind)
        if handler is None:
            handler = getattr(cls, f"_on_{message.kind.lower()}", None)
            if handler is None:
                raise ValueError(f"unknown message kind {message.kind!r}")
            cls._DISPATCH[message.kind] = handler
        handler(self, message)

    # ---------------- join phase 1: routing the ADD_OBJECT -------------
    def _on_add_object(self, message: Message) -> None:
        payload = message.payload
        target: Point = payload["position"]
        self.simulator.operation_progress(("join", payload["new_id"]))
        next_hop = self.greedy_next_hop(target)
        if next_hop is not None:
            self.simulator.forward(self, next_hop, message)
            return
        # This node owns the region containing the new object: carve it out.
        self.simulator.complete_insertion(owner=self, new_id=payload["new_id"],
                                          position=target,
                                          routing_hops=payload["hops"],
                                          bulk=payload.get("bulk", False))

    # ---------------- join phase 2: new node bootstraps ---------------
    def _on_create_object(self, message: Message) -> None:
        payload = message.payload
        version = payload.get("version", self.view_version)
        if version >= self.view_version:
            self.voronoi = dict(payload["voronoi"])
            self.view_version = version
            self.touch_view()
        if self.bootstrapped:
            # Duplicate snapshot from a retried carve: the fresher view was
            # applied above (or rejected by the version stamp); the phases
            # below already ran and must not run twice.
            return
        self.bootstrapped = True
        if payload.get("bulk"):
            # bulk_join drives close discovery and long links as its own
            # pipelined phases; the view snapshot is all this message carries.
            return
        self.simulator.finish_operation(("join", self.object_id))
        # Close-neighbour discovery (Lemma 1): ask every Voronoi neighbour.
        if self.simulator.config.maintain_close_neighbors and self.voronoi:
            self.pending_close_peers = set(self.voronoi)
            self.simulator.start_operation(
                ("close", self.object_id),
                self.simulator.timeouts.close_timeout,
                retry=self._retry_close_phase, fail=self._abandon_close_phase)
            for neighbor in sorted(self.voronoi):
                self.simulator.send(self, neighbor, "CLOSE_REQUEST",
                                    {"position": self.position})
        else:
            self._start_long_link_phase()

    def _on_close_request(self, message: Message) -> None:
        origin = message.sender
        origin_position: Point = message.payload["position"]
        d_min = self.simulator.config.effective_d_min
        candidates: Dict[int, Point] = {self.object_id: self.position}
        candidates.update(self.voronoi)
        candidates.update(self.close)
        close = {
            oid: pos for oid, pos in candidates.items()
            if oid != origin and distance(pos, origin_position) <= d_min
        }
        self.simulator.send(self, origin, "CLOSE_REPLY", {"candidates": close})

    def _on_close_reply(self, message: Message) -> None:
        d_min = self.simulator.config.effective_d_min
        for oid, pos in sorted(message.payload["candidates"].items()):
            if oid != self.object_id and distance(pos, self.position) <= d_min:
                self.close[oid] = pos
        self.touch_view()
        if message.sender in self.pending_close_peers:
            self.pending_close_peers.discard(message.sender)
            self.simulator.operation_progress(("close", self.object_id))
            if not self.pending_close_peers:
                self._finish_close_phase()

    def _finish_close_phase(self) -> None:
        """Declare close membership and move on to long links — once."""
        if self.close_phase_done:
            return
        self.close_phase_done = True
        self.simulator.finish_operation(("close", self.object_id))
        for neighbor in sorted(self.close):
            self.simulator.send(self, neighbor, "CLOSE_DECLARE",
                                {"position": self.position})
        self._start_long_link_phase()

    def _retry_close_phase(self) -> bool:
        """Watchdog retry: drop dead peers, re-request the live stragglers.

        Peers that left or crashed can never answer, so waiting on them is
        the wedge this retry clears; the re-sent ``CLOSE_REQUEST`` is
        idempotent (the reply handler merges candidates and discards the
        peer from the pending set at most once).
        """
        dead = [peer for peer in sorted(self.pending_close_peers)
                if peer not in self.simulator.nodes]
        for peer in dead:
            self.pending_close_peers.discard(peer)
        if not self.pending_close_peers:
            self._finish_close_phase()
            return True
        for peer in sorted(self.pending_close_peers):
            self.simulator.send(self, peer, "CLOSE_REQUEST",
                                {"position": self.position})
        return True

    def _abandon_close_phase(self) -> None:
        """Retries exhausted: proceed degraded rather than wedge the join.

        The close set misses whatever the silent peers would have
        contributed; the repair protocol's grid-seeded close re-discovery
        is the standing mechanism that restores such entries.
        """
        self.pending_close_peers.clear()
        self._finish_close_phase()

    def _on_close_declare(self, message: Message) -> None:
        self.close[message.sender] = message.payload["position"]
        self.touch_view()

    def _on_close_leave(self, message: Message) -> None:
        self.close.pop(message.sender, None)
        self.touch_view()

    # ---------------- join phase 3: long links ------------------------
    def _start_long_link_phase(self) -> None:
        count = self.simulator.config.num_long_links
        if count == 0:
            self.simulator.operation_finished(self.object_id)
            return
        base = len(self.long_links)
        self.pending_link_indices = set(range(base, base + count))
        self.simulator.start_operation(
            ("long_links", self.object_id),
            self.simulator.timeouts.long_link_timeout,
            retry=self._retry_long_links, fail=self._abandon_long_links)
        d_min = self.simulator.config.effective_d_min
        for index in range(base, base + count):
            target = choose_long_range_target(self.position, d_min,
                                              self.simulator.rng)
            self.long_links.append(_LocalLongLink(target=target,
                                                  neighbor=self.object_id,
                                                  neighbor_position=self.position))
            self.simulator.send(self, self.object_id, "SEARCH_LONG_LINK",
                                {"target": target, "requester": self.object_id,
                                 "link_index": index, "hops": 0})
        self.touch_view()

    def _retry_long_links(self) -> bool:
        """Watchdog retry: re-run the routed search for unresolved slots.

        Grid-seeded next to the target (the repair protocol's escalation
        idiom), so a retry needs O(1) deliveries even when the original
        walk fed the fault plane hop by hop.  ``reissue_long_link`` keeps
        the pending set consistent, and first-established-wins makes a
        racing duplicate answer harmless.
        """
        if not self.pending_link_indices:
            return False
        for index in sorted(self.pending_link_indices):
            seed = self.simulator.locate.hint(self.long_links[index].target)
            self.reissue_long_link(index, seed=seed)
        return True

    def _abandon_long_links(self) -> None:
        """Retries exhausted: surface the join as timed out.

        The unresolved slots keep their self-loop placeholder (never a
        dangling id); the repair protocol's long-link audit re-resolves
        them whenever it next runs.
        """
        self.simulator._join_outcomes[self.object_id] = "timed_out"

    def _on_search_long_link(self, message: Message) -> None:
        payload = message.payload
        target: Point = payload["target"]
        self.simulator.operation_progress(("long_links", payload["requester"]))
        next_hop = self.greedy_next_hop(target)
        if next_hop is not None:
            self.simulator.forward(self, next_hop, message)
            return
        # This node owns the target's region: it becomes the long-range contact.
        requester = payload["requester"]
        self.back_links[(requester, payload["link_index"])] = target
        self.touch_view()
        self.simulator.send(self, requester, "LONG_LINK_ESTABLISHED",
                            {"link_index": payload["link_index"],
                             "neighbor": self.object_id,
                             "neighbor_position": self.position,
                             "hops": payload["hops"]})

    def _on_long_link_established(self, message: Message) -> None:
        payload = message.payload
        index = payload["link_index"]
        if index >= len(self.long_links):
            return
        if index not in self.pending_link_indices:
            # Late duplicate: a retried search's original answer landed
            # after all.  First establishment won; tell the late owner to
            # drop the registration it just created for us (unless it *is*
            # the established endpoint, whose registration must stand).
            link = self.long_links[index]
            if (payload["neighbor"] != link.neighbor
                    and payload["neighbor"] in self.simulator.nodes):
                self.simulator.send(self, payload["neighbor"], "BACKLINK_REMOVE",
                                    {"source": self.object_id,
                                     "link_index": index})
            return
        link = self.long_links[index]
        link.neighbor = payload["neighbor"]
        link.neighbor_position = payload["neighbor_position"]
        self.touch_view()
        self.simulator.metrics.observe("long_link_hops", payload["hops"])
        self.pending_link_indices.discard(index)
        self.simulator.operation_progress(("long_links", self.object_id))
        if not self.pending_link_indices:
            self.simulator.finish_operation(("long_links", self.object_id))
            self.simulator.operation_finished(self.object_id)

    # ---------------- maintenance updates ------------------------------
    def _on_region_update(self, message: Message) -> None:
        payload = message.payload
        version = payload.get("version", self.view_version)
        if version >= self.view_version:
            self.voronoi = dict(payload["voronoi"])
            self.view_version = version
            self.touch_view()
        # An overtaken snapshot (possible under non-FIFO latency models)
        # must not roll the view back — but the back-registration steal
        # below compares positions, not snapshots, so it runs either way.
        new_id = payload.get("new_id")
        new_position = payload.get("new_position")
        if new_id is None:
            return
        # Hand over back registrations whose target the new object now owns.
        stolen = [
            key for key, target in self.back_links.items()
            if distance(new_position, target) < distance(self.position, target)
        ]
        for key in stolen:
            target = self.back_links.pop(key)
            source, link_index = key
            self.simulator.send(self, new_id, "BACKLINK_TRANSFER",
                                {"source": source, "link_index": link_index,
                                 "target": target})
            self.simulator.send(self, source, "LONG_LINK_RETARGET",
                                {"link_index": link_index, "neighbor": new_id,
                                 "neighbor_position": new_position})
        if stolen:
            self.touch_view()

    def _on_backlink_transfer(self, message: Message) -> None:
        payload = message.payload
        self.back_links[(payload["source"], payload["link_index"])] = payload["target"]
        self.touch_view()

    def _on_long_link_retarget(self, message: Message) -> None:
        payload = message.payload
        index = payload["link_index"]
        if index < len(self.long_links):
            self.long_links[index].neighbor = payload["neighbor"]
            self.long_links[index].neighbor_position = payload["neighbor_position"]
            self.touch_view()

    def _on_backlink_remove(self, message: Message) -> None:
        payload = message.payload
        self.back_links.pop((payload["source"], payload["link_index"]), None)
        self.touch_view()

    # ---------------- failure detection & repair ------------------------
    # The handlers below implement the message side of the fault subsystem
    # (:mod:`repro.simulation.faults`): heartbeat probing, suspicion
    # gossip, and view scrubbing.  Every view-mutating one bumps the view
    # epoch, per the routing-cache contract.
    def _on_ping(self, message: Message) -> None:
        payload = message.payload
        round_number = payload["round"]
        if (self.simulator.piggyback_liveness
                and self.last_ping_round.get(message.sender)
                == (payload.get("era"), round_number)):
            # Crossed probes: our own PING of the same round *of the same
            # detector* (the era disambiguates detectors, so a stale
            # entry from an earlier detector can never suppress answers
            # to a new one) is already in flight to the sender, and with
            # piggy-backed liveness its delivery is proof of life — the
            # PONG would be redundant.  (Full-probe and repair-phase
            # probes carry no era, which never matches.)
            return
        self.simulator.send(self, message.sender, "PONG",
                            {"round": round_number})

    def _on_pong(self, message: Message) -> None:
        peer = message.sender
        self.last_heard[peer] = message.payload["round"]
        self.missed_heartbeats.pop(peer, None)
        # A live peer answering a probe refutes any standing suspicion of
        # it (false positives from lost heartbeats heal themselves here).
        # The suspicion already scrubbed state destructively, so remember
        # the exoneration for the repair round's close re-discovery.
        if peer in self.suspects:
            self.suspects.discard(peer)
            self.rehabilitated.add(peer)

    def _on_suspect_notify(self, message: Message) -> None:
        # Accusations are only adopted when corroborated by local evidence
        # (standing suspicion, or at least one missed heartbeat of our
        # own).  Adopting them blindly would let one false suspicion — a
        # couple of heartbeats lost to an unreliable network — infect the
        # whole neighbourhood faster than probing exonerates it.
        accused = set(message.payload["suspects"])
        accused.discard(self.object_id)
        corroborated = {peer for peer in accused
                        if peer in self.suspects
                        or self.missed_heartbeats.get(peer, 0) > 0}
        if corroborated:
            self.suspects |= corroborated
            self.apply_suspicion(corroborated)

    def _on_view_scrub(self, message: Message) -> None:
        payload = message.payload
        crashed = set(payload["crashed"])
        crashed.discard(self.object_id)
        # Same corroboration rule as SUSPECT_NOTIFY: the version-stamped
        # view below is kernel truth either way, but close/back scrubbing
        # of the listed ids only happens with local evidence.
        corroborated = {peer for peer in crashed
                        if peer in self.suspects
                        or self.missed_heartbeats.get(peer, 0) > 0}
        version = payload.get("version", self.view_version)
        changed = False
        if version >= self.view_version:
            self.voronoi = dict(payload["voronoi"])
            self.view_version = version
            changed = True
        else:
            # Overtaken snapshot: keep the fresher view but still scrub
            # the corroborated ids.
            for peer in sorted(corroborated):
                if self.voronoi.pop(peer, None) is not None:
                    changed = True
        self.suspects |= corroborated
        if self.apply_suspicion(corroborated):
            changed = True
        # Re-check hosted registrations against the refreshed view: a crash
        # may have routed a repair search to this node while its view was
        # still stale, leaving it holding a link whose target a neighbour
        # is strictly closer to.  Handing such links one greedy step over
        # (the generalised Section 3.3 hand-over) moves every mis-held
        # registration monotonically towards the target's true owner.
        for key, target in list(self.back_links.items()):
            best_id, best_d = None, distance(self.position, target)
            for neighbor, position in self.voronoi.items():
                d = distance(position, target)
                if d < best_d:
                    best_id, best_d = neighbor, d
            if best_id is None or best_id in self.suspects:
                continue
            del self.back_links[key]
            source, link_index = key
            self.simulator.send(self, best_id, "BACKLINK_TRANSFER",
                                {"source": source, "link_index": link_index,
                                 "target": target})
            self.simulator.send(self, source, "LONG_LINK_RETARGET",
                                {"link_index": link_index, "neighbor": best_id,
                                 "neighbor_position": self.voronoi[best_id]})
            changed = True
        if changed:
            self.touch_view()

    def reissue_long_link(self, index: int, seed: Optional[int] = None) -> None:
        """Re-run the routed ``SEARCH_LONG_LINK`` for one dangling link.

        The repair protocol's ``LONG_LINK_RETARGET`` path: the link's fixed
        target point is re-resolved through the exact machinery a join
        uses — greedy routing to the target's region owner, which registers
        the back link and answers ``LONG_LINK_ESTABLISHED``.  The search
        starts at this node by default; a repair retry under message loss
        passes a locate-grid ``seed`` next to the target instead (the
        ``bulk_join`` phase-5 idiom), shrinking the number of messages the
        lossy network must deliver for the attempt to land.  An endpoint
        still believed alive is asked to drop its now-superseded back
        registration first (for a suspected endpoint the message would
        only feed the fault plane).
        """
        link = self.long_links[index]
        if (link.neighbor != self.object_id
                and link.neighbor not in self.suspects
                and link.neighbor in self.simulator.nodes):
            self.simulator.send(self, link.neighbor, "BACKLINK_REMOVE",
                                {"source": self.object_id, "link_index": index})
        self.pending_link_indices.add(index)
        start = seed if seed is not None else self.object_id
        if start not in self.simulator.nodes:
            start = self.object_id
        self.simulator.send(self, start, "SEARCH_LONG_LINK",
                            {"target": link.target, "requester": self.object_id,
                             "link_index": index, "hops": 0})

    # ---------------- queries ------------------------------------------
    def _on_query(self, message: Message) -> None:
        payload = message.payload
        target: Point = payload["target"]
        if "path" in payload:
            # Path recording for load accounting: the visited list is
            # shared (not copied) down the forwarding chain — safe because
            # a query is a single linear chain of custody.
            payload["path"].append(self.object_id)
        next_hop = self.greedy_next_hop(target)
        if next_hop is not None:
            self.simulator.forward(self, next_hop, message)
            return
        answer = {"target": target, "owner": self.object_id,
                  "hops": payload["hops"]}
        # Serving-layer extensions ride along as extra payload fields (no
        # new message kind — the pinned kind set only grows for genuinely
        # new protocol phases): the query id lets many QUERYs contend in
        # flight, the path feeds per-node load counters.
        if "query_id" in payload:
            answer["query_id"] = payload["query_id"]
        if "path" in payload:
            answer["path"] = payload["path"]
        self.simulator.send(self, payload["requester"], "QUERY_ANSWER", answer)

    def _on_query_answer(self, message: Message) -> None:
        self.simulator.record_query_answer(message.payload)

    # ---------------- partition merge (anti-entropy) -------------------
    def _on_merge_digest(self, message: Message) -> None:
        """Epidemic anti-entropy after a partition heals.

        A version-stamped digest floods outward from the boundary nodes
        of the healed cut (:class:`~repro.simulation.merge.MergeProtocol`
        seeds it).  Each node, once per merge epoch: refreshes its region
        view from the reconciled union tessellation (the version stamp
        dominates every side's fork, so the standard monotonicity guard
        accepts it), exonerates peers it presumed dead during the split,
        re-runs close discovery across the healed cut, then re-floods the
        digest to its *refreshed* neighbours — the epidemic
        neighbour-notify shape, terminated by the epoch guard — and acks
        the sender with ``MERGE_RECONCILE``.
        """
        payload = message.payload
        epoch = payload["epoch"]
        if self.merge_epoch >= epoch:
            return  # already reconciled this heal; the epidemic stops here
        self.merge_epoch = epoch
        simulator = self.simulator
        kernel = simulator.kernel
        changed = False
        version = payload["version"]
        if version >= self.view_version and self.object_id in kernel:
            self.voronoi = {nid: kernel.point(nid)
                            for nid in kernel.neighbors(self.object_id)}
            self.view_version = version
            changed = True
        # Split-era suspicion presumed the other side dead; every suspect
        # the healed membership still carries is alive after all.  Move
        # them to ``rehabilitated`` so the repair protocol's close
        # re-discovery also revisits this node.
        survivors = {peer for peer in self.suspects if peer in simulator.nodes}
        if survivors:
            self.suspects -= survivors
            self.rehabilitated |= survivors
            for peer in sorted(survivors):
                self.missed_heartbeats.pop(peer, None)
        # Close re-discovery across the healed cut (the repair close-phase
        # idiom): suspicion scrubbed cross-side close entries; the grid
        # consult restores any peer back inside the d_min disc.
        d_min = simulator.config.effective_d_min
        for close_id in simulator.locate.within(self.position, d_min):
            if (close_id == self.object_id or close_id in self.close
                    or close_id not in simulator.nodes):
                continue
            self.close[close_id] = simulator.nodes[close_id].position
            simulator.send(self, close_id, "CLOSE_DECLARE",
                           {"position": self.position})
            changed = True
        for neighbor in sorted(self.voronoi):
            if neighbor != self.object_id:
                simulator.send(self, neighbor, "MERGE_DIGEST", payload)
        simulator.send(self, message.sender, "MERGE_RECONCILE",
                       {"epoch": epoch, "version": self.view_version})
        if changed:
            self.touch_view()

    def _on_merge_reconcile(self, message: Message) -> None:
        """Ack leg of the merge anti-entropy exchange.

        The ack is itself liveness evidence (the sender is reachable
        again) and carries the epoch: a node that never saw the digest —
        every copy addressed to it was lost — is pulled into the epoch by
        its own ack traffic, making the exchange bidirectional.
        """
        peer = message.sender
        self.missed_heartbeats.pop(peer, None)
        if peer in self.suspects:
            self.suspects.discard(peer)
            self.rehabilitated.add(peer)
        if self.merge_epoch < message.payload["epoch"]:
            self._on_merge_digest(message)


# ----------------------------------------------------------------------
# the simulator
# ----------------------------------------------------------------------
class _PendingOperation:
    """Bookkeeping of one watchdog-tracked multi-message operation."""

    __slots__ = ("key", "watchdog", "attempts", "timeout", "retry", "fail")

    def __init__(self, key: Tuple[str, int], timeout: float,
                 retry: Callable[[], bool],
                 fail: Optional[Callable[[], None]]) -> None:
        self.key = key
        self.watchdog: Optional[Watchdog] = None
        self.attempts = 0
        self.timeout = timeout
        self.retry = retry
        self.fail = fail


class ProtocolSimulator:  # simlint: ignore[SIM003] — one per experiment, not per message
    """Drives the message-level VoroNet protocol over the event engine.

    Parameters
    ----------
    config:
        Overlay configuration (``n_max``, ``d_min``, number of long links).
    latency:
        Per-message latency model (constant 1 time unit by default).
    seed:
        Seed of the simulator's random source (long-link targets,
        introducer selection).
    faults:
        Optional :class:`~repro.simulation.faults.FaultPlane` attached to
        the network layer; crash/loss/partition decisions are applied to
        every protocol message.

    Examples
    --------
    >>> simulator = ProtocolSimulator(VoroNetConfig(n_max=64, seed=1), seed=1)
    >>> report = simulator.join((0.25, 0.5))
    >>> report.messages >= 0
    True
    """

    def __init__(self, config: Optional[VoroNetConfig] = None, *,
                 latency: Optional[LatencyModel] = None,
                 seed: Optional[int] = None,
                 trace: Optional[TraceRecorder] = None,
                 faults: Optional["FaultPlane"] = None,
                 timeouts: Optional[TimeoutPolicy] = None) -> None:
        self.config = config if config is not None else VoroNetConfig()
        self.engine = SimulationEngine()
        self.network = Network(self.engine, latency or ConstantLatency(1.0),
                               faults=faults)
        self.metrics = MetricsRegistry()
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)
        self.rng = RandomSource(seed if seed is not None else self.config.seed)
        # Stochastic latency models adopt a child of the simulator's seeded
        # stream (unless the caller supplied their own rng), so latency
        # draws are reproducible end-to-end from the simulator seed.
        self.network.latency.bind_rng(self.rng.fork())
        #: Piggy-backed liveness switch (set by a HeartbeatDetector whose
        #: config enables it): every delivered message then records a
        #: last-contact timestamp and exonerates a suspected sender.
        self.piggyback_liveness = False
        #: Serial of piggyback-mode detectors attached so far; each gets a
        #: distinct era stamped into its probes, so bookkeeping left by a
        #: retired detector can never be mistaken for the current one's.
        self.liveness_eras = 0
        self.kernel = DelaunayTriangulation()
        self.locate = LocateGrid()
        self.nodes: Dict[int, ProtocolNode] = {}
        self._next_id = 0
        self._last_routing_hops = 0
        self._last_query_answer: Optional[Dict] = None
        #: Answers of in-flight serving queries, keyed by ``query_id``
        #: (each stamped with its virtual completion time).
        self.query_answers: Dict[int, Dict] = {}
        #: Serving-driver hook: called with each answered query's payload
        #: as it lands, while the engine is still running — the mechanism
        #: a closed-loop driver uses to inject the next query and keep a
        #: fixed number contending in flight.
        self.on_query_answer: Optional[Callable[[Dict], None]] = None
        self._bulk_owners: Dict[int, int] = {}
        #: Per-operation timeout/retry policy (see :class:`TimeoutPolicy`).
        self.timeouts = timeouts if timeouts is not None else TimeoutPolicy()
        self._pending_ops: Dict[Tuple[str, int], _PendingOperation] = {}
        #: Non-completed outcome recorded for a join in flight (read and
        #: cleared by :meth:`join` when building its report).
        self._join_outcomes: Dict[int, str] = {}

    # ------------------------------------------------------------------
    # plumbing used by nodes
    # ------------------------------------------------------------------
    @property
    def faults(self) -> Optional["FaultPlane"]:
        """The fault plane attached to the network layer, if any."""
        return self.network.faults

    def send(self, sender: ProtocolNode, recipient: int, kind: str,
             payload: Dict) -> None:
        """Send one protocol message from ``sender`` to ``recipient``."""
        trace = self.trace
        if trace.enabled:
            trace.record(self.engine.now, "send", message_kind=kind,
                         sender=sender.object_id, recipient=recipient)
        self.network.send(Message(sender=sender.object_id, recipient=recipient,
                                  kind=kind, payload=payload))

    def forward(self, sender: ProtocolNode, recipient: int, message: Message) -> None:
        """Forward a routed message one greedy hop further."""
        payload = dict(message.payload)
        payload["hops"] = payload.get("hops", 0) + 1
        self.send(sender, recipient, message.kind, payload)

    def operation_finished(self, object_id: int) -> None:
        """Callback from nodes when their multi-message operation completes."""
        self.trace.record(self.engine.now, "operation_finished", object_id=object_id)

    # ------------------------------------------------------------------
    # operation timeout/retry tracking
    # ------------------------------------------------------------------
    def start_operation(self, key: Tuple[str, int], timeout: float,
                        retry: Callable[[], bool],
                        fail: Optional[Callable[[], None]] = None) -> None:
        """Arm a progress-aware watchdog over one multi-message operation.

        ``key`` is ``(operation_name, object_id)``.  While the operation
        makes progress (:meth:`operation_progress` is called from its
        message handlers) the watchdog never fires; after a full quiet
        window it does, ``retry()`` is invoked to re-issue the operation's
        idempotent messages (returning ``False`` declines — e.g. the
        subject crashed), and the window is stretched by the policy's
        backoff.  After ``max_retries`` expiries — or a declined retry —
        the operation is abandoned and ``fail()`` (if any) runs.  Tracking
        is idempotent per key; with timeouts disabled this is a no-op.
        """
        if not self.timeouts.enabled or key in self._pending_ops:
            return
        op = _PendingOperation(key, timeout, retry, fail)
        self._pending_ops[key] = op
        op.watchdog = Watchdog(self.engine, timeout,
                               lambda: self._operation_expired(key),
                               label=f"timeout:{key[0]}:{key[1]}")

    def operation_progress(self, key: Tuple[str, int]) -> None:
        """Record progress on a tracked operation (no-op when untracked)."""
        op = self._pending_ops.get(key)
        if op is not None:
            op.watchdog.poke()

    def finish_operation(self, key: Tuple[str, int]) -> None:
        """Complete a tracked operation: disarm and forget its watchdog."""
        op = self._pending_ops.pop(key, None)
        if op is not None:
            op.watchdog.cancel()

    def pending_operations(self) -> List[Tuple[str, int]]:
        """Keys of operations still under watchdog tracking, sorted.

        Empty at quiescence in every healthy run; the fuzzing harness
        asserts exactly that (a non-empty result at quiescence means an
        operation leaked its tracking entry).
        """
        return sorted(self._pending_ops)

    def _operation_expired(self, key: Tuple[str, int]) -> None:
        op = self._pending_ops.get(key)
        if op is None:  # completed between fire and dispatch; nothing to do
            return
        op.attempts += 1
        self.metrics.increment("operation_timeouts")
        self.trace.record(self.engine.now, "operation_timeout",
                          operation=key[0], object_id=key[1],
                          attempt=op.attempts)
        if op.attempts <= self.timeouts.max_retries and op.retry():
            self.metrics.increment("operation_retries")
            if key in self._pending_ops:
                # The retry may itself have finished the operation (e.g.
                # every awaited peer turned out dead); only a still-pending
                # one re-arms, with backoff.
                op.timeout *= self.timeouts.backoff
                op.watchdog.rearm(op.timeout)
            return
        self._pending_ops.pop(key, None)
        op.watchdog.cancel()
        self.metrics.increment("operation_failures")
        self.trace.record(self.engine.now, "operation_failed",
                          operation=key[0], object_id=key[1])
        if op.fail is not None:
            op.fail()

    def record_query_answer(self, payload: Dict) -> None:
        self._last_query_answer = payload
        query_id = payload.get("query_id")
        if query_id is not None:
            payload["completed_at"] = self.engine.now
            self.query_answers[query_id] = payload
            if self.on_query_answer is not None:
                self.on_query_answer(payload)

    # ------------------------------------------------------------------
    # membership operations
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.nodes)

    def object_ids(self) -> List[int]:
        """Ids of the currently published objects."""
        return list(self.nodes.keys())

    def node(self, object_id: int) -> ProtocolNode:
        """The local state of one object."""
        return self.nodes[object_id]

    def _attach_node(self, object_id: int, position: Point) -> ProtocolNode:
        """Create a node's local state and register its message handler."""
        node = ProtocolNode(object_id=object_id, position=position, simulator=self)
        self.nodes[object_id] = node
        self.network.register(object_id, node.handle)
        return node

    def join(self, position: Point, introducer: Optional[int] = None) -> JoinReport:
        """Publish an object through the full distributed join protocol."""
        position = (float(position[0]), float(position[1]))
        object_id = self._next_id
        self._next_id += 1
        self._attach_node(object_id, position)
        before = self.network.messages_sent

        if len(self.nodes) == 1:
            # First object: nothing to route, no neighbours to discover.
            self.kernel.insert(position, vertex_id=object_id)
            self.locate.insert(object_id, position)
            self.metrics.increment("joins")
            return JoinReport(object_id=object_id, routing_hops=0, messages=0,
                              virtual_time=self.engine.now)

        if introducer is None:
            candidates = [oid for oid in self.nodes if oid != object_id]
            introducer = candidates[self.rng.integer(0, len(candidates))]
        self._last_routing_hops = 0
        self._join_outcomes.pop(object_id, None)
        self.start_operation(("join", object_id), self.timeouts.join_timeout,
                             retry=lambda: self._retry_join(object_id, position),
                             fail=lambda: self._fail_join(object_id))
        starter = self.nodes[introducer]
        self.send(starter, introducer, "ADD_OBJECT",
                  {"new_id": object_id, "position": position, "hops": 0})
        self.engine.run()
        self.metrics.increment("joins")
        messages = self.network.messages_sent - before
        self.metrics.observe("join_messages", messages)
        self.metrics.observe("join_routing_hops", self._last_routing_hops)
        outcome = self._join_outcomes.pop(object_id, "completed")
        return JoinReport(object_id=object_id,
                          routing_hops=self._last_routing_hops,
                          messages=messages, virtual_time=self.engine.now,
                          outcome=outcome)

    def _retry_join(self, object_id: int, position: Point) -> bool:
        """Watchdog retry: re-route the ``ADD_OBJECT`` from a fresh starter.

        The carve is idempotent — ``complete_insertion`` detects an
        already-carved region and merely re-sends the version-stamped view
        snapshot — so re-walking the whole request is safe whether the
        original died before, during or after the kernel insertion.  The
        locate-grid hint lands the retry next to the region (or on the
        joiner itself once carved, degenerating to a free local hand-off).
        """
        if object_id not in self.nodes:
            return False  # the joiner itself crashed; nothing to finish
        introducer = self.locate.hint(position)
        if introducer is None or introducer not in self.nodes:
            live = sorted(oid for oid in self.nodes if oid != object_id)
            if not live:
                return False
            introducer = live[0]
        starter = self.nodes[introducer]
        self.send(starter, introducer, "ADD_OBJECT",
                  {"new_id": object_id, "position": position, "hops": 0})
        return True

    def _fail_join(self, object_id: int) -> None:
        """Retries exhausted: abort the join and surface ``timed_out``.

        A joiner whose region was never carved is torn back down (no
        zombie handler, no stray view); one that *was* carved stays — it
        is a live member whose bootstrap snapshot the repair protocol's
        view audit re-delivers.
        """
        self._join_outcomes[object_id] = "timed_out"
        node = self.nodes.get(object_id)
        if node is not None and self.kernel.vertex_at(node.position) != object_id:
            self.network.unregister(object_id)
            del self.nodes[object_id]

    def _send_bulk_carve(self, object_id: int, position: Point) -> None:
        """Send (or re-send) one bulk carve request for ``object_id``.

        Used by both the phase-1 chunk pipeline and its audit rounds: the
        carve is idempotent (see :meth:`complete_insertion`), so a re-send
        for a request whose original survived merely re-delivers the
        version-stamped snapshot.  If every other node is dead the carve
        degenerates to the bootstrap direct insertion — there is nobody
        left to route through, but the joiner itself is still live.
        """
        introducer = self.locate.hint(position)
        if introducer is None or introducer not in self.nodes:
            live = sorted(oid for oid in self.nodes if oid != object_id)
            if not live:
                self.kernel.insert(position, vertex_id=object_id)
                self.locate.insert(object_id, position)
                self._bulk_owners[object_id] = object_id
                return
            introducer = live[0]
        starter = self.nodes[introducer]
        self.send(starter, introducer, "ADD_OBJECT",
                  {"new_id": object_id, "position": position, "hops": 0,
                   "bulk": True})

    def _bulk_snapshot_sender(self, recipient: int) -> int:
        """Pick the live node that sends ``recipient`` its phase-2 snapshot.

        Prefers the owner that carved the recipient's region (matching the
        fault-free accounting exactly); falls back to the first live kernel
        neighbour when the owner has crashed, and to the recipient itself
        when it is isolated (a self-send still counts one message, keeping
        re-drive rounds honest).
        """
        owner = self._bulk_owners.get(recipient)
        if owner is not None and owner in self.nodes:
            return owner
        for neighbor_id in sorted(self.kernel.neighbors(recipient)):
            if neighbor_id != recipient and neighbor_id in self.nodes:
                return neighbor_id
        return recipient

    def bulk_join(self, positions: Sequence[Point], *,
                  chunk_size: Optional[int] = None) -> BulkJoinReport:
        """Publish a batch of objects through the batched message pipeline.

        The message-level mirror of :meth:`VoroNet.bulk_load
        <repro.core.overlay.VoroNet.bulk_load>`: instead of running each
        join to quiescence, the batch moves through five pipelined phases,
        each drained once by the event engine:

        1. **carve** — the batch is Morton-sorted and, ``chunk_size`` sends
           at a time, routed as ``ADD_OBJECT`` messages from locate-grid
           hinted introducers (already adjacent to the new region, so the
           routing walk is O(1) expected hops); region owners carve the
           kernel but defer view snapshots to the next phase — a join run
           to quiescence resends a node's view on every insertion touching
           it, which a batch attach consolidates away;
        2. **views** — every batch object receives its final view in one
           version-stamped ``CREATE_OBJECT`` from the owner that carved its
           region, and every pre-existing object bordering the batch
           receives one consolidated ``REGION_UPDATE``;
        3. **handover** — pre-existing back-long-range registrations whose
           target a batch object now owns are transferred and their sources
           re-pointed (``BACKLINK_TRANSFER`` / ``LONG_LINK_RETARGET``), the
           batched equivalent of the per-join steal in ``REGION_UPDATE``;
        4. **close** — every batch object discovers its close neighbours by
           an exact locate-grid radius query (producing the very sets
           Lemma 1's routed discovery would) and declares itself to each
           with one counted ``CLOSE_DECLARE``;
        5. **long_links** — Choose-LRT targets for the whole batch come
           from one vectorised draw, and each ``SEARCH_LONG_LINK`` is sent
           straight to a locate-grid seed next to its target, finishing in
           O(1) greedy hops at the exact region owner.

        The resulting per-node views are identical to the oracle's
        ``bulk_load`` on the same positions and seed (the integration suite
        asserts views, close sets and long links), and
        :meth:`verify_views` stays clean.  Ids are assigned in input order.

        Raises
        ------
        ValueError
            When protocol messages are still in flight (the engine must be
            quiescent so the phase barriers drain only this batch), on a
            position duplicating a published object or another batch entry
            (checked up front; nothing is mutated), or on a non-positive
            ``chunk_size``.
        """
        batch = [(float(p[0]), float(p[1])) for p in positions]
        if not batch:
            return BulkJoinReport(object_ids=[], messages=0, phase_messages={},
                                  virtual_time=self.engine.now)
        if not self.engine.quiescent:
            raise ValueError("bulk_join requires a quiescent engine "
                             "(pending protocol messages in flight)")
        if chunk_size is None:
            chunk_size = DEFAULT_BULK_CHUNK
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        seen: set = set()
        for point in batch:
            existing = self.kernel.vertex_at(point)
            if existing is not None:
                raise ValueError(
                    f"position {point} duplicates published object {existing}")
            if point in seen:
                raise ValueError(f"position {point} appears twice in the batch")
            seen.add(point)

        had_existing = bool(self.nodes)
        ids = list(range(self._next_id, self._next_id + len(batch)))
        self._next_id = ids[-1] + 1
        before_all = self.network.messages_sent
        phase_messages: Dict[str, int] = {}

        # ---- phase 1: region carving (chunked ADD_OBJECT pipeline) ----
        snapshot = self.network.messages_sent
        order = morton_order(batch)
        self._bulk_owners = {}
        start = 0
        if not self.nodes:
            # Bootstrap exactly like the sequential first join: direct
            # insertion, no messages (its long links come from phase 5).
            first = order[0]
            self._attach_node(ids[first], batch[first])
            self.kernel.insert(batch[first], vertex_id=ids[first])
            self.locate.insert(ids[first], batch[first])
            self._bulk_owners[ids[first]] = ids[first]
            start = 1
        for chunk_start in range(start, len(order), chunk_size):
            for index in order[chunk_start:chunk_start + chunk_size]:
                object_id, position = ids[index], batch[index]
                self._attach_node(object_id, position)
                self._send_bulk_carve(object_id, position)
            self.engine.run_until_quiescent()
        # Carve audit: a victim crashing mid-chunk can swallow ADD_OBJECT
        # walks wholesale (a crashed carrier drops everything it holds), so
        # re-drive uncarved survivors for a bounded number of rounds.  In a
        # fault-free run every batch member carved on the first pass and
        # the audit costs nothing.
        for _ in range(self.timeouts.max_retries):
            stalled = [i for i in range(len(ids))
                       if ids[i] in self.nodes
                       and self.kernel.vertex_at(batch[i]) != ids[i]]
            if not stalled:
                break
            for i in stalled:
                self._send_bulk_carve(ids[i], batch[i])
            self.engine.run_until_quiescent()
        timed_out = [oid for i, oid in enumerate(ids)
                     if oid not in self.nodes
                     or self.kernel.vertex_at(batch[i]) != oid]
        if timed_out:
            dead = set(timed_out)
            for object_id in sorted(dead):
                # Crashed mid-batch, or uncarvable within the budget:
                # withdraw the attachment so no zombie handler (and no
                # stray kernel vertex) outlives the batch.
                if object_id in self.nodes:
                    self.network.unregister(object_id)
                    del self.nodes[object_id]
            survivors = [(oid, batch[i]) for i, oid in enumerate(ids)
                         if oid not in dead]
            ids = [oid for oid, _position in survivors]
            batch = [position for _oid, position in survivors]
        phase_messages["carve"] = self.network.messages_sent - snapshot

        # ---- phase 2: consolidated view distribution --------------------
        # A sequential join resends a node's view on every insertion that
        # touches it; the batch attach sends each recipient its *final*
        # view exactly once.  New objects hear from the owner that carved
        # their region; pre-existing objects bordering the batch hear from
        # a live kernel neighbour.  The phase is driven as stale-view
        # rounds: everyone owed a snapshot is sent one, and recipients
        # whose ``view_version`` still lags (their snapshot — or its
        # sender — fed a crash) are re-sent in bounded re-drive rounds.
        # Version stamps make re-sends idempotent; a fault-free run takes
        # exactly one round with exactly the original message count.
        snapshot = self.network.messages_sent
        new_ids = set(ids)
        recipients: Set[int] = set(ids)
        for object_id in ids:
            for neighbor_id in self.kernel.neighbors(object_id):
                if neighbor_id not in new_ids and neighbor_id in self.nodes:
                    recipients.add(neighbor_id)
        for _ in range(1 + self.timeouts.max_retries):
            version = self.kernel.version
            stale = [
                object_id for object_id in sorted(recipients)
                if object_id in self.nodes
                and self.nodes[object_id].view_version < version]
            if not stale:
                break
            for object_id in stale:
                if object_id not in self.nodes:
                    continue  # crashed while this round was being sent
                sender_id = self._bulk_snapshot_sender(object_id)
                view = {nid: self.kernel.point(nid)
                        for nid in self.kernel.neighbors(object_id)}
                if object_id in new_ids:
                    self.send(self.nodes[sender_id], object_id, "CREATE_OBJECT",
                              {"voronoi": view, "version": version,
                               "bulk": True})
                else:
                    self.send(self.nodes[sender_id], object_id, "REGION_UPDATE",
                              {"voronoi": view, "version": version})
            self.engine.run_until_quiescent()
        phase_messages["views"] = self.network.messages_sent - snapshot

        # ---- phase 3: back-registration hand-over ----------------------
        # Bulk-mode REGION_UPDATEs carry no ``new_id`` (pipelined steals
        # could race each other under interleaved insertions), so settle
        # every pre-existing registration once against the final
        # tessellation — the batched equivalent of the per-join steal.
        # Not gated on maintain_back_links: the message-level handlers
        # register and steal back links unconditionally (the ablation flag
        # is honoured by the oracle overlay only), so a populated overlay
        # always has registrations to settle.
        if had_existing:
            snapshot = self.network.messages_sent
            for holder_id, holder in list(self.nodes.items()):
                if holder_id in new_ids or not holder.back_links:
                    continue
                for (source, link_index), target in list(holder.back_links.items()):
                    if holder_id not in self.nodes:
                        break  # the holder crashed while handing over
                    owner = self.kernel.nearest_vertex(target, hint=holder_id)
                    if owner == holder_id or owner not in self.nodes:
                        continue
                    # Captured before the sends: a fault-plane trigger may
                    # crash the new owner while the first is being counted.
                    owner_position = self.nodes[owner].position
                    holder.back_links.pop((source, link_index))
                    holder.touch_view()
                    self.send(holder, owner, "BACKLINK_TRANSFER",
                              {"source": source, "link_index": link_index,
                               "target": target})
                    if source in self.nodes:
                        self.send(holder, source, "LONG_LINK_RETARGET",
                                  {"link_index": link_index, "neighbor": owner,
                                   "neighbor_position": owner_position})
            self.engine.run_until_quiescent()
            phase_messages["handover"] = self.network.messages_sent - snapshot

        # ---- phase 4: close neighbours ---------------------------------
        if self.config.maintain_close_neighbors:
            snapshot = self.network.messages_sent
            d_min = self.config.effective_d_min
            for object_id in ids:
                node = self.nodes.get(object_id)
                if node is None:
                    continue  # crashed while the phase was being sent
                found = False
                for close_id in self.locate.within(node.position, d_min):
                    if close_id == object_id:
                        continue
                    peer = self.nodes.get(close_id)
                    if peer is None:
                        continue  # crashed since the radius query ran
                    node.close[close_id] = peer.position
                    found = True
                    self.send(node, close_id, "CLOSE_DECLARE",
                              {"position": node.position})
                if found:
                    node.touch_view()
            self.engine.run_until_quiescent()
            phase_messages["close"] = self.network.messages_sent - snapshot

        # ---- phase 5: long links ---------------------------------------
        k = self.config.num_long_links
        if k > 0 and ids:
            snapshot = self.network.messages_sent
            targets = choose_long_range_target_array(
                np.asarray(batch, dtype=np.float64),
                self.config.effective_d_min, k, self.rng)
            flat = targets.reshape(-1, 2)
            for i, object_id in enumerate(ids):
                node = self.nodes.get(object_id)
                if node is None:
                    continue  # crashed while the phase was being sent
                node.pending_link_indices = set(range(k))
                for index in range(k):
                    target = (float(flat[i * k + index][0]),
                              float(flat[i * k + index][1]))
                    node.long_links.append(_LocalLongLink(
                        target=target, neighbor=object_id,
                        neighbor_position=node.position))
                    seed = self.locate.hint(target)
                    if seed is None or seed not in self.nodes:
                        seed = object_id
                    self.send(node, seed, "SEARCH_LONG_LINK",
                              {"target": target, "requester": object_id,
                               "link_index": index, "hops": 0})
                node.touch_view()
            self.engine.run_until_quiescent()
            # Search audit: a crashed carrier or endpoint swallowed a walk;
            # re-drive the unresolved slots, grid-seeded, bounded like the
            # carve audit.  Free in fault-free runs (nothing is pending).
            for _ in range(self.timeouts.max_retries):
                unresolved = [
                    object_id for object_id in ids
                    if object_id in self.nodes
                    and self.nodes[object_id].pending_link_indices]
                if not unresolved:
                    break
                for object_id in unresolved:
                    node = self.nodes.get(object_id)
                    if node is None:
                        continue
                    for index in sorted(node.pending_link_indices):
                        seed = self.locate.hint(node.long_links[index].target)
                        node.reissue_long_link(index, seed=seed)
                self.engine.run_until_quiescent()
            phase_messages["long_links"] = self.network.messages_sent - snapshot

        self.metrics.increment("joins", len(ids))
        messages = self.network.messages_sent - before_all
        self.metrics.observe("bulk_join_messages", messages)
        self.metrics.observe_many(
            "view_size", [self.nodes[oid].view_size() for oid in ids
                          if oid in self.nodes])
        for phase, count in phase_messages.items():
            self.trace.record(self.engine.now, "bulk_join_phase",
                              phase=phase, messages=count, objects=len(ids))
        return BulkJoinReport(object_ids=ids, messages=messages,
                              phase_messages=phase_messages,
                              virtual_time=self.engine.now,
                              timed_out=tuple(sorted(timed_out)))

    def complete_insertion(self, owner: ProtocolNode, new_id: int,
                           position: Point, routing_hops: int,
                           bulk: bool = False) -> None:
        """Region owner's ``AddVoronoiRegion``: carve the region, notify views.

        Idempotent under retries: a request whose region was already carved
        (a retried ``ADD_OBJECT`` whose original completed after all, or
        whose ``CREATE_OBJECT`` answer was lost) only re-sends the
        version-stamped view snapshot, and a request for a joiner that has
        since crashed is abandoned — the kernel must never hold a vertex no
        live node backs.
        """
        self._last_routing_hops = routing_hops
        if new_id not in self.nodes:
            # The joiner crashed while its ADD_OBJECT was still walking.
            self._join_outcomes[new_id] = "timed_out"
            self.finish_operation(("join", new_id))
            self.metrics.increment("joins_abandoned")
            return
        if self.kernel.vertex_at(position) == new_id:
            # Duplicate retry: the region exists; re-deliver the snapshot
            # (heals a lost CREATE_OBJECT without touching the kernel).
            self.metrics.increment("duplicate_carves")
            version = self.kernel.version
            view = {nid: self.kernel.point(nid)
                    for nid in self.kernel.neighbors(new_id)}
            payload = {"voronoi": view, "version": version}
            if bulk:
                payload["bulk"] = True
            self.send(owner, new_id, "CREATE_OBJECT", payload)
            return
        try:
            self.kernel.insert(position, vertex_id=new_id, hint=owner.object_id)
        except DuplicatePointError:
            # Duplicate coordinates: refuse the join; the node stays isolated.
            self.finish_operation(("join", new_id))
            self._join_outcomes[new_id] = "rejected"
            self.network.unregister(new_id)
            del self.nodes[new_id]
            return
        self.locate.insert(new_id, position)
        if bulk:
            # Bulk joins distribute consolidated final views, settle back
            # registrations and establish long links in their own phases;
            # the carve phase only places the region and remembers who
            # carved it (the sender of the eventual CREATE_OBJECT).
            self._bulk_owners[new_id] = owner.object_id
            self.metrics.observe("bulk_join_routing_hops", routing_hops)
            return
        affected = set(self.kernel.neighbors(new_id))
        if len(self.kernel) <= 8 or not self.kernel.has_triangulation:
            # Bootstrapping a (near-)degenerate tessellation can change
            # adjacency beyond the immediate neighbourhood; refresh every
            # vertex the kernel holds.
            affected = set(self.kernel.vertex_ids()) - {new_id}
        version = self.kernel.version
        new_view = {nid: self.kernel.point(nid) for nid in self.kernel.neighbors(new_id)}
        self.send(owner, new_id, "CREATE_OBJECT",
                  {"voronoi": new_view, "version": version})
        for neighbor_id in sorted(affected):
            if neighbor_id == new_id or neighbor_id not in self.nodes:
                continue
            view = {nid: self.kernel.point(nid)
                    for nid in self.kernel.neighbors(neighbor_id)}
            self.send(owner, neighbor_id, "REGION_UPDATE",
                      {"voronoi": view, "version": version,
                       "new_id": new_id, "new_position": position})

    def leave(self, object_id: int) -> LeaveReport:
        """Withdraw an object through the distributed departure protocol."""
        if object_id not in self.nodes:
            raise KeyError(f"unknown object {object_id}")
        node = self.nodes[object_id]
        before = self.network.messages_sent
        former_neighbors = [nid for nid in self.kernel.neighbors(object_id)
                            if nid in self.nodes and nid != object_id]
        self.kernel.remove(object_id)
        self.locate.discard(object_id)
        version = self.kernel.version
        affected = set(former_neighbors)
        if len(self.kernel) <= 8 or not self.kernel.has_triangulation:
            affected = set(self.kernel.vertex_ids())
        # 1. Region updates to the neighbours inheriting the region.
        for neighbor_id in sorted(affected):
            if neighbor_id not in self.nodes:
                continue
            view = {nid: self.kernel.point(nid)
                    for nid in self.kernel.neighbors(neighbor_id)}
            self.send(node, neighbor_id, "REGION_UPDATE",
                      {"voronoi": view, "version": version})
        # 2. Close-neighbour notifications.
        for close_id in list(node.close):
            if close_id in self.nodes:
                self.send(node, close_id, "CLOSE_LEAVE", {})
        # 3. Delegate hosted long links to the neighbour owning their target.
        for (source, link_index), target in list(node.back_links.items()):
            if source not in self.nodes or source == object_id:
                continue
            candidates = [nid for nid in former_neighbors if nid in self.nodes]
            if not candidates:
                candidates = [nid for nid in self.nodes if nid != object_id]
            if not candidates:
                continue
            new_holder = min(candidates,
                             key=lambda nid: distance(self.nodes[nid].position, target))
            # Captured before the sends: a fault-plane trigger may crash
            # the holder while the first message is being counted.
            holder_position = self.nodes[new_holder].position
            self.send(node, new_holder, "BACKLINK_TRANSFER",
                      {"source": source, "link_index": link_index, "target": target})
            self.send(node, source, "LONG_LINK_RETARGET",
                      {"link_index": link_index, "neighbor": new_holder,
                       "neighbor_position": holder_position})
        # 4. Deregister our own long links at their endpoints.
        for index, link in enumerate(node.long_links):
            if link.neighbor in self.nodes and link.neighbor != object_id:
                self.send(node, link.neighbor, "BACKLINK_REMOVE",
                          {"source": object_id, "link_index": index})
        self.engine.run()
        outcome = "completed"
        if self.nodes.pop(object_id, None) is None:
            # The leaver crashed while its own hand-over was draining: to
            # the survivors this became an abrupt crash (the injector tore
            # the node down), so report the graceful leave as timed out.
            outcome = "timed_out"
        self.network.unregister(object_id)
        self.metrics.increment("leaves")
        messages = self.network.messages_sent - before
        self.metrics.observe("leave_messages", messages)
        return LeaveReport(object_id=object_id, messages=messages,
                           virtual_time=self.engine.now, outcome=outcome)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(self, target: Point, start: Optional[int] = None) -> QueryReport:
        """Distributed point query: greedy routing plus one answer message."""
        if not self.nodes:
            raise RuntimeError("the overlay holds no objects")
        target = (float(target[0]), float(target[1]))
        if start is None:
            ids = list(self.nodes)
            start = ids[self.rng.integer(0, len(ids))]
        before = self.network.messages_sent
        self._last_query_answer = None
        starter = self.nodes[start]
        self.send(starter, start, "QUERY",
                  {"target": target, "requester": start, "hops": 0})
        self.engine.run()
        messages = self.network.messages_sent - before
        answer = self._last_query_answer or {"owner": start, "hops": 0}
        self.metrics.increment("queries")
        self.metrics.observe("query_hops", answer["hops"])
        return QueryReport(target=target, owner=answer["owner"],
                           routing_hops=answer["hops"], messages=messages)

    def start_query(self, target: Point, start: Optional[int] = None, *,
                    query_id: int, record_path: bool = False) -> int:
        """Inject one identified query without draining the engine.

        The serving-layer primitive behind genuinely contending traffic:
        unlike :meth:`query` (inject, drain, read the answer — one query
        at a time), this only *launches* the query; the caller runs the
        engine, typically with many queries in flight at once, and
        collects answers from :attr:`query_answers` (each stamped with its
        virtual ``completed_at``) or reactively through the
        :attr:`on_query_answer` hook.  ``record_path`` makes the answer
        carry the full list of visited nodes for per-node load accounting.
        Returns the id of the node the query entered the overlay at.
        """
        if not self.nodes:
            raise RuntimeError("the overlay holds no objects")
        target = (float(target[0]), float(target[1]))
        if start is None:
            ids = list(self.nodes)
            start = ids[self.rng.integer(0, len(ids))]
        payload: Dict = {"target": target, "requester": start, "hops": 0,
                         "query_id": query_id}
        if record_path:
            payload["path"] = []
        self.send(self.nodes[start], start, "QUERY", payload)
        self.metrics.increment("queries")
        return start

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def verify_views(self) -> List[str]:
        """Compare every local view against the shared kernel; list problems."""
        problems: List[str] = []
        d_min = self.config.effective_d_min
        for object_id, node in self.nodes.items():
            kernel_neighbors = set(self.kernel.neighbors(object_id))
            local_neighbors = set(node.voronoi)
            if kernel_neighbors != local_neighbors:
                problems.append(
                    f"{object_id}: local vn view {sorted(local_neighbors)} != "
                    f"kernel {sorted(kernel_neighbors)}")
            for close_id, close_position in node.close.items():
                if close_id not in self.nodes:
                    problems.append(f"{object_id}: stale close neighbour {close_id}")
                elif distance(node.position, close_position) > d_min * (1 + 1e-9):
                    problems.append(
                        f"{object_id}: close neighbour {close_id} beyond d_min")
            for link in node.long_links:
                if link.neighbor not in self.nodes:
                    problems.append(
                        f"{object_id}: long link to departed {link.neighbor}")
                    continue
                owner = self.kernel.nearest_vertex(link.target, hint=link.neighbor)
                if owner != link.neighbor:
                    problems.append(
                        f"{object_id}: long link points at {link.neighbor} but "
                        f"{owner} owns the target")
        return problems

    def mean_view_size(self) -> float:
        """Average number of view entries per object."""
        if not self.nodes:
            return 0.0
        return sum(node.view_size() for node in self.nodes.values()) / len(self.nodes)

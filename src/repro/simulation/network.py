"""Message-passing network layer over the event engine.

Every protocol interaction in the message-level simulator is a
:class:`Message` delivered through a :class:`Network`: the sender hands the
message to the network, the network schedules its delivery after a latency
drawn from the configured :class:`LatencyModel`, and the recipient's
registered handler is invoked at delivery time.  The network keeps the
per-type message counters that maintenance-cost experiments report.

Fault injection
---------------
A :class:`~repro.simulation.faults.FaultPlane` can be attached (via the
``faults`` constructor argument or the :attr:`Network.faults` attribute).
When present, every non-local send is submitted to its
:meth:`~repro.simulation.faults.FaultPlane.decide` hook, which may drop the
message (crashed endpoint, partition cut, probabilistic loss) or stretch
its delivery latency.  Dropped messages still count as *sent* — the sender
paid for them — and are tallied in :attr:`Network.messages_lost`, separate
from :attr:`Network.messages_dropped` (no handler at delivery time).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional

from repro.simulation.engine import SimulationEngine
from repro.utils.rng import RandomSource

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.simulation.faults import FaultPlane

__all__ = ["Message", "LatencyModel", "ConstantLatency", "UniformLatency", "Network"]


@dataclass
class Message:
    """One protocol message.

    Attributes
    ----------
    sender / recipient:
        Object ids of the endpoints (the network does not interpret them
        beyond handler lookup).
    kind:
        Message type (e.g. ``"ADD_OBJECT"``); used for accounting.
    payload:
        Arbitrary content (kept as a dict of plain values).
    hop_index:
        Position of this message within a multi-hop operation (filled in by
        the protocol layer; informational).
    """

    sender: int
    recipient: int
    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)
    hop_index: int = 0


class LatencyModel(abc.ABC):
    """Delivery-latency model for point-to-point messages."""

    @abc.abstractmethod
    def sample(self, message: Message) -> float:
        """Latency (virtual time units) for delivering ``message``."""


class ConstantLatency(LatencyModel):
    """Every message takes the same time to deliver."""

    def __init__(self, latency: float = 1.0) -> None:
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self.latency = latency

    def sample(self, message: Message) -> float:
        return self.latency


class UniformLatency(LatencyModel):
    """Latency drawn uniformly from ``[low, high]`` per message."""

    def __init__(self, low: float, high: float,
                 rng: Optional[RandomSource] = None) -> None:
        if not 0 <= low <= high:
            raise ValueError("need 0 <= low <= high")
        self.low = low
        self.high = high
        self._rng = rng if rng is not None else RandomSource()

    def sample(self, message: Message) -> float:
        return self._rng.uniform(self.low, self.high)


class Network:
    """Delivers messages between registered handlers via the event engine."""

    def __init__(self, engine: SimulationEngine,
                 latency: Optional[LatencyModel] = None,
                 faults: Optional["FaultPlane"] = None) -> None:
        self._engine = engine
        self._latency = latency if latency is not None else ConstantLatency(1.0)
        self._handlers: Dict[int, Callable[[Message], None]] = {}
        #: Optional fault-injection hook (see the module docstring); any
        #: object with a ``decide(message, now)`` method returning a
        #: decision with ``deliver`` / ``extra_delay`` attributes works.
        self.faults = faults
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.messages_lost = 0
        self.sent_by_kind: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def register(self, node_id: int, handler: Callable[[Message], None]) -> None:
        """Register (or replace) the delivery handler of a node."""
        self._handlers[node_id] = handler

    def unregister(self, node_id: int) -> None:
        """Remove a node's handler; future messages to it are dropped."""
        self._handlers.pop(node_id, None)

    def is_registered(self, node_id: int) -> bool:
        """Whether the node currently has a handler."""
        return node_id in self._handlers

    # ------------------------------------------------------------------
    def send(self, message: Message) -> None:
        """Send a message; it is delivered after the model's latency.

        Messages a node "sends to itself" (local hand-offs used to keep the
        protocol code uniform) are delivered with zero latency and are not
        counted, matching the paper's definition of a *local* function.
        """
        if message.sender == message.recipient:
            self._engine.schedule(0.0, lambda: self._deliver(message),
                                  label=f"self:{message.kind}")
            return
        self.messages_sent += 1
        self.sent_by_kind[message.kind] = self.sent_by_kind.get(message.kind, 0) + 1
        extra_delay = 0.0
        if self.faults is not None:
            decision = self.faults.decide(message, self._engine.now)
            if not decision.deliver:
                self.messages_lost += 1
                return
            extra_delay = decision.extra_delay
        delay = self._latency.sample(message) + extra_delay
        self._engine.schedule(delay, lambda: self._deliver(message),
                              label=message.kind)

    def _deliver(self, message: Message) -> None:
        handler = self._handlers.get(message.recipient)
        if handler is None:
            self.messages_dropped += 1
            return
        self.messages_delivered += 1 if message.sender != message.recipient else 0
        handler(message)

    # ------------------------------------------------------------------
    def snapshot_counters(self) -> Dict[str, int]:
        """Copy of the global counters (useful for before/after accounting)."""
        counters = {
            "sent": self.messages_sent,
            "delivered": self.messages_delivered,
            "dropped": self.messages_dropped,
            "lost": self.messages_lost,
        }
        counters.update({f"kind:{k}": v for k, v in self.sent_by_kind.items()})
        return counters

    def counters_since(self, before: Dict[str, int]) -> Dict[str, int]:
        """Counter deltas relative to an earlier :meth:`snapshot_counters`.

        Zero-delta entries are dropped, so the result reads as "what this
        operation cost": phase accounting in ``bulk_join`` benchmarks and
        maintenance experiments diff snapshots through this helper.
        """
        deltas = {}
        for key, value in self.snapshot_counters().items():
            delta = value - before.get(key, 0)
            if delta:
                deltas[key] = delta
        return deltas

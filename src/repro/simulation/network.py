"""Message-passing network layer over the event engine.

Every protocol interaction in the message-level simulator is a
:class:`Message` delivered through a :class:`Network`: the sender hands the
message to the network, the network schedules its delivery after a latency
drawn from the configured :class:`LatencyModel`, and the recipient's
registered handler is invoked at delivery time.  The network keeps the
per-type message counters that maintenance-cost experiments report.

Hot-path design
---------------
``send`` is executed once per protocol message, so the plane avoids every
per-message allocation it can: :class:`Message` is a hand-rolled
``__slots__`` class, the recipient's handler is resolved *at send time*
and pushed straight onto the engine heap as a raw ``(handler, message)``
delivery entry — no closure, no event object (``unregister`` voids the
handler's in-flight entries, so a departed node can never be handed a
message), per-kind counters are a :class:`collections.Counter`, a
:class:`ConstantLatency` model is read as a plain float instead of a
virtual ``sample`` dispatch, and ``messages_delivered`` is derived from
the exact sent/lost/dropped counters instead of being bumped per
delivery.

Fault injection
---------------
A :class:`~repro.simulation.faults.FaultPlane` can be attached (via the
``faults`` constructor argument or the :attr:`Network.faults` attribute).
When present, every non-local send is submitted to its
:meth:`~repro.simulation.faults.FaultPlane.decide` hook, which may drop the
message (crashed endpoint, partition cut, probabilistic loss) or stretch
its delivery latency.  Dropped messages still count as *sent* — the sender
paid for them — and are tallied in :attr:`Network.messages_lost`, separate
from :attr:`Network.messages_dropped` (no handler by delivery time).
"""

from __future__ import annotations

import abc
from collections import Counter
from heapq import heappush
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional

from repro.simulation.engine import SimulationEngine
from repro.utils.rng import RandomSource

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.simulation.faults import FaultPlane

__all__ = ["Message", "LatencyModel", "ConstantLatency", "UniformLatency", "Network"]


class Message:
    """One protocol message.

    A hand-rolled ``__slots__`` class (one is allocated per protocol
    message — the dataclass machinery measurably showed in profiles);
    field-wise equality and repr match the former dataclass.

    Attributes
    ----------
    sender / recipient:
        Object ids of the endpoints (the network does not interpret them
        beyond handler lookup).
    kind:
        Message type (e.g. ``"ADD_OBJECT"``); used for accounting.
    payload:
        Arbitrary content (kept as a dict of plain values).
    hop_index:
        Position of this message within a multi-hop operation (filled in by
        the protocol layer; informational).
    """

    __slots__ = ("sender", "recipient", "kind", "payload", "hop_index")

    def __init__(self, sender: int, recipient: int, kind: str,
                 payload: Optional[Dict[str, Any]] = None,
                 hop_index: int = 0) -> None:
        self.sender = sender
        self.recipient = recipient
        self.kind = kind
        self.payload = {} if payload is None else payload
        self.hop_index = hop_index

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Message):
            return NotImplemented
        return (self.sender == other.sender
                and self.recipient == other.recipient
                and self.kind == other.kind
                and self.payload == other.payload
                and self.hop_index == other.hop_index)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Message(sender={self.sender!r}, recipient={self.recipient!r}, "
                f"kind={self.kind!r}, payload={self.payload!r}, "
                f"hop_index={self.hop_index!r})")


class LatencyModel(abc.ABC):
    """Delivery-latency model for point-to-point messages."""

    __slots__ = ()

    @abc.abstractmethod
    def sample(self, message: Message) -> float:
        """Latency (virtual time units) for delivering ``message``."""

    def bind_rng(self, rng: RandomSource) -> None:
        """Adopt a seeded random source, unless one was supplied explicitly.

        The protocol simulator threads its own seeded stream through here
        so stochastic latency models are reproducible end-to-end from the
        simulator seed.  Deterministic models ignore the call.
        """


class ConstantLatency(LatencyModel):
    """Every message takes the same time to deliver."""

    __slots__ = ("latency",)

    def __init__(self, latency: float = 1.0) -> None:
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self.latency = latency

    def sample(self, message: Message) -> float:
        return self.latency

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ConstantLatency(latency={self.latency!r})"


class UniformLatency(LatencyModel):
    """Latency drawn uniformly from ``[low, high]`` per message.

    Without an explicit ``rng`` the model starts on an unseeded source and
    adopts the first stream offered through :meth:`bind_rng` — which the
    protocol simulator does at construction, so latency draws derive from
    the simulator seed.  A standalone :class:`Network` performs no such
    binding; pass ``rng`` explicitly there for reproducibility.
    """

    __slots__ = ("low", "high", "_rng", "_rng_defaulted")

    def __init__(self, low: float, high: float,
                 rng: Optional[RandomSource] = None) -> None:
        if not 0 <= low <= high:
            raise ValueError("need 0 <= low <= high")
        self.low = low
        self.high = high
        # Placeholder stream, replaced by the simulator's seeded fork via
        # bind_rng (see the class docstring).
        self._rng = rng if rng is not None else RandomSource()  # simlint: ignore[SIM002]
        self._rng_defaulted = rng is None

    def bind_rng(self, rng: RandomSource) -> None:
        if self._rng_defaulted:
            self._rng = rng
            self._rng_defaulted = False

    def sample(self, message: Message) -> float:
        return self._rng.uniform(self.low, self.high)

    @property
    def effective_seed(self) -> Optional[int]:
        """Seed of the stream latencies actually draw from, if known.

        ``None`` either because the model is still on its unseeded
        placeholder stream (``rng_pending`` in the repr) or because the
        bound stream was itself derived (e.g. a spawned child); the repr
        distinguishes the two so SIM002 audits can tell which it is.
        """
        return self._rng.seed

    def __repr__(self) -> str:
        if self._rng_defaulted:
            provenance = "rng_pending"
        else:
            provenance = f"effective_seed={self._rng.provenance!r}"
        return (f"UniformLatency(low={self.low!r}, high={self.high!r}, "
                f"{provenance})")


class Network:
    """Delivers messages between registered handlers via the event engine."""

    __slots__ = ("_engine", "_latency", "_fixed_latency", "_handlers",
                 "_replaced_handlers", "faults", "messages_sent",
                 "messages_dropped", "messages_lost", "sent_by_kind",
                 "_send_triggers")

    def __init__(self, engine: SimulationEngine,
                 latency: Optional[LatencyModel] = None,
                 faults: Optional["FaultPlane"] = None) -> None:
        self._engine = engine
        self._latency = latency if latency is not None else ConstantLatency(1.0)
        # Fast path: a plain ConstantLatency is read as a float at send
        # time instead of a virtual sample() dispatch.  Exact type check —
        # a subclass may well override sample().
        self._fixed_latency: Optional[float] = (
            self._latency.latency if type(self._latency) is ConstantLatency
            else None)
        self._handlers: Dict[int, Callable[[Message], None]] = {}
        #: Handlers displaced by a re-registration, kept until the node
        #: unregisters: in-flight deliveries still point at them, and
        #: ``unregister`` promises to void *all* of a node's deliveries.
        self._replaced_handlers: Dict[int, list] = {}
        #: Optional fault-injection hook (see the module docstring); any
        #: object with a ``decide(message, now)`` method returning a
        #: decision with ``deliver`` / ``extra_delay`` attributes works.
        self.faults = faults
        self.messages_sent = 0
        self.messages_dropped = 0
        self.messages_lost = 0
        self.sent_by_kind: Counter = Counter()
        #: Message-index triggers (see :meth:`at_message`); empty in every
        #: ordinary run, so the hot path pays one falsy check.
        self._send_triggers: Dict[int, list] = {}

    @property
    def latency(self) -> LatencyModel:
        """The latency model delivery delays are drawn from."""
        return self._latency

    @property
    def messages_delivered(self) -> int:
        """Messages handed to their recipient (or still in flight).

        Derived from the exact counters — every counted send is either
        lost at the fault plane, dropped (no recipient), or delivered —
        so no per-delivery bookkeeping sits on the hot path.  At
        quiescence (where all accounting reads happen: phase barriers,
        snapshots, report records) the value is exactly the number of
        completed deliveries; mid-drain it also counts messages still in
        flight.
        """
        return self.messages_sent - self.messages_lost - self.messages_dropped

    # ------------------------------------------------------------------
    def register(self, node_id: int, handler: Callable[[Message], None]) -> None:
        """Register (or replace) the delivery handler of a node.

        Sends resolve the handler at send time, so replacing a live
        handler re-routes *future* sends only; messages already in flight
        deliver to the handler they were sent to (the displaced handler is
        remembered so a later :meth:`unregister` can void those too).
        """
        previous = self._handlers.get(node_id)
        if previous is not None and previous is not handler:
            self._replaced_handlers.setdefault(node_id, []).append(previous)
        self._handlers[node_id] = handler

    def unregister(self, node_id: int) -> None:
        """Remove a node's handler; messages to it are dropped.

        In-flight deliveries are voided too (their entries are removed
        from the engine queue, including any still bound to a handler the
        node replaced), counted in :attr:`messages_dropped` — the sender
        paid for them but nobody is left to receive them.  Local self
        hand-offs in flight are voided without counting, consistent with
        :meth:`send` treating them as free local functions.
        """
        handler = self._handlers.pop(node_id, None)
        if handler is None:
            return
        handlers = [handler] + self._replaced_handlers.pop(node_id, [])
        for target in handlers:
            for voided in self._engine.cancel_actions(target):
                if voided.sender != voided.recipient:
                    self.messages_dropped += 1

    def is_registered(self, node_id: int) -> bool:
        """Whether the node currently has a handler."""
        return node_id in self._handlers

    def at_message(self, index: int, action: Callable[[Message], None]) -> None:
        """Run ``action(message)`` when the ``index``-th counted send occurs.

        ``index`` is 1-based and counts exactly what :attr:`messages_sent`
        counts (local self hand-offs are free and never trigger).  The
        action fires *after* the message is counted but *before* the fault
        plane decides its fate — so a trigger that crashes a node makes the
        indexed message itself the first one the crash can drop.  That
        ordering is what gives the fuzzing harness its replay contract: a
        crash schedule is fully described by ``(seed, message_index,
        victim)``.  Triggers are one-shot; several may share an index and
        run in registration order.
        """
        if index < 1:
            raise ValueError(f"message index is 1-based, got {index}")
        self._send_triggers.setdefault(index, []).append(action)

    # ------------------------------------------------------------------
    def send(self, message: Message) -> None:
        """Send a message; it is delivered after the model's latency.

        Messages a node "sends to itself" (local hand-offs used to keep the
        protocol code uniform) are delivered with zero latency and are not
        counted — neither as sent nor, when the node is gone by delivery
        time, as dropped — matching the paper's definition of a *local*
        function.
        """
        recipient = message.recipient
        if message.sender == recipient:
            # Local hand-off: zero latency, no counters.  The raw handler
            # (not the counting dispatcher) rides on the entry.
            handler = self._handlers.get(recipient)
            self._engine.push_call(
                0.0, handler if handler is not None else self._deliver,
                message)
            return
        self.messages_sent += 1
        self.sent_by_kind[message.kind] += 1
        if self._send_triggers:
            actions = self._send_triggers.pop(self.messages_sent, None)
            if actions is not None:
                for trigger in actions:
                    trigger(message)
        extra_delay = 0.0
        faults = self.faults
        if faults is not None:
            decision = faults.decide(message, self._engine.now)
            if not decision.deliver:
                self.messages_lost += 1
                return
            extra_delay = decision.extra_delay
        delay = self._fixed_latency
        if delay is None:
            delay = self._latency.sample(message)
        if (faults is not None and getattr(faults, "in_flight_cuts", 0)
                and faults.cuts_in_flight(message,
                                          self._engine.now + delay + extra_delay)):
            # Delivery-time partition enforcement (in_flight="cut" splits):
            # the packet would land inside an active cross-side window.
            self.messages_lost += 1
            return
        # Handler lookup hoisted to send time: the common registered case
        # puts the node's handler straight on the heap entry — delivery is
        # then one C-level tuple pop and one call into the handler.  The
        # rare unregistered-at-send case falls back to a delivery-time
        # lookup (the recipient may legitimately register while the
        # message is in flight).  The entry is pushed inline — the
        # equivalent of ``engine.push_call`` minus one call frame, on the
        # one code path hot enough to care (latencies are non-negative by
        # model contract, so the delay validation is vacuous here).
        action = self._handlers.get(recipient)
        if action is None:
            action = self._deliver
        engine = self._engine
        sequence = engine._sequence
        engine._sequence = sequence + 1
        heappush(engine._queue,
                 (engine._now + delay + extra_delay, sequence, action,
                  message))

    def _deliver(self, message: Message) -> None:
        """Slow path: resolve the handler at delivery time.

        Used when the recipient had no handler at send time.  Undeliverable
        *self* hand-offs are free — ``send`` defines local hand-offs as
        uncounted, so their drop is uncounted too.
        """
        handler = self._handlers.get(message.recipient)
        if handler is None:
            if message.sender != message.recipient:
                self.messages_dropped += 1
            return
        handler(message)

    # ------------------------------------------------------------------
    def snapshot_counters(self) -> Dict[str, int]:
        """Copy of the global counters (useful for before/after accounting)."""
        counters = {
            "sent": self.messages_sent,
            "delivered": self.messages_delivered,
            "dropped": self.messages_dropped,
            "lost": self.messages_lost,
        }
        counters.update({f"kind:{k}": v for k, v in self.sent_by_kind.items()})
        return counters

    def counters_since(self, before: Dict[str, int]) -> Dict[str, int]:
        """Counter deltas relative to an earlier :meth:`snapshot_counters`.

        Zero-delta entries are dropped, so the result reads as "what this
        operation cost": phase accounting in ``bulk_join`` benchmarks and
        maintenance experiments diff snapshots through this helper.
        """
        deltas = {}
        for key, value in self.snapshot_counters().items():
            delta = value - before.get(key, 0)
            if delta:
                deltas[key] = delta
        return deltas

"""Execution traces of simulation runs.

A :class:`TraceRecorder` keeps a bounded in-memory log of interesting
events (message sends, operation starts/ends, view updates) so integration
tests and examples can assert on protocol behaviour ("the join touched only
the region owner's neighbourhood") without printf-debugging the simulator.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Iterable, List, Optional

__all__ = ["TraceRecord", "TraceRecorder"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry."""

    time: float
    kind: str
    details: Dict[str, Any] = field(default_factory=dict)


class TraceRecorder:
    """Bounded, filterable event trace.

    Parameters
    ----------
    capacity:
        Maximum number of records kept (oldest are evicted first).
    enabled:
        A disabled recorder drops records immediately; recording can be
        toggled at runtime so only interesting phases are traced.
    """

    __slots__ = ("_records", "enabled", "dropped")

    def __init__(self, capacity: int = 100_000, enabled: bool = True) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self._records: Deque[TraceRecord] = deque(maxlen=capacity)
        self.enabled = enabled
        self.dropped = 0

    def record(self, time: float, kind: str, **details: Any) -> None:
        """Append one record (no-op when disabled)."""
        if not self.enabled:
            self.dropped += 1
            return
        if len(self._records) == self._records.maxlen:
            self.dropped += 1
        self._records.append(TraceRecord(time=time, kind=kind, details=details))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    def records(self, kind: Optional[str] = None,
                predicate: Optional[Callable[[TraceRecord], bool]] = None
                ) -> List[TraceRecord]:
        """Records matching an optional kind and/or predicate filter."""
        result: Iterable[TraceRecord] = self._records
        if kind is not None:
            result = (r for r in result if r.kind == kind)
        if predicate is not None:
            result = (r for r in result if predicate(r))
        return list(result)

    def count(self, kind: str) -> int:
        """Number of records of the given kind."""
        return sum(1 for r in self._records if r.kind == kind)

    def counts_by_kind(self) -> Dict[str, int]:
        """Record counts per kind — a one-glance summary of a run.

        Fault experiments lean on this: a harness run leaves ``crash``,
        ``suspect`` and ``repair_round`` records whose counts are the
        cheapest possible convergence cross-check.
        """
        counts: Dict[str, int] = {}
        for record in self._records:
            counts[record.kind] = counts.get(record.kind, 0) + 1
        return counts

    def operation_summary(self) -> Dict[str, int]:
        """Counts of the operation-hardening kinds, zero-filled.

        ``operation_timeout`` (a watchdog expired), ``operation_failed``
        (its retries exhausted) and ``crash`` — the three kinds a fuzz
        schedule's post-mortem always wants together, present even when
        zero so failure reports diff cleanly across schedules.
        """
        counts = self.counts_by_kind()
        return {kind: counts.get(kind, 0)
                for kind in ("operation_timeout", "operation_failed", "crash")}

    def last(self, kind: str) -> Optional[TraceRecord]:
        """The most recent record of the given kind, or ``None``."""
        for record in reversed(self._records):
            if record.kind == kind:
                return record
        return None

    def clear(self) -> None:
        """Drop every record."""
        self._records.clear()
        self.dropped = 0

"""Message-level fault injection and the self-healing repair protocol.

The paper (Section 3.3) specifies a *graceful* departure protocol — a
leaving object hands its region, its close-neighbour declarations and its
hosted back-long-range registrations to the survivors before withdrawing —
and explicitly leaves crash recovery open.  The oracle-mode
:class:`~repro.simulation.failures.CrashInjector` quantifies that gap by
mutating overlay state directly; this module closes it *at the message
level*: crashes, message loss and partitions are injected into the network
layer, and the survivors detect and repair the damage entirely through
counted protocol messages.

Four pieces compose the subsystem:

* :class:`FaultPlane` — the injection point, consulted by
  :meth:`Network.send <repro.simulation.network.Network.send>` for every
  non-local message.  It drops traffic to/from crashed nodes, cuts
  messages crossing an active partition (a set of ids isolated for a
  window of the virtual clock), and loses or delays messages
  probabilistically from a dedicated seeded random source, so delivery
  decisions are reproducible end to end.
* :class:`ProtocolCrashInjector` — crashes live protocol nodes abruptly.
  Exactly mirroring the oracle injector, the *substrate* is repaired (the
  shared kernel, the locate grid and the network handler table forget the
  victim — the hosting infrastructure notices the peer vanished) while
  every protocol-level hand-over of Section 3.3 is skipped, stranding the
  survivors' local views.
* :class:`HeartbeatDetector` — periodic ``PING``/``PONG`` probing of each
  node's reference set (Voronoi neighbours, close neighbours, long-link
  endpoints and back-link sources).  A peer missing ``miss_threshold``
  consecutive rounds lands on the prober's local suspect list; a live
  suspect that later answers a probe is exonerated by the ``PONG``
  handler, so lost heartbeats self-correct.  :class:`HeartbeatConfig`
  optionally piggy-backs freshness on ordinary protocol traffic (any
  delivered message exonerates its sender, recently heard peers are not
  probed, crossed probes suppress the redundant ``PONG``) and probes
  long-link/back-link edges on a deterministic sampling stride instead of
  every round — an order-of-magnitude cheaper steady state for a bounded
  increase in detection latency; the full-probe default stays
  byte-identical to the original detector for parity tests.
* :class:`RepairProtocol` — the crash-mode extension of the Section 3.3
  departure protocol.  Where a graceful leaver *pushes* its state out, the
  repair protocol lets the survivors *pull* the overlay back together in
  phased rounds: suspicion gossip (``SUSPECT_NOTIFY``, which also scrubs
  close entries and dangling back registrations), Voronoi view repair
  (``VIEW_SCRUB``, the survivors' ``RemoveVoronoiRegion`` — each wounded
  view is refreshed from a version-stamped local kernel consultation, and
  mis-held back registrations are handed one greedy step towards their
  target's owner), dangling long-link re-resolution (re-running the routed
  ``SEARCH_LONG_LINK`` machinery, which re-registers the back link and
  answers ``LONG_LINK_ESTABLISHED``), and close re-discovery seeded by the
  simulator's locate grid.  Rounds are retry-safe: a node keeps a suspect
  until no local reference to it survives, so repair messages lost to the
  fault plane are simply re-attempted next round.

:class:`ProtocolChurnHarness` wires the pieces into one reproducible
experiment — bulk-join a population, churn it gracefully, crash a
fraction, detect, repair, verify — with per-phase message accounting; the
``ablation_churn_protocol`` experiment and ``bench_protocol_churn``
benchmark are thin wrappers around it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.config import VoroNetConfig
from repro.simulation.failures import ChurnScheduler, CrashDamageReport
from repro.simulation.network import Message
from repro.simulation.protocol import ProtocolSimulator
from repro.simulation.trace import TraceRecorder
from repro.utils.rng import RandomSource
from repro.workloads.distributions import ObjectDistribution, UniformDistribution
from repro.workloads.generators import generate_objects

__all__ = [
    "FaultDecision",
    "FaultPlane",
    "PartitionSpec",
    "SplitSpec",
    "ProtocolCrashInjector",
    "HeartbeatConfig",
    "HeartbeatDetector",
    "RepairProtocol",
    "RepairReport",
    "ProtocolChurnHarness",
    "ProtocolChurnReport",
]


# ----------------------------------------------------------------------
# the fault plane
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultDecision:
    """Verdict of the fault plane on one message."""

    deliver: bool
    reason: str = "ok"
    extra_delay: float = 0.0


_DELIVER = FaultDecision(deliver=True)


@dataclass(frozen=True)
class PartitionSpec:
    """One partition: ``members`` are cut off from everyone else in a window.

    The window is half-open on the virtual clock: messages sent at
    ``start <= now < end`` with exactly one endpoint inside ``members``
    are dropped.  Traffic *within* the isolated group (and within its
    complement) flows normally.
    """

    members: frozenset
    start: float
    end: float

    def active(self, now: float) -> bool:
        return self.start <= now < self.end

    def separates(self, sender: int, recipient: int) -> bool:
        return (sender in self.members) != (recipient in self.members)


class SplitSpec:  # simlint: ignore[SIM003] — one per partition event, not per message
    """A k-way network split with explicit side membership.

    Unlike :class:`PartitionSpec` (one group cut off from *everyone*),
    a split names every side: traffic within a side flows, traffic
    between any two different sides is cut while the window is active.
    Nodes joining mid-split are assigned a side with :meth:`assign`, so
    side membership tracks the population the merge protocol must
    reconcile.

    ``in_flight`` pins the semantics for messages already travelling when
    a window opens (see ``TESTING.md`` "Partitions & merge"):

    * ``"deliver"`` (default): the fault decision is made at *send* time
      only — a message sent before the window opens is a packet already
      on the wire and is delivered even if its delivery lands mid-split.
    * ``"cut"``: delivery-time enforcement — a cross-side message whose
      delivery would land inside the window is dropped too.
    """

    __slots__ = ("sides", "start", "end", "in_flight", "_side_of", "healed")

    def __init__(self, sides: Sequence[Sequence[int]], start: float,
                 end: float, *, in_flight: str = "deliver") -> None:
        if end < start:
            raise ValueError(f"split window ends before it starts: "
                             f"[{start}, {end})")
        if in_flight not in ("deliver", "cut"):
            raise ValueError(f"in_flight must be 'deliver' or 'cut', "
                             f"got {in_flight!r}")
        if len(sides) < 2:
            raise ValueError("a split needs at least two sides")
        self.sides: List[Set[int]] = [set(side) for side in sides]
        self._side_of: Dict[int, int] = {}
        for index, side in enumerate(self.sides):
            for object_id in side:
                if object_id in self._side_of:
                    raise ValueError(f"object {object_id} appears on "
                                     f"two sides of the split")
                self._side_of[object_id] = index
        self.start = float(start)
        self.end = float(end)
        self.in_flight = in_flight
        self.healed = False

    def __repr__(self) -> str:
        sizes = "/".join(str(len(side)) for side in self.sides)
        return (f"SplitSpec(sides={sizes}, start={self.start!r}, "
                f"end={self.end!r}, in_flight={self.in_flight!r})")

    def active(self, now: float) -> bool:
        return not self.healed and self.start <= now < self.end

    def side_of(self, object_id: int) -> Optional[int]:
        """Side index of ``object_id``, or ``None`` if unassigned."""
        return self._side_of.get(object_id)

    def assign(self, object_id: int, side: int) -> None:
        """Place a split-era joiner on ``side`` (idempotent re-assign is an error)."""
        if not 0 <= side < len(self.sides):
            raise ValueError(f"no side {side} in a {len(self.sides)}-way split")
        current = self._side_of.get(object_id)
        if current is not None and current != side:
            raise ValueError(f"object {object_id} already on side {current}")
        self.sides[side].add(object_id)
        self._side_of[object_id] = side

    def separates(self, sender: int, recipient: int) -> bool:
        """True when both endpoints are assigned and sit on different sides.

        Unassigned endpoints (objects that predate the split machinery or
        external observers) are never cut — the split only severs traffic
        between *known* sides, matching how a WAN partition separates
        whole sites rather than individual flows.
        """
        sender_side = self._side_of.get(sender)
        recipient_side = self._side_of.get(recipient)
        return (sender_side is not None and recipient_side is not None
                and sender_side != recipient_side)


class FaultPlane:
    """Message-level fault injection for the protocol simulator.

    Attach via ``ProtocolSimulator(..., faults=FaultPlane(seed=...))`` (or
    by setting :attr:`Network.faults <repro.simulation.network.Network.faults>`
    directly).  Every non-local send is then submitted to :meth:`decide`.

    Decision order is fixed — crashed sender, crashed recipient, partition
    cut, probabilistic loss, probabilistic delay — and random draws come
    from a dedicated :class:`~repro.utils.rng.RandomSource`, so for a given
    seed and message sequence the decisions are deterministic (the
    Hypothesis suite pins this).

    Parameters
    ----------
    seed:
        Seed of the loss/delay random source.
    loss_probability:
        Per-message probability of silent loss (applied after crash and
        partition checks).
    delay_probability / delay_range:
        Probability that a delivered message is stretched by an extra
        latency drawn uniformly from ``delay_range``.
    """

    __slots__ = ("_rng", "seed", "_crashed", "_partitions", "_splits",
                 "_heal_hooks", "in_flight_cuts",
                 "loss_probability", "delay_probability", "delay_range",
                 "decisions", "drops_by_reason")

    def __init__(self, *, seed: Optional[int] = None,
                 loss_probability: float = 0.0,
                 delay_probability: float = 0.0,
                 delay_range: Tuple[float, float] = (0.0, 0.0)) -> None:
        self._rng = RandomSource(seed)
        #: The seed the decision stream was built from (``None`` when the
        #: plane was deliberately left unseeded) — kept so reprs and
        #: experiment reports can state how to replay the fault schedule.
        self.seed = seed
        self._crashed: Set[int] = set()
        self._partitions: List[PartitionSpec] = []
        self._splits: List[SplitSpec] = []
        self._heal_hooks: List = []
        #: Count of live specs with delivery-time (``in_flight="cut"``)
        #: enforcement — the network's send hot path only consults
        #: :meth:`cuts_in_flight` when this is non-zero.
        self.in_flight_cuts = 0
        self.set_loss(loss_probability)
        self.set_delay(delay_probability, delay_range)
        self.decisions = 0
        self.drops_by_reason: Dict[str, int] = {}

    def __repr__(self) -> str:
        return (f"FaultPlane(seed={self.seed!r}, "
                f"loss_probability={self.loss_probability!r}, "
                f"delay_probability={self.delay_probability!r}, "
                f"delay_range={self.delay_range!r})")

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    def set_loss(self, probability: float) -> None:
        """Set the per-message loss probability."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"loss probability must be in [0, 1], got {probability}")
        self.loss_probability = probability

    def set_delay(self, probability: float,
                  delay_range: Tuple[float, float]) -> None:
        """Set the extra-delay probability and its uniform range."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"delay probability must be in [0, 1], got {probability}")
        low, high = delay_range
        if not 0.0 <= low <= high:
            raise ValueError(f"need 0 <= low <= high, got {delay_range}")
        self.delay_probability = probability
        self.delay_range = (float(low), float(high))

    def crash(self, object_id: int) -> None:
        """Mark a node crashed: every message to or from it is dropped."""
        self._crashed.add(object_id)

    def is_crashed(self, object_id: int) -> bool:
        return object_id in self._crashed

    @property
    def crashed(self) -> frozenset:
        """Ids currently marked crashed."""
        return frozenset(self._crashed)

    def partition(self, members: Sequence[int], start: float,
                  end: float) -> PartitionSpec:
        """Isolate ``members`` from the rest of the overlay on ``[start, end)``."""
        if end < start:
            raise ValueError(f"partition window ends before it starts: "
                             f"[{start}, {end})")
        spec = PartitionSpec(members=frozenset(members), start=float(start),
                             end=float(end))
        self._partitions.append(spec)
        return spec

    def split(self, sides: Sequence[Sequence[int]], start: float,
              end: float = math.inf, *,
              in_flight: str = "deliver") -> SplitSpec:
        """Open a k-way split: traffic between different ``sides`` is cut.

        Returns the :class:`SplitSpec`, whose :meth:`~SplitSpec.assign`
        tracks split-era joiners.  ``end`` defaults to +inf — a split is
        normally closed explicitly via :meth:`heal_partitions` (which
        fires the registered heal hooks) rather than by the clock.
        """
        spec = SplitSpec(sides, start, end, in_flight=in_flight)
        self._splits.append(spec)
        if in_flight == "cut":
            self.in_flight_cuts += 1
        return spec

    def active_split(self, now: float) -> Optional[SplitSpec]:
        """The first split whose window covers ``now``, if any."""
        for spec in self._splits:
            if spec.active(now):
                return spec
        return None

    def side_of(self, object_id: int, now: float) -> Optional[int]:
        """Side of ``object_id`` under the split active at ``now``."""
        spec = self.active_split(now)
        return None if spec is None else spec.side_of(object_id)

    def on_heal(self, hook) -> None:
        """Register ``hook(spec)`` to fire when a split/partition heals.

        Hooks fire once per healed spec, in registration order, from
        :meth:`heal_partitions` — the explicit heal path.  Windows that
        merely expire on the virtual clock are passive (pruned on the
        ``decide`` hot path without firing hooks); drive the heal
        explicitly when merge bookkeeping must run.
        """
        self._heal_hooks.append(hook)

    def heal_partitions(self) -> int:
        """Drop every partition/split spec; returns how many were open.

        Fires the :meth:`on_heal` hooks for each dropped spec so higher
        layers (the merge runtime) can start anti-entropy bookkeeping at
        the moment connectivity returns.
        """
        count = len(self._partitions) + len(self._splits)
        healed: List = list(self._partitions) + list(self._splits)
        self._partitions.clear()
        for spec in self._splits:
            spec.healed = True
            if spec.in_flight == "cut":
                self.in_flight_cuts -= 1
        self._splits.clear()
        for spec in healed:
            for hook in self._heal_hooks:
                hook(spec)
        return count

    # ------------------------------------------------------------------
    # the decision hook
    # ------------------------------------------------------------------
    def decide(self, message: Message, now: float) -> FaultDecision:
        """Fate of one message sent at virtual time ``now``."""
        self.decisions += 1
        if message.sender in self._crashed:
            return self._drop("crashed_sender")
        if message.recipient in self._crashed:
            return self._drop("crashed_recipient")
        if self._partitions:
            # Prune expired windows first: decide() sits on the per-message
            # hot path, and the virtual clock never goes backwards.
            self._partitions = [spec for spec in self._partitions
                                if spec.end > now]
            for spec in self._partitions:
                if spec.active(now) and spec.separates(message.sender,
                                                       message.recipient):
                    return self._drop("partition")
        if self._splits:
            expired = [spec for spec in self._splits if spec.end <= now]
            if expired:
                for spec in expired:
                    if spec.in_flight == "cut":
                        self.in_flight_cuts -= 1
                self._splits = [spec for spec in self._splits
                                if spec.end > now]
            for spec in self._splits:
                if spec.active(now) and spec.separates(message.sender,
                                                       message.recipient):
                    return self._drop("partition")
        if self.loss_probability > 0.0 and self._rng.uniform() < self.loss_probability:
            return self._drop("loss")
        if self.delay_probability > 0.0 and self._rng.uniform() < self.delay_probability:
            low, high = self.delay_range
            return FaultDecision(deliver=True, reason="delayed",
                                 extra_delay=self._rng.uniform(low, high))
        return _DELIVER

    def cuts_in_flight(self, message: Message, delivery_time: float) -> bool:
        """Delivery-time check for ``in_flight="cut"`` windows.

        Called by the network *after* the send-time :meth:`decide` said
        deliver, with the computed delivery timestamp: a cross-side
        message landing inside a cut-mode window is dropped even though
        it was sent before the window opened.  Only consulted while
        :attr:`in_flight_cuts` is non-zero, keeping the default
        (send-time-only) semantics free on the hot path.
        """
        for spec in self._splits:
            if (spec.in_flight == "cut" and spec.active(delivery_time)
                    and spec.separates(message.sender, message.recipient)):
                self._drop("partition_in_flight")
                return True
        return False

    def _drop(self, reason: str) -> FaultDecision:
        self.drops_by_reason[reason] = self.drops_by_reason.get(reason, 0) + 1
        return FaultDecision(deliver=False, reason=reason)


# ----------------------------------------------------------------------
# protocol-mode crash injection
# ----------------------------------------------------------------------
class ProtocolCrashInjector:  # simlint: ignore[SIM003] — one per experiment, not per message
    """Abruptly removes objects from a message-level overlay.

    The substrate semantics mirror the oracle-mode
    :class:`~repro.simulation.failures.CrashInjector` exactly: the shared
    kernel, the locate grid and the network handler table forget the victim
    (the hosting infrastructure notices the peer vanished), and the fault
    plane starts dropping any traffic addressed to it — but none of the
    Section 3.3 hand-overs run, so every surviving local view that
    referenced the victim is left stale.  :meth:`assess_damage` quantifies
    the wreckage in the same :class:`CrashDamageReport` terms the oracle
    injector uses, which is what the protocol-vs-oracle parity tests pin.
    """

    def __init__(self, simulator: ProtocolSimulator,
                 rng: Optional[RandomSource] = None) -> None:
        self._simulator = simulator
        if simulator.network.faults is None:
            simulator.network.faults = FaultPlane()
        # Interactive/standalone default; experiments pass a seeded stream.
        self._rng = rng if rng is not None else RandomSource()  # simlint: ignore[SIM002]
        self._crashed: List[int] = []

    @property
    def crashed(self) -> List[int]:
        """Ids crashed so far, in crash order."""
        return list(self._crashed)

    def crash_random(self, count: int) -> List[int]:
        """Crash ``count`` uniformly random objects; returns their ids."""
        victims: List[int] = []
        for _ in range(count):
            ids = self._simulator.object_ids()
            if len(ids) <= 3:
                break
            victim = ids[self._rng.integer(0, len(ids))]
            self.crash(victim)
            victims.append(victim)
        return victims

    def crash(self, object_id: int) -> None:
        """Crash one object: substrate repaired, protocol hand-overs skipped.

        Safe at *any* message index: a victim caught mid-join may not be
        carved into the kernel yet, and one caught mid-leave has already
        withdrawn its region — the kernel removal is therefore conditional
        on the victim actually backing a vertex.  Multi-message operations
        the victim was driving are closed out (their watchdogs cancelled);
        a join still pending surfaces as a ``timed_out`` outcome on the
        caller's :class:`~repro.simulation.protocol.JoinReport` instead of
        leaking silently with the victim's starter state.
        """
        simulator = self._simulator
        if object_id not in simulator.nodes:
            raise KeyError(f"unknown object {object_id}")
        node = simulator.nodes[object_id]
        simulator.network.faults.crash(object_id)
        if simulator.kernel.vertex_at(node.position) == object_id:
            simulator.kernel.remove(object_id)
        simulator.locate.discard(object_id)
        simulator.network.unregister(object_id)
        del simulator.nodes[object_id]
        for kind, owner in simulator.pending_operations():
            if owner != object_id:
                continue
            simulator.finish_operation((kind, owner))
            if kind == "join":
                simulator._join_outcomes[object_id] = "timed_out"
        self._crashed.append(object_id)
        simulator.trace.record(simulator.engine.now, "crash",
                               object_id=object_id)
        simulator.metrics.increment("crashes")

    def assess_damage(self) -> CrashDamageReport:
        """Count stale references the crashes left in surviving views."""
        simulator = self._simulator
        crashed = set(self._crashed)
        dangling_links = 0
        stale_close = 0
        dangling_back = 0
        stale_voronoi = 0
        affected = set()
        for object_id, node in simulator.nodes.items():
            for link in node.long_links:
                if link.neighbor in crashed:
                    dangling_links += 1
                    affected.add(object_id)
            for close_id in node.close:
                if close_id in crashed:
                    stale_close += 1
                    affected.add(object_id)
            for source, _index in node.back_links:
                if source in crashed:
                    dangling_back += 1
                    affected.add(object_id)
            for neighbor_id in node.voronoi:
                if neighbor_id in crashed:
                    stale_voronoi += 1
                    affected.add(object_id)
        return CrashDamageReport(
            crashed=len(crashed),
            dangling_long_links=dangling_links,
            stale_close_neighbors=stale_close,
            affected_objects=len(affected),
            dangling_back_links=dangling_back,
            stale_voronoi_entries=stale_voronoi,
        )


# ----------------------------------------------------------------------
# heartbeat failure detection
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HeartbeatConfig:
    """Parameters of the liveness subsystem.

    The defaults reproduce the original full-probe detector exactly (the
    parity suite pins this); the two switches below implement the
    steady-state cost rework:

    Attributes
    ----------
    interval:
        Spacing of clock-driven rounds, and the detector's notion of "one
        round" for bookkeeping.
    miss_threshold:
        Consecutive unanswered rounds before a peer is suspected.
    piggyback:
        Piggy-back freshness on ordinary protocol traffic: every delivered
        message counts as proof of life for its sender (and exonerates a
        suspected one), peers heard from within the last ``miss_threshold``
        rounds are not probed at all — evidence that recent cannot support
        a suspicion anyway — and a ``PONG`` is suppressed when the
        recipient's own ``PING`` of the same round is already in flight to
        the sender (crossed probes prove liveness both ways).  On an idle
        overlay probing therefore alternates instead of firing every
        round; on a busy one, edges carrying traffic are never probed.
        Worst-case detection latency grows by the freshness window:
        ``2 · miss_threshold`` rounds instead of ``miss_threshold``.
    sample_fraction:
        Fraction of *long-link/back-link* edges probed per round (Voronoi
        and close neighbours — the structural core — are always probed).
        Sampled edges are probed on a deterministic per-edge stride of
        period ``round(1 / sample_fraction)``, so every edge is covered
        once per period and worst-case detection latency for a dangling
        long link grows by one period.  A peer with a missed heartbeat or
        on the suspect list is always probed, so suspicion in progress
        resolves at full speed.
    adaptive_backoff:
        SWIM-style per-edge backoff on the long-link/back-link tail (the
        structural core — Voronoi and close neighbours — is still probed
        every round): each answered probe of a stable edge doubles that
        edge's stride, up to ``max_stride`` rounds between probes; the
        first missed probe snaps the stride back to 1, so a suspicion in
        progress accumulates misses at full speed and detection/repair
        convergence is unchanged (the parity suite pins this).  On an
        idle overlay every tail edge settles at ``max_stride`` after
        ``log2(max_stride)`` answered probes, bringing steady-state probe
        cost per node per round down to O(Voronoi degree) +
        tail-degree / ``max_stride``.  The price is worst-case detection
        latency on a long-stable edge growing by ``max_stride - 1``
        rounds.  When set it replaces ``sample_fraction`` striding on the
        tail edges; it composes freely with ``piggyback`` (an edge fresh
        from piggybacked traffic is still not probed at all).
    max_stride:
        Stride ceiling (in rounds) of ``adaptive_backoff``.
    """

    interval: float = 8.0
    miss_threshold: int = 2
    piggyback: bool = False
    sample_fraction: float = 1.0
    adaptive_backoff: bool = False
    max_stride: int = 8

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError(f"interval must be positive, got {self.interval}")
        if self.miss_threshold < 1:
            raise ValueError(
                f"miss_threshold must be >= 1, got {self.miss_threshold}")
        if not 0.0 < self.sample_fraction <= 1.0:
            raise ValueError(
                f"sample_fraction must be in (0, 1], got {self.sample_fraction}")
        if self.max_stride < 1:
            raise ValueError(
                f"max_stride must be >= 1, got {self.max_stride}")

    @property
    def sample_period(self) -> int:
        """Stride (in rounds) between probes of one sampled edge."""
        return max(1, int(round(1.0 / self.sample_fraction)))


class HeartbeatDetector:  # simlint: ignore[SIM003] — one per experiment, not per message
    """Periodic ``PING``/``PONG`` probing with per-node suspect lists.

    In the default full-probe configuration every live node probes its
    full reference set (:meth:`ProtocolNode.monitored_peers
    <repro.simulation.protocol.ProtocolNode.monitored_peers>`) each round;
    a peer that misses ``miss_threshold`` consecutive rounds is added to
    the prober's local suspect list.  A :class:`HeartbeatConfig` with
    ``piggyback`` and/or ``sample_fraction`` set trades bounded extra
    detection latency for an order-of-magnitude cheaper steady state (see
    the config docstring).  Two driving modes:

    * :meth:`run_round` — synchronous: send the probes, drain the engine,
      sweep the answers.  The repair protocol and the churn harness drive
      detection this way for bounded, countable rounds.
    * :meth:`start` — clock-driven: rounds are scheduled every ``interval``
      on the virtual clock (each tick sweeps the previous round before
      probing), composing with other scheduled activity such as churn or
      partition windows; :meth:`stop` cancels the remaining ticks.
    """

    #: Multiplier on ``object_id``/``peer`` in the deterministic stride
    #: phase of sampled edges (two odd constants decorrelate the two ids).
    _PHASE_A = 2654435761
    _PHASE_B = 40503

    def __init__(self, simulator: ProtocolSimulator, *,
                 interval: Optional[float] = None,
                 miss_threshold: Optional[int] = None,
                 config: Optional[HeartbeatConfig] = None) -> None:
        if config is None:
            config = HeartbeatConfig(
                interval=interval if interval is not None else 8.0,
                miss_threshold=(miss_threshold if miss_threshold is not None
                                else 2))
        elif interval is not None or miss_threshold is not None:
            raise ValueError(
                "pass either a HeartbeatConfig or keyword shortcuts, not both")
        self.simulator = simulator
        self.config = config
        self.interval = config.interval
        self.miss_threshold = config.miss_threshold
        self.rounds_run = 0
        self._round = 0
        self._outstanding: Dict[int, Set[int]] = {}
        self._scheduled: List = []
        #: Virtual start times of the last two rounds ([-1] is the current
        #: round's; the sweep treats contact during the round as an answer).
        self._round_starts: List[float] = []
        #: Piggyback bookkeeping: round at which each (prober, peer) edge
        #: was last observed fresh.  Freshness is aged in *rounds*, not
        #: virtual time — synchronous rounds on an idle overlay do not
        #: advance the clock, so a time-based window would freeze and a
        #: crash on a quiet overlay would never be probed again.
        self._fresh_round: Dict[Tuple[int, int], int] = {}
        #: Adaptive-backoff bookkeeping (``config.adaptive_backoff``):
        #: current probe stride per (prober, peer) tail edge, and the
        #: round each edge was last probed.  Both age in rounds for the
        #: same frozen-clock reason as ``_fresh_round``.
        self._edge_stride: Dict[Tuple[int, int], int] = {}
        self._edge_last_probe: Dict[Tuple[int, int], int] = {}
        self._era: Optional[int] = None
        if config.piggyback:
            # Stays on for the simulator's lifetime (the measurement
            # harness restores it explicitly); the era keeps this
            # detector's probe bookkeeping from ever being confused with
            # an earlier detector's.
            simulator.piggyback_liveness = True
            simulator.liveness_eras += 1
            self._era = simulator.liveness_eras

    # ------------------------------------------------------------------
    def _edge_due(self, object_id: int, peer: int, period: int) -> bool:
        """Whether the sampled edge ``object_id → peer`` probes this round."""
        phase = (object_id * self._PHASE_A + peer * self._PHASE_B) % period
        return (self._round + phase) % period == 0

    def _send_pings(self) -> int:
        simulator = self.simulator
        config = self.config
        self._round += 1
        self._round_starts.append(simulator.engine.now)
        del self._round_starts[:-2]
        self._outstanding = {}
        pings = 0
        if (not config.piggyback and config.sample_fraction >= 1.0
                and not config.adaptive_backoff):
            # Full-probe mode: byte-identical to the original detector.
            for object_id, node in list(simulator.nodes.items()):
                peers = node.monitored_peers()
                if not peers:
                    continue
                self._outstanding[object_id] = peers
                for peer in sorted(peers):
                    simulator.send(node, peer, "PING", {"round": self._round})
                    pings += 1
            return pings
        piggyback = config.piggyback
        period = config.sample_period
        threshold = config.miss_threshold
        adaptive = config.adaptive_backoff
        current_round = self._round
        # Contact strictly after the previous round began re-marks an edge
        # fresh (strict: with a frozen clock the previous round's start
        # equals the old contact timestamp, which must *not* count again).
        previous_start = (self._round_starts[-2]
                          if len(self._round_starts) >= 2 else None)
        fresh_rounds = self._fresh_round
        for object_id, node in list(simulator.nodes.items()):
            peers = node.monitored_peers()
            if not peers:
                continue
            if period > 1 or adaptive:
                core = set(node.voronoi)
                core.update(node.close)
            missed = node.missed_heartbeats
            suspects = node.suspects
            last_contact = node.last_contact
            probed: Set[int] = set()
            for peer in sorted(peers):
                if peer not in suspects and not missed.get(peer, 0):
                    if piggyback:
                        contact = last_contact.get(peer)
                        if (contact is not None and previous_start is not None
                                and contact > previous_start):
                            # Heard since last round began: fresh now, and
                            # for the next miss_threshold rounds.
                            fresh_rounds[(object_id, peer)] = current_round
                            continue
                        fresh = fresh_rounds.get((object_id, peer))
                        if (fresh is not None
                                and current_round - fresh < threshold):
                            continue  # within the freshness window
                    if adaptive:
                        if peer not in core:
                            edge = (object_id, peer)
                            last = self._edge_last_probe.get(edge)
                            if (last is not None and current_round - last
                                    < self._edge_stride.get(edge, 1)):
                                continue  # stable tail edge, backed off
                    elif (period > 1 and peer not in core
                            and not self._edge_due(object_id, peer, period)):
                        continue  # sampled long/back edge, off-stride round
                probed.add(peer)
                if adaptive:
                    self._edge_last_probe[(object_id, peer)] = current_round
                if piggyback:
                    node.last_ping_round[peer] = (self._era, current_round)
                    simulator.send(node, peer, "PING",
                                   {"round": current_round, "era": self._era})
                else:
                    simulator.send(node, peer, "PING", {"round": current_round})
                pings += 1
            if probed:
                self._outstanding[object_id] = probed
        return pings

    def _sweep(self) -> List[Tuple[int, int]]:
        """Settle the previous round; returns newly created (prober, suspect)."""
        simulator = self.simulator
        piggyback = self.config.piggyback
        adaptive = self.config.adaptive_backoff
        max_stride = self.config.max_stride
        strides = self._edge_stride
        round_started = self._round_starts[-1] if self._round_starts else -math.inf
        new_suspects: List[Tuple[int, int]] = []
        for object_id, peers in self._outstanding.items():
            node = simulator.nodes.get(object_id)
            if node is None:  # the prober itself crashed mid-round
                continue
            for peer in sorted(peers):
                if node.last_heard.get(peer) == self._round:
                    if adaptive:  # answered: the edge is stable, back off
                        edge = (object_id, peer)
                        strides[edge] = min(strides.get(edge, 1) * 2, max_stride)
                    continue
                if (piggyback
                        and node.last_contact.get(peer, -math.inf) >= round_started):
                    if adaptive:
                        edge = (object_id, peer)
                        strides[edge] = min(strides.get(edge, 1) * 2, max_stride)
                    continue  # any message during the round is an answer
                if adaptive:  # missed: probe at full speed until resolved
                    strides[(object_id, peer)] = 1
                misses = node.missed_heartbeats.get(peer, 0) + 1
                node.missed_heartbeats[peer] = misses
                if misses >= self.miss_threshold and peer not in node.suspects:
                    node.suspects.add(peer)
                    node.apply_suspicion({peer})
                    new_suspects.append((object_id, peer))
                    simulator.trace.record(simulator.engine.now, "suspect",
                                           prober=object_id, suspect=peer)
        self._outstanding = {}
        self.rounds_run += 1
        return new_suspects

    # ------------------------------------------------------------------
    def run_round(self) -> List[Tuple[int, int]]:
        """One synchronous round: probe, drain, sweep.

        Returns the (prober, suspect) pairs created by this round.
        """
        self._send_pings()
        self.simulator.engine.run_until_quiescent()
        return self._sweep()

    def run_rounds(self, count: int) -> List[Tuple[int, int]]:
        """Run ``count`` synchronous rounds; returns all new suspicions."""
        created: List[Tuple[int, int]] = []
        for _ in range(count):
            created.extend(self.run_round())
        return created

    # ------------------------------------------------------------------
    def start(self, duration: float) -> int:
        """Schedule clock-driven rounds over the next ``duration`` time units.

        Returns the number of ticks scheduled.  The caller drives the
        engine (``engine.run()`` or ``run_until``); each tick sweeps the
        round before it, and a trailing tick settles the final round.
        """
        engine = self.simulator.engine
        ticks = int(duration / self.interval)
        for index in range(1, ticks + 1):
            event = engine.schedule(index * self.interval, self._tick,
                                    label="heartbeat")
            self._scheduled.append(event)
        # The trailing sweep: answers to the final round's probes arrive
        # within a latency, long before another full interval elapses.
        event = engine.schedule((ticks + 1) * self.interval, self._sweep,
                                label="heartbeat-final")
        self._scheduled.append(event)
        return ticks

    def _tick(self) -> None:
        if self._outstanding:
            self._sweep()
        self._send_pings()

    def stop(self) -> int:
        """Cancel every scheduled tick still pending; returns how many."""
        engine = self.simulator.engine
        cancelled = 0
        for event in self._scheduled:
            if not event.cancelled and event.time > engine.now:
                cancelled += 1
            event.cancel()
        self._scheduled.clear()
        return cancelled

    # ------------------------------------------------------------------
    def suspected(self) -> Dict[int, Set[int]]:
        """Current per-node suspect lists (non-empty ones only)."""
        return {object_id: set(node.suspects)
                for object_id, node in self.simulator.nodes.items()
                if node.suspects}


# ----------------------------------------------------------------------
# the repair protocol
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RepairReport:
    """Outcome of a repair session."""

    rounds: int
    converged: bool
    suspects_processed: int
    reissued_long_links: int
    phase_messages: Dict[str, int] = field(default_factory=dict)
    residual_suspects: int = 0


class RepairProtocol:  # simlint: ignore[SIM003] — one per experiment, not per message
    """Heals surviving views after crashes, in phased message rounds.

    One :meth:`repair_round` runs five drained phases — ``probe`` (every
    suspect receives direct ``PING``s from its suspecter; a live suspect's
    ``PONG`` exonerates it *before* any destructive phase acts on the
    suspicion, which is what keeps lossy heartbeats from amputating live
    nodes), ``notify`` (suspicion gossip to the local neighbourhood; the
    handler scrubs close entries and dangling back registrations),
    ``scrub`` (version-stamped ``VIEW_SCRUB`` refreshes every Voronoi view
    that still references a suspect; the handler also hands mis-held back
    registrations one greedy step towards their owner), ``retarget``
    (dangling long links re-run the routed ``SEARCH_LONG_LINK``) and
    ``close`` (locate-grid-seeded close re-discovery, restoring entries
    dropped on false suspicion) — then garbage-collects suspect entries
    that no local reference supports any more.

    :meth:`repair` iterates rounds until every suspect list drains and a
    final long-link audit (the same kernel consultation ``bulk_join``'s
    hand-over phase uses) finds every link pointing at its target's true
    owner, or ``max_rounds`` is exhausted.  Because nodes keep a suspect
    while any stale reference survives, rounds are idempotent and
    retry-safe under message loss.
    """

    PHASES = ("probe", "notify", "scrub", "retarget", "close", "audit")

    #: Direct probes per suspect in the exoneration phase; with loss
    #: probability ``p`` a live suspect survives all of them (and is
    #: wrongly repaired around) with probability ``(1 - (1-p)²)^PROBES`` —
    #: the final audit phase settles those stragglers.
    PROBES_PER_SUSPECT = 2

    def __init__(self, simulator: ProtocolSimulator, *,
                 detector: Optional[HeartbeatDetector] = None,
                 max_rounds: int = 8,
                 scope: Optional[Set[int]] = None) -> None:
        self.simulator = simulator
        self.detector = detector if detector is not None \
            else HeartbeatDetector(simulator)
        self.max_rounds = max_rounds
        #: Optional id set this repairer confines itself to.  A scoped
        #: repairer (one side of a network split healing against its own
        #: kernel fork) only probes, scrubs, retargets and audits members
        #: of the scope; unscoped behaviour is byte-identical to before
        #: the parameter existed.
        self.scope = frozenset(scope) if scope is not None else None
        self._reissued = 0
        self._reissue_attempts: Dict[Tuple[int, int], int] = {}

    # ------------------------------------------------------------------
    def _members(self) -> List[int]:
        """Live ids this repairer is responsible for, in id order."""
        nodes = self.simulator.nodes
        if self.scope is None:
            return sorted(nodes)
        return sorted(object_id for object_id in self.scope
                      if object_id in nodes)

    def _holders(self) -> List[int]:
        """Live in-scope nodes with a non-empty suspect list, in id order."""
        nodes = self.simulator.nodes
        return [object_id for object_id in self._members()
                if nodes[object_id].suspects]

    def repair_round(self) -> Optional[Dict[str, int]]:
        """Run one phased repair round; ``None`` when nothing is suspected."""
        simulator = self.simulator
        network = simulator.network
        members = self._members()
        holders = self._holders()
        rehabilitation_pending = any(simulator.nodes[object_id].rehabilitated
                                     for object_id in members)
        if not holders and not rehabilitation_pending:
            return None
        phase_messages: Dict[str, int] = {}

        # ---- probe: give every suspect a chance to exonerate itself -----
        # Heartbeat rounds under message loss routinely cross the miss
        # threshold for live peers; acting on such a suspicion would repair
        # *around* a healthy node.  Direct probes first: a live suspect's
        # PONG clears the suspicion (and its miss counter) before any
        # destructive phase runs.
        if holders:
            before = network.messages_sent
            for object_id in holders:
                node = simulator.nodes.get(object_id)
                if node is None:
                    continue
                for suspect in sorted(node.suspects):
                    for _ in range(self.PROBES_PER_SUSPECT):
                        simulator.send(node, suspect, "PING", {"round": 0})
            simulator.engine.run_until_quiescent()
            phase_messages["probe"] = network.messages_sent - before
            holders = self._holders()

        suspected = sorted(set().union(set(), *(
            simulator.nodes[object_id].suspects for object_id in holders)))
        suspected_set = set(suspected)

        if holders:
            # ---- notify: gossip suspicion to the local neighbourhood ----
            before = network.messages_sent
            for object_id in holders:
                node = simulator.nodes.get(object_id)
                if node is None:
                    continue
                recipients = sorted((set(node.voronoi) | set(node.close))
                                    - node.suspects - {object_id})
                payload = {"suspects": sorted(node.suspects)}
                for recipient in recipients:
                    simulator.send(node, recipient, "SUSPECT_NOTIFY", payload)
            simulator.engine.run_until_quiescent()
            phase_messages["notify"] = network.messages_sent - before

            # ---- scrub: refresh Voronoi views referencing a suspect -----
            # The sender — a node that detected the crash — plays the role
            # the departing node plays in Section 3.3: it consults its
            # local topologically consistent Voronoi computation (the
            # shared kernel, exactly as AddVoronoiRegion does) and
            # distributes version-stamped views to the wounded survivors.
            before = network.messages_sent
            kernel = simulator.kernel
            degenerate = len(kernel) <= 8 or not kernel.has_triangulation
            if degenerate:
                affected = [object_id for object_id in members
                            if object_id in kernel]
            else:
                affected = [object_id for object_id in members
                            if object_id in kernel
                            and suspected_set
                            & set(simulator.nodes[object_id].voronoi)]
            version = kernel.version
            for object_id in affected:
                if object_id not in simulator.nodes:
                    continue  # crashed while this phase was being sent
                sender_id = next((h for h in holders
                                  if h != object_id and h in simulator.nodes),
                                 object_id)
                view = {nid: kernel.point(nid)
                        for nid in kernel.neighbors(object_id)}
                simulator.send(simulator.nodes[sender_id], object_id,
                               "VIEW_SCRUB",
                               {"voronoi": view, "version": version,
                                "crashed": suspected})
            simulator.engine.run_until_quiescent()
            phase_messages["scrub"] = network.messages_sent - before

            # ---- retarget: dangling long links re-run the routed search -
            # First attempt per link routes from the requester (the join
            # protocol's own walk); a retry — the previous attempt lost a
            # hop or its reply to the fault plane — escalates to a
            # locate-grid seed next to the target, so each further attempt
            # needs only O(1) deliveries to land.
            before = network.messages_sent
            reissued = 0
            for object_id in members:
                node = simulator.nodes.get(object_id)
                if node is None:
                    continue  # crashed while this phase was being sent
                for index, link in enumerate(node.long_links):
                    if link.neighbor in node.suspects:
                        key = (object_id, index)
                        attempts = self._reissue_attempts.get(key, 0)
                        seed = (None if attempts == 0
                                else simulator.locate.hint(link.target))
                        node.reissue_long_link(index, seed=seed)
                        self._reissue_attempts[key] = attempts + 1
                        reissued += 1
            simulator.engine.run_until_quiescent()
            phase_messages["retarget"] = network.messages_sent - before
            self._reissued += reissued

        # ---- close: grid-seeded re-discovery (false-suspicion healing) --
        # Covers exonerated suspects too: suspicion scrubbed their close
        # entry destructively, and by now the probe phase has already
        # emptied the suspect list that would otherwise select the node.
        before = network.messages_sent
        d_min = simulator.config.effective_d_min
        for object_id in members:
            node = simulator.nodes.get(object_id)
            if node is None:
                continue  # crashed while this phase was being sent
            if not node.suspects and not node.rehabilitated:
                continue
            node.rehabilitated.clear()
            found = False
            for close_id in simulator.locate.within(node.position, d_min):
                if (close_id == object_id or close_id in node.close
                        or close_id not in simulator.nodes):
                    continue
                node.close[close_id] = simulator.nodes[close_id].position
                found = True
                simulator.send(node, close_id, "CLOSE_DECLARE",
                               {"position": node.position})
            if found:
                node.touch_view()
        simulator.engine.run_until_quiescent()
        phase_messages["close"] = network.messages_sent - before

        # ---- GC: drop suspicion no surviving reference supports ---------
        for object_id in members:
            node = simulator.nodes.get(object_id)
            if node is not None:
                node.gc_suspects()
        simulator.trace.record(simulator.engine.now, "repair_round",
                               suspects=len(suspected),
                               messages=sum(phase_messages.values()))
        return phase_messages

    # ------------------------------------------------------------------
    def _audit_long_links(self) -> List[Tuple[int, int]]:
        """(object_id, link_index) pairs not pointing at their target's owner.

        The same kernel consultation ``bulk_join``'s hand-over phase uses
        to settle registrations — the simulator standing in for the
        owner-side audit a deployment would run periodically.
        """
        simulator = self.simulator
        wrong: List[Tuple[int, int]] = []
        for object_id in self._members():
            node = simulator.nodes[object_id]
            for index, link in enumerate(node.long_links):
                if (link.neighbor not in simulator.nodes
                        or link.neighbor not in simulator.kernel):
                    # Dead endpoint — or one outside this repairer's
                    # kernel (a cross-side link under a scoped, split-era
                    # repair): either way the link cannot stand.
                    wrong.append((object_id, index))
                    continue
                owner = simulator.kernel.nearest_vertex(link.target,
                                                        hint=link.neighbor)
                if owner != link.neighbor:
                    wrong.append((object_id, index))
        return wrong

    def _audit_dead_references(self) -> List[Tuple[int, Set[int]]]:
        """(holder, dead peers) for close/back entries serving departed nodes.

        A crash that lands *mid-repair* — after the detection sweep and
        the suspicion-driven scrubbing — can leave close entries and back
        registrations pointing at the victim with no surviving suspicion
        to blame: heartbeats have stopped, so nothing re-suspects a peer
        nobody probes anymore.  Long links of that shape are caught by
        :meth:`_audit_long_links` and stale Voronoi views by
        :meth:`_audit_views`; this pass completes the audit for the two
        reference kinds those do not cover.
        """
        simulator = self.simulator
        scope = self.scope
        stale: List[Tuple[int, Set[int]]] = []
        for object_id in self._members():
            node = simulator.nodes[object_id]
            # Under a scoped (split-era) repair, peers outside the scope
            # are presumed dead by this side even though their node
            # objects survive on the other side of the cut.
            dead = {peer for peer in node.close
                    if peer not in simulator.nodes
                    or (scope is not None and peer not in scope)}
            dead.update(source for source, _index in node.back_links
                        if source not in simulator.nodes
                        or (scope is not None and source not in scope))
            if dead:
                stale.append((object_id, dead))
        return stale

    def _audit_views(self) -> List[int]:
        """Ids whose local Voronoi view disagrees with the shared kernel.

        A view can go stale with *no* suspect involved: a consolidated
        ``REGION_UPDATE`` (or its sender) fed a crash mid-``bulk_join`` or
        mid-churn, so the recipient never heard about a live neighbour.
        Suspicion-driven scrubbing cannot reach those — nothing in the
        view points at a dead node — so convergence needs this explicit
        anti-entropy pass over the same kernel consultation the scrub
        phase uses.
        """
        simulator = self.simulator
        kernel = simulator.kernel
        return [object_id for object_id in self._members()
                if object_id in kernel
                and set(simulator.nodes[object_id].voronoi)
                != set(kernel.neighbors(object_id))]

    def repair(self, max_rounds: Optional[int] = None) -> RepairReport:
        """Iterate repair rounds until the overlay converges (or the cap)."""
        simulator = self.simulator
        cap = max_rounds if max_rounds is not None else self.max_rounds
        totals: Dict[str, int] = {}
        processed: Set[int] = set()
        self._reissued = 0
        self._reissue_attempts = {}
        rounds = 0
        converged = False
        while rounds < cap:
            for object_id in self._members():
                processed.update(simulator.nodes[object_id].suspects)
            result = self.repair_round()
            if result is None:
                wrong = self._audit_long_links()
                stale_views = self._audit_views()
                dead_refs = self._audit_dead_references()
                if not wrong and not stale_views and not dead_refs:
                    converged = True
                    break
                # References serving a departed peer (a crash that landed
                # mid-repair, past the suspicion machinery): the same
                # local scrub suspicion would have applied, message-free.
                for object_id, dead in dead_refs:
                    node = simulator.nodes.get(object_id)
                    if node is None:
                        continue  # crashed while this pass was being sent
                    node.apply_suspicion(dead)
                before = simulator.network.messages_sent
                # Stale views (a lost snapshot with no suspect to blame):
                # re-send the version-stamped kernel truth — the same
                # VIEW_SCRUB the scrub phase uses, with nothing to scrub.
                version = simulator.kernel.version
                for object_id in stale_views:
                    node = simulator.nodes.get(object_id)
                    if node is None:
                        continue  # crashed while this pass was being sent
                    view = {nid: simulator.kernel.point(nid)
                            for nid in simulator.kernel.neighbors(object_id)}
                    simulator.send(node, object_id, "VIEW_SCRUB",
                                   {"voronoi": view, "version": version,
                                    "crashed": []})
                # Mis-held links (repair raced a stale view): re-issue the
                # routed search for exactly those links — grid-seeded, this
                # is the settlement pass — and check again.
                for object_id, index in wrong:
                    node = simulator.nodes.get(object_id)
                    if node is None:
                        continue  # crashed while this pass was being sent
                    seed = simulator.locate.hint(node.long_links[index].target)
                    node.reissue_long_link(index, seed=seed)
                    self._reissued += 1
                simulator.engine.run_until_quiescent()
                totals["audit"] = (totals.get("audit", 0)
                                   + simulator.network.messages_sent - before)
                rounds += 1
                continue
            for phase, count in result.items():
                totals[phase] = totals.get(phase, 0) + count
            rounds += 1
        else:
            converged = (not self._holders() and not self._audit_long_links()
                         and not self._audit_views())
        residual = sum(len(simulator.nodes[object_id].suspects)
                       for object_id in self._members())
        return RepairReport(rounds=rounds, converged=converged,
                            suspects_processed=len(processed),
                            reissued_long_links=self._reissued,
                            phase_messages=totals,
                            residual_suspects=residual)


# ----------------------------------------------------------------------
# the churn + fault harness
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ProtocolChurnReport:
    """One full churn/crash/repair experiment, with per-phase accounting.

    ``steady_state_liveness`` (present when the harness was asked to
    measure it) compares the liveness message cost of heartbeat rounds
    over the healthy overlay under the full-probe baseline and under
    piggy-backed/sampled probing — the steady-state overhead the ROADMAP
    flags, measured on the same population and query traffic.
    """

    objects_built: int
    churn_joins: int
    churn_leaves: int
    crashed: int
    damage: CrashDamageReport
    residual_damage: CrashDamageReport
    detection_rounds: int
    repair: RepairReport
    phase_messages: Dict[str, int]
    verify_problems: int
    converged: bool
    virtual_time: float
    steady_state_liveness: Optional[Dict[str, float]] = None


class ProtocolChurnHarness:  # simlint: ignore[SIM003] — one per experiment, not per message
    """Wires bulk construction, churn, crashes, detection and repair.

    The experiment is reproducible from its seed: the population layout,
    the merged churn arrival process, the crash victims and every fault
    decision derive from seeded random sources, and all activity runs on
    the virtual clock.  ``loss_probability`` applies during the detection
    and repair phases (where retry-safety absorbs it), not during
    construction and churn, whose operations assume reliable delivery —
    the same assumption the paper's join/leave protocols make.

    Churn is scheduled through :class:`ChurnScheduler`.  A scheduled
    join/leave drains the engine re-entrantly (``ProtocolSimulator.join``
    runs its operation to quiescence), which would both nest Python frames
    unboundedly and let a nested leave pick a victim whose departure is
    still in flight — so the harness *defers* churn actions through a
    queue: the scheduled event only enqueues the operation, and the
    outermost action executes the queue sequentially in arrival order.
    """

    _CHURN_WINDOW_EVENTS = 24

    def __init__(self, *, num_objects: int = 1000, seed: int = 7,
                 num_long_links: int = 1,
                 churn_events: int = 48,
                 join_rate: float = 2.0, leave_rate: float = 1.0,
                 crash_fraction: float = 0.1,
                 loss_probability: float = 0.0,
                 heartbeat_interval: float = 8.0,
                 miss_threshold: int = 2,
                 heartbeat: Optional[HeartbeatConfig] = None,
                 max_detection_rounds: int = 8,
                 max_repair_rounds: int = 8,
                 measure_liveness: bool = False,
                 liveness_rounds: int = 4,
                 liveness_queries: int = 25,
                 liveness_sample_fraction: float = 0.25,
                 distribution: Optional[ObjectDistribution] = None,
                 trace: Optional["TraceRecorder"] = None) -> None:
        if not 0.0 <= crash_fraction < 1.0:
            raise ValueError(f"crash_fraction must be in [0, 1), got {crash_fraction}")
        self.num_objects = num_objects
        self.seed = seed
        self.churn_events = churn_events
        self.join_rate = join_rate
        self.leave_rate = leave_rate
        self.crash_fraction = crash_fraction
        self.loss_probability = loss_probability
        self.max_detection_rounds = max_detection_rounds
        self.max_repair_rounds = max_repair_rounds
        self.measure_liveness = measure_liveness
        self.liveness_rounds = liveness_rounds
        self.liveness_queries = liveness_queries
        self.liveness_sample_fraction = liveness_sample_fraction
        self.distribution = distribution or UniformDistribution()
        capacity = 4 * (num_objects + churn_events + 8)
        self.config = VoroNetConfig(n_max=capacity,
                                    num_long_links=num_long_links, seed=seed)
        self.faults = FaultPlane(seed=seed + 1)
        self.simulator = ProtocolSimulator(self.config, seed=seed,
                                           faults=self.faults, trace=trace)
        self.rng = RandomSource(seed + 2)
        if heartbeat is None:
            heartbeat = HeartbeatConfig(interval=heartbeat_interval,
                                        miss_threshold=miss_threshold)
        self.heartbeat_config = heartbeat
        self.detector = HeartbeatDetector(self.simulator, config=heartbeat)
        self.repairer = RepairProtocol(self.simulator, detector=self.detector,
                                       max_rounds=max_repair_rounds)
        self.injector = ProtocolCrashInjector(self.simulator, rng=self.rng)
        self.scheduler: Optional[ChurnScheduler] = None
        self._pending_ops: List[Tuple[str, Optional[Tuple[float, float]]]] = []
        self._draining = False
        self._churn_joins = 0
        self._churn_leaves = 0
        self._churn_skipped = 0

    # ------------------------------------------------------------------
    def _churn_done(self) -> bool:
        # Skipped leaves (population guard) still consume an arrival, so
        # termination stays exact even when the overlay is tiny; only
        # genuinely executed operations are *reported*.
        return (self._churn_joins + self._churn_leaves
                + self._churn_skipped >= self.churn_events)

    def _enqueue_join(self, position) -> None:
        if self._churn_done():
            return
        self._pending_ops.append(("join", position))
        self._drain_ops()

    def _enqueue_leave(self) -> None:
        if self._churn_done():
            return
        self._pending_ops.append(("leave", None))
        self._drain_ops()

    def _drain_ops(self) -> None:
        if self._draining:
            return
        self._draining = True
        try:
            while self._pending_ops:
                # Re-check at execution time: events firing inside a
                # nested engine drain enqueue against stale counts.
                if self._churn_done():
                    self._pending_ops.clear()
                    break
                kind, position = self._pending_ops.pop(0)
                if kind == "join":
                    self.simulator.join(position)
                    self._churn_joins += 1
                else:
                    ids = self.simulator.object_ids()
                    if len(ids) > 8:
                        victim = ids[self.rng.integer(0, len(ids))]
                        self.simulator.leave(victim)
                        self._churn_leaves += 1
                    else:
                        self._churn_skipped += 1
        finally:
            self._draining = False

    def _run_churn(self) -> Tuple[int, int]:
        if self.churn_events <= 0:
            return 0, 0
        scheduler = ChurnScheduler(
            self.simulator.engine,
            join=self._enqueue_join,
            leave=self._enqueue_leave,
            join_rate=self.join_rate, leave_rate=self.leave_rate,
            distribution=self.distribution,
            rng=RandomSource(self.seed + 4),
        )
        self.scheduler = scheduler
        # Arrivals beyond the requested event count are dropped by the
        # enqueue guards (and any still pending are cancelled below), so
        # exactly ``churn_events`` operations execute — the reported
        # counts and phase accounting match the parameter.
        window = self._CHURN_WINDOW_EVENTS / (self.join_rate + self.leave_rate)
        for _ in range(4 * self.churn_events):
            if self._churn_done():
                break
            scheduler.start(window)
            self.simulator.engine.run()
        scheduler.stop()
        return self._churn_joins, self._churn_leaves

    def _reset_liveness_bookkeeping(self) -> None:
        """Clear per-node heartbeat state between liveness measurements."""
        for node in self.simulator.nodes.values():
            node.last_heard.clear()
            node.missed_heartbeats.clear()
            node.last_contact.clear()
            node.last_ping_round.clear()

    def measure_steady_state_liveness(self) -> Dict[str, float]:
        """Liveness message cost over the healthy overlay, both ways.

        Runs ``liveness_rounds`` synchronous heartbeat rounds twice over
        the current (healthy, loss-free) population — once with the
        full-probe baseline and once with piggy-backed freshness plus
        long-link sampling — interleaving ``liveness_queries`` routed
        point queries per round as the "ordinary protocol traffic" the
        piggyback mode feeds on (both phases issue the same queries from
        the same seeded stream, so the comparison is apples to apples).
        Each phase is preceded by one uncounted warm-up round: steady
        state is what's being measured, not the cold start.  Returns the
        PING/PONG counts of both phases and their ratio.
        """
        simulator = self.simulator
        rounds = self.liveness_rounds
        per_round = self.liveness_queries
        query_rng = RandomSource(self.seed + 9)
        # One target batch per (warm-up + measured) round, shared by both
        # phases so routed traffic is identical.
        target_batches = [[query_rng.random_point() for _ in range(per_round)]
                          for _ in range(rounds + 1)]

        def liveness_messages() -> int:
            kinds = simulator.network.sent_by_kind
            return kinds.get("PING", 0) + kinds.get("PONG", 0)

        def run_phase(config: HeartbeatConfig) -> int:
            detector = HeartbeatDetector(simulator, config=config)
            for target in target_batches[0]:  # warm-up round (uncounted)
                simulator.query(target)
            detector.run_round()
            before = liveness_messages()
            for batch in target_batches[1:]:
                for target in batch:
                    simulator.query(target)
                detector.run_round()
            return liveness_messages() - before

        base = HeartbeatConfig(interval=self.heartbeat_config.interval,
                               miss_threshold=self.heartbeat_config.miss_threshold)
        full_probe = run_phase(base)
        self._reset_liveness_bookkeeping()
        piggyback = run_phase(replace(
            base, piggyback=True,
            sample_fraction=self.liveness_sample_fraction))
        self._reset_liveness_bookkeeping()
        # The measurement must not change how the experiment's own
        # detection phase behaves: restore the configured switch.
        simulator.piggyback_liveness = self.heartbeat_config.piggyback
        return {
            "rounds": float(rounds),
            "queries_per_round": float(per_round),
            "sample_fraction": self.liveness_sample_fraction,
            "full_probe_messages": float(full_probe),
            "piggyback_messages": float(piggyback),
            # max(1, ·): a zero-message piggyback phase (degenerate tiny
            # overlay) must not put a non-JSON Infinity in bench records.
            "reduction": full_probe / max(piggyback, 1),
        }

    def _all_damage_suspected(self) -> bool:
        """Does every surviving stale reference sit on a suspect list?"""
        dead = set(self.injector.crashed)
        for node in self.simulator.nodes.values():
            for peer in node.monitored_peers():
                if peer in dead and peer not in node.suspects:
                    return False
        return True

    # ------------------------------------------------------------------
    def run(self) -> ProtocolChurnReport:
        """Run the full experiment; every phase's messages are accounted."""
        simulator = self.simulator
        network = simulator.network
        phase_messages: Dict[str, int] = {}

        # ---- build ------------------------------------------------------
        before = network.messages_sent
        positions = generate_objects(self.distribution, self.num_objects,
                                     RandomSource(self.seed + 3))
        report = simulator.bulk_join(positions)
        phase_messages["build"] = network.messages_sent - before

        # ---- graceful churn --------------------------------------------
        before = network.messages_sent
        churn_joins, churn_leaves = self._run_churn()
        phase_messages["churn"] = network.messages_sent - before

        # ---- steady-state liveness cost (optional, pre-crash) ----------
        steady_state = None
        if self.measure_liveness:
            before = network.messages_sent
            steady_state = self.measure_steady_state_liveness()
            phase_messages["steady_state"] = network.messages_sent - before

        # ---- crash ------------------------------------------------------
        victims = self.injector.crash_random(
            int(round(self.crash_fraction * len(simulator))))
        damage = self.injector.assess_damage()

        # ---- detection --------------------------------------------------
        self.faults.set_loss(self.loss_probability)
        before = network.messages_sent
        detection_rounds = 0
        while detection_rounds < self.max_detection_rounds:
            self.detector.run_round()
            detection_rounds += 1
            if (detection_rounds >= self.detector.miss_threshold
                    and self._all_damage_suspected()):
                break
        phase_messages["detect"] = network.messages_sent - before

        # ---- repair -----------------------------------------------------
        before = network.messages_sent
        repair = self.repairer.repair(self.max_repair_rounds)
        self.faults.set_loss(0.0)
        phase_messages["repair"] = network.messages_sent - before
        for phase, count in repair.phase_messages.items():
            phase_messages[f"repair:{phase}"] = count

        # ---- verification ----------------------------------------------
        problems = simulator.verify_views()
        residual = self.injector.assess_damage()
        converged = (repair.converged and not problems
                     and residual.total_stale_entries == 0)
        simulator.metrics.observe("repair_rounds", repair.rounds)
        simulator.metrics.observe("detection_rounds", detection_rounds)
        return ProtocolChurnReport(
            objects_built=len(report.object_ids),
            churn_joins=churn_joins, churn_leaves=churn_leaves,
            crashed=len(victims),
            damage=damage, residual_damage=residual,
            detection_rounds=detection_rounds,
            repair=repair,
            phase_messages=phase_messages,
            verify_problems=len(problems),
            converged=converged,
            virtual_time=simulator.engine.now,
            steady_state_liveness=steady_state,
        )

"""Message-level fault injection and the self-healing repair protocol.

The paper (Section 3.3) specifies a *graceful* departure protocol — a
leaving object hands its region, its close-neighbour declarations and its
hosted back-long-range registrations to the survivors before withdrawing —
and explicitly leaves crash recovery open.  The oracle-mode
:class:`~repro.simulation.failures.CrashInjector` quantifies that gap by
mutating overlay state directly; this module closes it *at the message
level*: crashes, message loss and partitions are injected into the network
layer, and the survivors detect and repair the damage entirely through
counted protocol messages.

Four pieces compose the subsystem:

* :class:`FaultPlane` — the injection point, consulted by
  :meth:`Network.send <repro.simulation.network.Network.send>` for every
  non-local message.  It drops traffic to/from crashed nodes, cuts
  messages crossing an active partition (a set of ids isolated for a
  window of the virtual clock), and loses or delays messages
  probabilistically from a dedicated seeded random source, so delivery
  decisions are reproducible end to end.
* :class:`ProtocolCrashInjector` — crashes live protocol nodes abruptly.
  Exactly mirroring the oracle injector, the *substrate* is repaired (the
  shared kernel, the locate grid and the network handler table forget the
  victim — the hosting infrastructure notices the peer vanished) while
  every protocol-level hand-over of Section 3.3 is skipped, stranding the
  survivors' local views.
* :class:`HeartbeatDetector` — periodic ``PING``/``PONG`` probing of each
  node's full reference set (Voronoi neighbours, close neighbours,
  long-link endpoints and back-link sources).  A peer missing
  ``miss_threshold`` consecutive rounds lands on the prober's local
  suspect list; a live suspect that later answers a probe is
  exonerated by the ``PONG`` handler, so lost heartbeats self-correct.
* :class:`RepairProtocol` — the crash-mode extension of the Section 3.3
  departure protocol.  Where a graceful leaver *pushes* its state out, the
  repair protocol lets the survivors *pull* the overlay back together in
  phased rounds: suspicion gossip (``SUSPECT_NOTIFY``, which also scrubs
  close entries and dangling back registrations), Voronoi view repair
  (``VIEW_SCRUB``, the survivors' ``RemoveVoronoiRegion`` — each wounded
  view is refreshed from a version-stamped local kernel consultation, and
  mis-held back registrations are handed one greedy step towards their
  target's owner), dangling long-link re-resolution (re-running the routed
  ``SEARCH_LONG_LINK`` machinery, which re-registers the back link and
  answers ``LONG_LINK_ESTABLISHED``), and close re-discovery seeded by the
  simulator's locate grid.  Rounds are retry-safe: a node keeps a suspect
  until no local reference to it survives, so repair messages lost to the
  fault plane are simply re-attempted next round.

:class:`ProtocolChurnHarness` wires the pieces into one reproducible
experiment — bulk-join a population, churn it gracefully, crash a
fraction, detect, repair, verify — with per-phase message accounting; the
``ablation_churn_protocol`` experiment and ``bench_protocol_churn``
benchmark are thin wrappers around it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.config import VoroNetConfig
from repro.simulation.failures import ChurnScheduler, CrashDamageReport
from repro.simulation.network import Message
from repro.simulation.protocol import ProtocolSimulator
from repro.simulation.trace import TraceRecorder
from repro.utils.rng import RandomSource
from repro.workloads.distributions import ObjectDistribution, UniformDistribution
from repro.workloads.generators import generate_objects

__all__ = [
    "FaultDecision",
    "FaultPlane",
    "PartitionSpec",
    "ProtocolCrashInjector",
    "HeartbeatDetector",
    "RepairProtocol",
    "RepairReport",
    "ProtocolChurnHarness",
    "ProtocolChurnReport",
]


# ----------------------------------------------------------------------
# the fault plane
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultDecision:
    """Verdict of the fault plane on one message."""

    deliver: bool
    reason: str = "ok"
    extra_delay: float = 0.0


_DELIVER = FaultDecision(deliver=True)


@dataclass(frozen=True)
class PartitionSpec:
    """One partition: ``members`` are cut off from everyone else in a window.

    The window is half-open on the virtual clock: messages sent at
    ``start <= now < end`` with exactly one endpoint inside ``members``
    are dropped.  Traffic *within* the isolated group (and within its
    complement) flows normally.
    """

    members: frozenset
    start: float
    end: float

    def active(self, now: float) -> bool:
        return self.start <= now < self.end

    def separates(self, sender: int, recipient: int) -> bool:
        return (sender in self.members) != (recipient in self.members)


class FaultPlane:
    """Message-level fault injection for the protocol simulator.

    Attach via ``ProtocolSimulator(..., faults=FaultPlane(seed=...))`` (or
    by setting :attr:`Network.faults <repro.simulation.network.Network.faults>`
    directly).  Every non-local send is then submitted to :meth:`decide`.

    Decision order is fixed — crashed sender, crashed recipient, partition
    cut, probabilistic loss, probabilistic delay — and random draws come
    from a dedicated :class:`~repro.utils.rng.RandomSource`, so for a given
    seed and message sequence the decisions are deterministic (the
    Hypothesis suite pins this).

    Parameters
    ----------
    seed:
        Seed of the loss/delay random source.
    loss_probability:
        Per-message probability of silent loss (applied after crash and
        partition checks).
    delay_probability / delay_range:
        Probability that a delivered message is stretched by an extra
        latency drawn uniformly from ``delay_range``.
    """

    def __init__(self, *, seed: Optional[int] = None,
                 loss_probability: float = 0.0,
                 delay_probability: float = 0.0,
                 delay_range: Tuple[float, float] = (0.0, 0.0)) -> None:
        self._rng = RandomSource(seed)
        self._crashed: Set[int] = set()
        self._partitions: List[PartitionSpec] = []
        self.set_loss(loss_probability)
        self.set_delay(delay_probability, delay_range)
        self.decisions = 0
        self.drops_by_reason: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    def set_loss(self, probability: float) -> None:
        """Set the per-message loss probability."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"loss probability must be in [0, 1], got {probability}")
        self.loss_probability = probability

    def set_delay(self, probability: float,
                  delay_range: Tuple[float, float]) -> None:
        """Set the extra-delay probability and its uniform range."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"delay probability must be in [0, 1], got {probability}")
        low, high = delay_range
        if not 0.0 <= low <= high:
            raise ValueError(f"need 0 <= low <= high, got {delay_range}")
        self.delay_probability = probability
        self.delay_range = (float(low), float(high))

    def crash(self, object_id: int) -> None:
        """Mark a node crashed: every message to or from it is dropped."""
        self._crashed.add(object_id)

    def is_crashed(self, object_id: int) -> bool:
        return object_id in self._crashed

    @property
    def crashed(self) -> frozenset:
        """Ids currently marked crashed."""
        return frozenset(self._crashed)

    def partition(self, members: Sequence[int], start: float,
                  end: float) -> PartitionSpec:
        """Isolate ``members`` from the rest of the overlay on ``[start, end)``."""
        if end < start:
            raise ValueError(f"partition window ends before it starts: "
                             f"[{start}, {end})")
        spec = PartitionSpec(members=frozenset(members), start=float(start),
                             end=float(end))
        self._partitions.append(spec)
        return spec

    def heal_partitions(self) -> int:
        """Drop every partition spec; returns how many were active or pending."""
        count = len(self._partitions)
        self._partitions.clear()
        return count

    # ------------------------------------------------------------------
    # the decision hook
    # ------------------------------------------------------------------
    def decide(self, message: Message, now: float) -> FaultDecision:
        """Fate of one message sent at virtual time ``now``."""
        self.decisions += 1
        if message.sender in self._crashed:
            return self._drop("crashed_sender")
        if message.recipient in self._crashed:
            return self._drop("crashed_recipient")
        if self._partitions:
            # Prune expired windows first: decide() sits on the per-message
            # hot path, and the virtual clock never goes backwards.
            self._partitions = [spec for spec in self._partitions
                                if spec.end > now]
            for spec in self._partitions:
                if spec.active(now) and spec.separates(message.sender,
                                                       message.recipient):
                    return self._drop("partition")
        if self.loss_probability > 0.0 and self._rng.uniform() < self.loss_probability:
            return self._drop("loss")
        if self.delay_probability > 0.0 and self._rng.uniform() < self.delay_probability:
            low, high = self.delay_range
            return FaultDecision(deliver=True, reason="delayed",
                                 extra_delay=self._rng.uniform(low, high))
        return _DELIVER

    def _drop(self, reason: str) -> FaultDecision:
        self.drops_by_reason[reason] = self.drops_by_reason.get(reason, 0) + 1
        return FaultDecision(deliver=False, reason=reason)


# ----------------------------------------------------------------------
# protocol-mode crash injection
# ----------------------------------------------------------------------
class ProtocolCrashInjector:
    """Abruptly removes objects from a message-level overlay.

    The substrate semantics mirror the oracle-mode
    :class:`~repro.simulation.failures.CrashInjector` exactly: the shared
    kernel, the locate grid and the network handler table forget the victim
    (the hosting infrastructure notices the peer vanished), and the fault
    plane starts dropping any traffic addressed to it — but none of the
    Section 3.3 hand-overs run, so every surviving local view that
    referenced the victim is left stale.  :meth:`assess_damage` quantifies
    the wreckage in the same :class:`CrashDamageReport` terms the oracle
    injector uses, which is what the protocol-vs-oracle parity tests pin.
    """

    def __init__(self, simulator: ProtocolSimulator,
                 rng: Optional[RandomSource] = None) -> None:
        self._simulator = simulator
        if simulator.network.faults is None:
            simulator.network.faults = FaultPlane()
        self._rng = rng if rng is not None else RandomSource()
        self._crashed: List[int] = []

    @property
    def crashed(self) -> List[int]:
        """Ids crashed so far, in crash order."""
        return list(self._crashed)

    def crash_random(self, count: int) -> List[int]:
        """Crash ``count`` uniformly random objects; returns their ids."""
        victims: List[int] = []
        for _ in range(count):
            ids = self._simulator.object_ids()
            if len(ids) <= 3:
                break
            victim = ids[self._rng.integer(0, len(ids))]
            self.crash(victim)
            victims.append(victim)
        return victims

    def crash(self, object_id: int) -> None:
        """Crash one object: substrate repaired, protocol hand-overs skipped."""
        simulator = self._simulator
        if object_id not in simulator.nodes:
            raise KeyError(f"unknown object {object_id}")
        simulator.network.faults.crash(object_id)
        simulator.kernel.remove(object_id)
        simulator.locate.discard(object_id)
        simulator.network.unregister(object_id)
        del simulator.nodes[object_id]
        self._crashed.append(object_id)
        simulator.trace.record(simulator.engine.now, "crash",
                               object_id=object_id)
        simulator.metrics.increment("crashes")

    def assess_damage(self) -> CrashDamageReport:
        """Count stale references the crashes left in surviving views."""
        simulator = self._simulator
        crashed = set(self._crashed)
        dangling_links = 0
        stale_close = 0
        dangling_back = 0
        stale_voronoi = 0
        affected = set()
        for object_id, node in simulator.nodes.items():
            for link in node.long_links:
                if link.neighbor in crashed:
                    dangling_links += 1
                    affected.add(object_id)
            for close_id in node.close:
                if close_id in crashed:
                    stale_close += 1
                    affected.add(object_id)
            for source, _index in node.back_links:
                if source in crashed:
                    dangling_back += 1
                    affected.add(object_id)
            for neighbor_id in node.voronoi:
                if neighbor_id in crashed:
                    stale_voronoi += 1
                    affected.add(object_id)
        return CrashDamageReport(
            crashed=len(crashed),
            dangling_long_links=dangling_links,
            stale_close_neighbors=stale_close,
            affected_objects=len(affected),
            dangling_back_links=dangling_back,
            stale_voronoi_entries=stale_voronoi,
        )


# ----------------------------------------------------------------------
# heartbeat failure detection
# ----------------------------------------------------------------------
class HeartbeatDetector:
    """Periodic ``PING``/``PONG`` probing with per-node suspect lists.

    Every live node probes its full reference set
    (:meth:`ProtocolNode.monitored_peers
    <repro.simulation.protocol.ProtocolNode.monitored_peers>`) each round;
    a peer that misses ``miss_threshold`` consecutive rounds is added to
    the prober's local suspect list.  Two driving modes:

    * :meth:`run_round` — synchronous: send the probes, drain the engine,
      sweep the answers.  The repair protocol and the churn harness drive
      detection this way for bounded, countable rounds.
    * :meth:`start` — clock-driven: rounds are scheduled every ``interval``
      on the virtual clock (each tick sweeps the previous round before
      probing), composing with other scheduled activity such as churn or
      partition windows; :meth:`stop` cancels the remaining ticks.
    """

    def __init__(self, simulator: ProtocolSimulator, *,
                 interval: float = 8.0, miss_threshold: int = 2) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if miss_threshold < 1:
            raise ValueError(f"miss_threshold must be >= 1, got {miss_threshold}")
        self.simulator = simulator
        self.interval = interval
        self.miss_threshold = miss_threshold
        self.rounds_run = 0
        self._round = 0
        self._outstanding: Dict[int, Set[int]] = {}
        self._scheduled: List = []

    # ------------------------------------------------------------------
    def _send_pings(self) -> int:
        simulator = self.simulator
        self._round += 1
        self._outstanding = {}
        pings = 0
        for object_id, node in list(simulator.nodes.items()):
            peers = node.monitored_peers()
            if not peers:
                continue
            self._outstanding[object_id] = peers
            for peer in sorted(peers):
                simulator.send(node, peer, "PING", {"round": self._round})
                pings += 1
        return pings

    def _sweep(self) -> List[Tuple[int, int]]:
        """Settle the previous round; returns newly created (prober, suspect)."""
        simulator = self.simulator
        new_suspects: List[Tuple[int, int]] = []
        for object_id, peers in self._outstanding.items():
            node = simulator.nodes.get(object_id)
            if node is None:  # the prober itself crashed mid-round
                continue
            for peer in sorted(peers):
                if node.last_heard.get(peer) == self._round:
                    continue
                misses = node.missed_heartbeats.get(peer, 0) + 1
                node.missed_heartbeats[peer] = misses
                if misses >= self.miss_threshold and peer not in node.suspects:
                    node.suspects.add(peer)
                    node.apply_suspicion({peer})
                    new_suspects.append((object_id, peer))
                    simulator.trace.record(simulator.engine.now, "suspect",
                                           prober=object_id, suspect=peer)
        self._outstanding = {}
        self.rounds_run += 1
        return new_suspects

    # ------------------------------------------------------------------
    def run_round(self) -> List[Tuple[int, int]]:
        """One synchronous round: probe, drain, sweep.

        Returns the (prober, suspect) pairs created by this round.
        """
        self._send_pings()
        self.simulator.engine.run()
        return self._sweep()

    def run_rounds(self, count: int) -> List[Tuple[int, int]]:
        """Run ``count`` synchronous rounds; returns all new suspicions."""
        created: List[Tuple[int, int]] = []
        for _ in range(count):
            created.extend(self.run_round())
        return created

    # ------------------------------------------------------------------
    def start(self, duration: float) -> int:
        """Schedule clock-driven rounds over the next ``duration`` time units.

        Returns the number of ticks scheduled.  The caller drives the
        engine (``engine.run()`` or ``run_until``); each tick sweeps the
        round before it, and a trailing tick settles the final round.
        """
        engine = self.simulator.engine
        ticks = int(duration / self.interval)
        for index in range(1, ticks + 1):
            event = engine.schedule(index * self.interval, self._tick,
                                    label="heartbeat")
            self._scheduled.append(event)
        # The trailing sweep: answers to the final round's probes arrive
        # within a latency, long before another full interval elapses.
        event = engine.schedule((ticks + 1) * self.interval, self._sweep,
                                label="heartbeat-final")
        self._scheduled.append(event)
        return ticks

    def _tick(self) -> None:
        if self._outstanding:
            self._sweep()
        self._send_pings()

    def stop(self) -> int:
        """Cancel every scheduled tick still pending; returns how many."""
        engine = self.simulator.engine
        cancelled = 0
        for event in self._scheduled:
            if not event.cancelled and event.time > engine.now:
                cancelled += 1
            event.cancel()
        self._scheduled.clear()
        return cancelled

    # ------------------------------------------------------------------
    def suspected(self) -> Dict[int, Set[int]]:
        """Current per-node suspect lists (non-empty ones only)."""
        return {object_id: set(node.suspects)
                for object_id, node in self.simulator.nodes.items()
                if node.suspects}


# ----------------------------------------------------------------------
# the repair protocol
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RepairReport:
    """Outcome of a repair session."""

    rounds: int
    converged: bool
    suspects_processed: int
    reissued_long_links: int
    phase_messages: Dict[str, int] = field(default_factory=dict)
    residual_suspects: int = 0


class RepairProtocol:
    """Heals surviving views after crashes, in phased message rounds.

    One :meth:`repair_round` runs five drained phases — ``probe`` (every
    suspect receives direct ``PING``s from its suspecter; a live suspect's
    ``PONG`` exonerates it *before* any destructive phase acts on the
    suspicion, which is what keeps lossy heartbeats from amputating live
    nodes), ``notify`` (suspicion gossip to the local neighbourhood; the
    handler scrubs close entries and dangling back registrations),
    ``scrub`` (version-stamped ``VIEW_SCRUB`` refreshes every Voronoi view
    that still references a suspect; the handler also hands mis-held back
    registrations one greedy step towards their owner), ``retarget``
    (dangling long links re-run the routed ``SEARCH_LONG_LINK``) and
    ``close`` (locate-grid-seeded close re-discovery, restoring entries
    dropped on false suspicion) — then garbage-collects suspect entries
    that no local reference supports any more.

    :meth:`repair` iterates rounds until every suspect list drains and a
    final long-link audit (the same kernel consultation ``bulk_join``'s
    hand-over phase uses) finds every link pointing at its target's true
    owner, or ``max_rounds`` is exhausted.  Because nodes keep a suspect
    while any stale reference survives, rounds are idempotent and
    retry-safe under message loss.
    """

    PHASES = ("probe", "notify", "scrub", "retarget", "close", "audit")

    #: Direct probes per suspect in the exoneration phase; with loss
    #: probability ``p`` a live suspect survives all of them (and is
    #: wrongly repaired around) with probability ``(1 - (1-p)²)^PROBES`` —
    #: the final audit phase settles those stragglers.
    PROBES_PER_SUSPECT = 2

    def __init__(self, simulator: ProtocolSimulator, *,
                 detector: Optional[HeartbeatDetector] = None,
                 max_rounds: int = 8) -> None:
        self.simulator = simulator
        self.detector = detector if detector is not None \
            else HeartbeatDetector(simulator)
        self.max_rounds = max_rounds
        self._reissued = 0
        self._reissue_attempts: Dict[Tuple[int, int], int] = {}

    # ------------------------------------------------------------------
    def _holders(self) -> List[int]:
        """Live nodes with a non-empty suspect list, in id order."""
        return sorted(object_id for object_id, node in self.simulator.nodes.items()
                      if node.suspects)

    def repair_round(self) -> Optional[Dict[str, int]]:
        """Run one phased repair round; ``None`` when nothing is suspected."""
        simulator = self.simulator
        network = simulator.network
        holders = self._holders()
        rehabilitation_pending = any(node.rehabilitated
                                     for node in simulator.nodes.values())
        if not holders and not rehabilitation_pending:
            return None
        phase_messages: Dict[str, int] = {}

        # ---- probe: give every suspect a chance to exonerate itself -----
        # Heartbeat rounds under message loss routinely cross the miss
        # threshold for live peers; acting on such a suspicion would repair
        # *around* a healthy node.  Direct probes first: a live suspect's
        # PONG clears the suspicion (and its miss counter) before any
        # destructive phase runs.
        if holders:
            before = network.messages_sent
            for object_id in holders:
                node = simulator.nodes.get(object_id)
                if node is None:
                    continue
                for suspect in sorted(node.suspects):
                    for _ in range(self.PROBES_PER_SUSPECT):
                        simulator.send(node, suspect, "PING", {"round": 0})
            simulator.engine.run()
            phase_messages["probe"] = network.messages_sent - before
            holders = self._holders()

        suspected = sorted(set().union(set(), *(
            simulator.nodes[object_id].suspects for object_id in holders)))
        suspected_set = set(suspected)

        if holders:
            # ---- notify: gossip suspicion to the local neighbourhood ----
            before = network.messages_sent
            for object_id in holders:
                node = simulator.nodes.get(object_id)
                if node is None:
                    continue
                recipients = sorted((set(node.voronoi) | set(node.close))
                                    - node.suspects - {object_id})
                payload = {"suspects": sorted(node.suspects)}
                for recipient in recipients:
                    simulator.send(node, recipient, "SUSPECT_NOTIFY", payload)
            simulator.engine.run()
            phase_messages["notify"] = network.messages_sent - before

            # ---- scrub: refresh Voronoi views referencing a suspect -----
            # The sender — a node that detected the crash — plays the role
            # the departing node plays in Section 3.3: it consults its
            # local topologically consistent Voronoi computation (the
            # shared kernel, exactly as AddVoronoiRegion does) and
            # distributes version-stamped views to the wounded survivors.
            before = network.messages_sent
            kernel = simulator.kernel
            degenerate = len(kernel) <= 8 or not kernel.has_triangulation
            if degenerate:
                affected = sorted(simulator.nodes)
            else:
                affected = sorted(object_id
                                  for object_id, node in simulator.nodes.items()
                                  if suspected_set & set(node.voronoi))
            version = kernel.version
            for object_id in affected:
                sender_id = next((h for h in holders
                                  if h != object_id and h in simulator.nodes),
                                 object_id)
                view = {nid: kernel.point(nid)
                        for nid in kernel.neighbors(object_id)}
                simulator.send(simulator.nodes[sender_id], object_id,
                               "VIEW_SCRUB",
                               {"voronoi": view, "version": version,
                                "crashed": suspected})
            simulator.engine.run()
            phase_messages["scrub"] = network.messages_sent - before

            # ---- retarget: dangling long links re-run the routed search -
            # First attempt per link routes from the requester (the join
            # protocol's own walk); a retry — the previous attempt lost a
            # hop or its reply to the fault plane — escalates to a
            # locate-grid seed next to the target, so each further attempt
            # needs only O(1) deliveries to land.
            before = network.messages_sent
            reissued = 0
            for object_id in sorted(simulator.nodes):
                node = simulator.nodes[object_id]
                for index, link in enumerate(node.long_links):
                    if link.neighbor in node.suspects:
                        key = (object_id, index)
                        attempts = self._reissue_attempts.get(key, 0)
                        seed = (None if attempts == 0
                                else simulator.locate.hint(link.target))
                        node.reissue_long_link(index, seed=seed)
                        self._reissue_attempts[key] = attempts + 1
                        reissued += 1
            simulator.engine.run()
            phase_messages["retarget"] = network.messages_sent - before
            self._reissued += reissued

        # ---- close: grid-seeded re-discovery (false-suspicion healing) --
        # Covers exonerated suspects too: suspicion scrubbed their close
        # entry destructively, and by now the probe phase has already
        # emptied the suspect list that would otherwise select the node.
        before = network.messages_sent
        d_min = simulator.config.effective_d_min
        for object_id in sorted(simulator.nodes):
            node = simulator.nodes[object_id]
            if not node.suspects and not node.rehabilitated:
                continue
            node.rehabilitated.clear()
            found = False
            for close_id in simulator.locate.within(node.position, d_min):
                if (close_id == object_id or close_id in node.close
                        or close_id not in simulator.nodes):
                    continue
                node.close[close_id] = simulator.nodes[close_id].position
                found = True
                simulator.send(node, close_id, "CLOSE_DECLARE",
                               {"position": node.position})
            if found:
                node.touch_view()
        simulator.engine.run()
        phase_messages["close"] = network.messages_sent - before

        # ---- GC: drop suspicion no surviving reference supports ---------
        for node in simulator.nodes.values():
            node.gc_suspects()
        simulator.trace.record(simulator.engine.now, "repair_round",
                               suspects=len(suspected),
                               messages=sum(phase_messages.values()))
        return phase_messages

    # ------------------------------------------------------------------
    def _audit_long_links(self) -> List[Tuple[int, int]]:
        """(object_id, link_index) pairs not pointing at their target's owner.

        The same kernel consultation ``bulk_join``'s hand-over phase uses
        to settle registrations — the simulator standing in for the
        owner-side audit a deployment would run periodically.
        """
        simulator = self.simulator
        wrong: List[Tuple[int, int]] = []
        for object_id in sorted(simulator.nodes):
            node = simulator.nodes[object_id]
            for index, link in enumerate(node.long_links):
                if link.neighbor not in simulator.nodes:
                    wrong.append((object_id, index))
                    continue
                owner = simulator.kernel.nearest_vertex(link.target,
                                                        hint=link.neighbor)
                if owner != link.neighbor:
                    wrong.append((object_id, index))
        return wrong

    def repair(self, max_rounds: Optional[int] = None) -> RepairReport:
        """Iterate repair rounds until the overlay converges (or the cap)."""
        simulator = self.simulator
        cap = max_rounds if max_rounds is not None else self.max_rounds
        totals: Dict[str, int] = {}
        processed: Set[int] = set()
        self._reissued = 0
        self._reissue_attempts = {}
        rounds = 0
        converged = False
        while rounds < cap:
            for node in simulator.nodes.values():
                processed.update(node.suspects)
            result = self.repair_round()
            if result is None:
                wrong = self._audit_long_links()
                if not wrong:
                    converged = True
                    break
                # Mis-held links (repair raced a stale view): re-issue the
                # routed search for exactly those links — grid-seeded, this
                # is the settlement pass — and check again.
                before = simulator.network.messages_sent
                for object_id, index in wrong:
                    node = simulator.nodes[object_id]
                    seed = simulator.locate.hint(node.long_links[index].target)
                    node.reissue_long_link(index, seed=seed)
                    self._reissued += 1
                simulator.engine.run()
                totals["audit"] = (totals.get("audit", 0)
                                   + simulator.network.messages_sent - before)
                rounds += 1
                continue
            for phase, count in result.items():
                totals[phase] = totals.get(phase, 0) + count
            rounds += 1
        else:
            converged = not self._holders() and not self._audit_long_links()
        residual = sum(len(node.suspects)
                       for node in simulator.nodes.values())
        return RepairReport(rounds=rounds, converged=converged,
                            suspects_processed=len(processed),
                            reissued_long_links=self._reissued,
                            phase_messages=totals,
                            residual_suspects=residual)


# ----------------------------------------------------------------------
# the churn + fault harness
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ProtocolChurnReport:
    """One full churn/crash/repair experiment, with per-phase accounting."""

    objects_built: int
    churn_joins: int
    churn_leaves: int
    crashed: int
    damage: CrashDamageReport
    residual_damage: CrashDamageReport
    detection_rounds: int
    repair: RepairReport
    phase_messages: Dict[str, int]
    verify_problems: int
    converged: bool
    virtual_time: float


class ProtocolChurnHarness:
    """Wires bulk construction, churn, crashes, detection and repair.

    The experiment is reproducible from its seed: the population layout,
    the merged churn arrival process, the crash victims and every fault
    decision derive from seeded random sources, and all activity runs on
    the virtual clock.  ``loss_probability`` applies during the detection
    and repair phases (where retry-safety absorbs it), not during
    construction and churn, whose operations assume reliable delivery —
    the same assumption the paper's join/leave protocols make.

    Churn is scheduled through :class:`ChurnScheduler`.  A scheduled
    join/leave drains the engine re-entrantly (``ProtocolSimulator.join``
    runs its operation to quiescence), which would both nest Python frames
    unboundedly and let a nested leave pick a victim whose departure is
    still in flight — so the harness *defers* churn actions through a
    queue: the scheduled event only enqueues the operation, and the
    outermost action executes the queue sequentially in arrival order.
    """

    _CHURN_WINDOW_EVENTS = 24

    def __init__(self, *, num_objects: int = 1000, seed: int = 7,
                 num_long_links: int = 1,
                 churn_events: int = 48,
                 join_rate: float = 2.0, leave_rate: float = 1.0,
                 crash_fraction: float = 0.1,
                 loss_probability: float = 0.0,
                 heartbeat_interval: float = 8.0,
                 miss_threshold: int = 2,
                 max_detection_rounds: int = 8,
                 max_repair_rounds: int = 8,
                 distribution: Optional[ObjectDistribution] = None,
                 trace: Optional["TraceRecorder"] = None) -> None:
        if not 0.0 <= crash_fraction < 1.0:
            raise ValueError(f"crash_fraction must be in [0, 1), got {crash_fraction}")
        self.num_objects = num_objects
        self.seed = seed
        self.churn_events = churn_events
        self.join_rate = join_rate
        self.leave_rate = leave_rate
        self.crash_fraction = crash_fraction
        self.loss_probability = loss_probability
        self.max_detection_rounds = max_detection_rounds
        self.max_repair_rounds = max_repair_rounds
        self.distribution = distribution or UniformDistribution()
        capacity = 4 * (num_objects + churn_events + 8)
        self.config = VoroNetConfig(n_max=capacity,
                                    num_long_links=num_long_links, seed=seed)
        self.faults = FaultPlane(seed=seed + 1)
        self.simulator = ProtocolSimulator(self.config, seed=seed,
                                           faults=self.faults, trace=trace)
        self.rng = RandomSource(seed + 2)
        self.detector = HeartbeatDetector(self.simulator,
                                          interval=heartbeat_interval,
                                          miss_threshold=miss_threshold)
        self.repairer = RepairProtocol(self.simulator, detector=self.detector,
                                       max_rounds=max_repair_rounds)
        self.injector = ProtocolCrashInjector(self.simulator, rng=self.rng)
        self.scheduler: Optional[ChurnScheduler] = None
        self._pending_ops: List[Tuple[str, Optional[Tuple[float, float]]]] = []
        self._draining = False
        self._churn_joins = 0
        self._churn_leaves = 0
        self._churn_skipped = 0

    # ------------------------------------------------------------------
    def _churn_done(self) -> bool:
        # Skipped leaves (population guard) still consume an arrival, so
        # termination stays exact even when the overlay is tiny; only
        # genuinely executed operations are *reported*.
        return (self._churn_joins + self._churn_leaves
                + self._churn_skipped >= self.churn_events)

    def _enqueue_join(self, position) -> None:
        if self._churn_done():
            return
        self._pending_ops.append(("join", position))
        self._drain_ops()

    def _enqueue_leave(self) -> None:
        if self._churn_done():
            return
        self._pending_ops.append(("leave", None))
        self._drain_ops()

    def _drain_ops(self) -> None:
        if self._draining:
            return
        self._draining = True
        try:
            while self._pending_ops:
                # Re-check at execution time: events firing inside a
                # nested engine drain enqueue against stale counts.
                if self._churn_done():
                    self._pending_ops.clear()
                    break
                kind, position = self._pending_ops.pop(0)
                if kind == "join":
                    self.simulator.join(position)
                    self._churn_joins += 1
                else:
                    ids = self.simulator.object_ids()
                    if len(ids) > 8:
                        victim = ids[self.rng.integer(0, len(ids))]
                        self.simulator.leave(victim)
                        self._churn_leaves += 1
                    else:
                        self._churn_skipped += 1
        finally:
            self._draining = False

    def _run_churn(self) -> Tuple[int, int]:
        if self.churn_events <= 0:
            return 0, 0
        scheduler = ChurnScheduler(
            self.simulator.engine,
            join=self._enqueue_join,
            leave=self._enqueue_leave,
            join_rate=self.join_rate, leave_rate=self.leave_rate,
            distribution=self.distribution,
            rng=RandomSource(self.seed + 4),
        )
        self.scheduler = scheduler
        # Arrivals beyond the requested event count are dropped by the
        # enqueue guards (and any still pending are cancelled below), so
        # exactly ``churn_events`` operations execute — the reported
        # counts and phase accounting match the parameter.
        window = self._CHURN_WINDOW_EVENTS / (self.join_rate + self.leave_rate)
        for _ in range(4 * self.churn_events):
            if self._churn_done():
                break
            scheduler.start(window)
            self.simulator.engine.run()
        scheduler.stop()
        return self._churn_joins, self._churn_leaves

    def _all_damage_suspected(self) -> bool:
        """Does every surviving stale reference sit on a suspect list?"""
        dead = set(self.injector.crashed)
        for node in self.simulator.nodes.values():
            for peer in node.monitored_peers():
                if peer in dead and peer not in node.suspects:
                    return False
        return True

    # ------------------------------------------------------------------
    def run(self) -> ProtocolChurnReport:
        """Run the full experiment; every phase's messages are accounted."""
        simulator = self.simulator
        network = simulator.network
        phase_messages: Dict[str, int] = {}

        # ---- build ------------------------------------------------------
        before = network.messages_sent
        positions = generate_objects(self.distribution, self.num_objects,
                                     RandomSource(self.seed + 3))
        report = simulator.bulk_join(positions)
        phase_messages["build"] = network.messages_sent - before

        # ---- graceful churn --------------------------------------------
        before = network.messages_sent
        churn_joins, churn_leaves = self._run_churn()
        phase_messages["churn"] = network.messages_sent - before

        # ---- crash ------------------------------------------------------
        victims = self.injector.crash_random(
            int(round(self.crash_fraction * len(simulator))))
        damage = self.injector.assess_damage()

        # ---- detection --------------------------------------------------
        self.faults.set_loss(self.loss_probability)
        before = network.messages_sent
        detection_rounds = 0
        while detection_rounds < self.max_detection_rounds:
            self.detector.run_round()
            detection_rounds += 1
            if (detection_rounds >= self.detector.miss_threshold
                    and self._all_damage_suspected()):
                break
        phase_messages["detect"] = network.messages_sent - before

        # ---- repair -----------------------------------------------------
        before = network.messages_sent
        repair = self.repairer.repair(self.max_repair_rounds)
        self.faults.set_loss(0.0)
        phase_messages["repair"] = network.messages_sent - before
        for phase, count in repair.phase_messages.items():
            phase_messages[f"repair:{phase}"] = count

        # ---- verification ----------------------------------------------
        problems = simulator.verify_views()
        residual = self.injector.assess_damage()
        converged = (repair.converged and not problems
                     and residual.total_stale_entries == 0)
        simulator.metrics.observe("repair_rounds", repair.rounds)
        simulator.metrics.observe("detection_rounds", detection_rounds)
        return ProtocolChurnReport(
            objects_built=len(report.object_ids),
            churn_joins=churn_joins, churn_leaves=churn_leaves,
            crashed=len(victims),
            damage=damage, residual_damage=residual,
            detection_rounds=detection_rounds,
            repair=repair,
            phase_messages=phase_messages,
            verify_problems=len(problems),
            converged=converged,
            virtual_time=simulator.engine.now,
        )

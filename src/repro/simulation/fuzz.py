"""Crash-at-any-message fuzzing: deterministic Jepsen-style schedules.

The engine's virtual clock and the seeded :class:`~repro.simulation.faults.
FaultPlane` make every protocol run perfectly replayable; this module
turns that determinism into a correctness harness.  A
:class:`CrashSchedule` names one experiment — *with this seed, crash a
victim at exactly this global message index* — and
:class:`CrashScheduleFuzzer` runs it end to end: build an overlay through
``bulk_join``, churn it with sequential joins and leaves, fire the crash
wherever the index lands (mid-carve, mid-close-discovery, mid-search,
mid-hand-over — the trigger sits inside ``Network.send`` itself), then
drive bounded detect→repair cycles and assert convergence to a clean
``verify_views()`` with no leaked operation watchdogs.

Every failure reproduces from its ``(seed, message_index, victim_rank)``
triple alone: the victim is resolved *by rank over the sorted live ids at
fire time*, so the triple pins the victim without having to know the
overlay's population in advance, and :attr:`FuzzOutcome.fingerprint`
digests the final overlay state so replays can be checked byte-identical.

Two drivers share the harness:

* the Hypothesis stateful suite in ``tests/simulation/test_fuzz.py``,
  which shrinks a failing schedule to a minimal one, and
* the sweep CLI — ``python -m repro.simulation.fuzz --seed S
  --schedules K`` — which derives ``K`` schedules from one master seed,
  re-runs any failure to confirm it, and emits the failing triples (CI's
  ``fuzz-smoke`` job uploads them as an artifact).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import VoroNetConfig
from repro.simulation.faults import (
    FaultPlane,
    HeartbeatDetector,
    ProtocolCrashInjector,
    RepairProtocol,
)
from repro.simulation.protocol import ProtocolSimulator, TimeoutPolicy
from repro.utils.rng import RandomSource
from repro.workloads.distributions import UniformDistribution
from repro.workloads.generators import generate_objects

__all__ = [
    "CrashSchedule",
    "FuzzOutcome",
    "FuzzSweepReport",
    "CrashScheduleFuzzer",
    "main",
]


@dataclass(frozen=True)
class CrashSchedule:
    """One crash experiment: seed, global message index, victim rank.

    ``message_index`` is 1-based over every message the run sends (the
    :meth:`Network.at_message <repro.simulation.network.Network.at_message>`
    contract); ``None`` runs the schedule fault-free — the baseline that
    sizes the index range for sweeps.  ``victim_rank`` selects the victim
    as ``sorted(live ids)[rank % population]`` at the moment the trigger
    fires, so the whole experiment replays from these three values.
    """

    seed: int
    message_index: Optional[int]
    victim_rank: int = 0

    def __post_init__(self) -> None:
        if self.message_index is not None and self.message_index < 1:
            raise ValueError(
                f"message_index must be >= 1, got {self.message_index}")
        if self.victim_rank < 0:
            raise ValueError(
                f"victim_rank must be >= 0, got {self.victim_rank}")

    def as_triple(self) -> Tuple[int, Optional[int], int]:
        """The replay triple ``(seed, message_index, victim_rank)``."""
        return (self.seed, self.message_index, self.victim_rank)


@dataclass(frozen=True)
class FuzzOutcome:
    """Everything one schedule run produced (all derivable from the triple)."""

    schedule: CrashSchedule
    converged: bool
    victim: Optional[int]
    crash_phase: Optional[str]
    messages: int
    virtual_time: float
    verify_problems: int
    residual_stale: int
    pending_operations: Tuple[Tuple[str, int], ...]
    heal_cycles: int
    operation_timeouts: int
    operation_retries: int
    fingerprint: str
    error: Optional[str] = None

    @property
    def failed(self) -> bool:
        """Whether the schedule is a counterexample (crash or divergence)."""
        return self.error is not None or not self.converged

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready summary — the shape the CI artifact stores."""
        return {
            "seed": self.schedule.seed,
            "message_index": self.schedule.message_index,
            "victim_rank": self.schedule.victim_rank,
            "victim": self.victim,
            "crash_phase": self.crash_phase,
            "converged": self.converged,
            "messages": self.messages,
            "virtual_time": self.virtual_time,
            "verify_problems": self.verify_problems,
            "residual_stale": self.residual_stale,
            "pending_operations": [list(key) for key in self.pending_operations],
            "heal_cycles": self.heal_cycles,
            "operation_timeouts": self.operation_timeouts,
            "operation_retries": self.operation_retries,
            "fingerprint": self.fingerprint,
            "error": self.error,
        }


@dataclass(frozen=True)
class FuzzSweepReport:
    """Aggregate of one seeded sweep."""

    master_seed: int
    schedules_run: int
    failures: Tuple[FuzzOutcome, ...]
    crashes_fired: int
    operation_timeouts: int
    operation_retries: int
    outcomes: Tuple[FuzzOutcome, ...] = field(repr=False, default=())

    @property
    def converged(self) -> bool:
        return not self.failures


class CrashScheduleFuzzer:  # simlint: ignore[SIM003] — one per campaign, not per message
    """Runs crash schedules against fresh, fully seeded simulators.

    Parameters size the experiment each schedule runs: ``num_objects``
    bulk-joined to build, ``churn_events`` sequential joins/leaves (two
    joins for every leave, mirroring the churn harness rates), then up to
    ``max_heal_cycles`` detect→repair cycles, each bounded by
    ``max_detection_rounds`` heartbeat rounds and the repairer's
    ``max_repair_rounds``.  ``min_population`` stops the trigger from
    amputating an overlay too small to repair (the schedule records the
    skip; the run still must converge fault-free).
    """

    def __init__(self, *, num_objects: int = 20, churn_events: int = 8,
                 num_long_links: int = 1, min_population: int = 6,
                 max_heal_cycles: int = 3, max_detection_rounds: int = 6,
                 max_repair_rounds: int = 8,
                 timeouts: Optional[TimeoutPolicy] = None) -> None:
        if num_objects < 4:
            raise ValueError(f"num_objects must be >= 4, got {num_objects}")
        if min_population < 4:
            raise ValueError(
                f"min_population must be >= 4, got {min_population}")
        if max_heal_cycles < 1:
            raise ValueError(
                f"max_heal_cycles must be >= 1, got {max_heal_cycles}")
        self.num_objects = num_objects
        self.churn_events = churn_events
        self.num_long_links = num_long_links
        self.min_population = min_population
        self.max_heal_cycles = max_heal_cycles
        self.max_detection_rounds = max_detection_rounds
        self.max_repair_rounds = max_repair_rounds
        self.timeouts = timeouts if timeouts is not None else TimeoutPolicy()

    # ------------------------------------------------------------------
    def baseline_messages(self, seed: int) -> int:
        """Total messages of the fault-free run — the index range for sweeps."""
        return self.run_schedule(
            CrashSchedule(seed=seed, message_index=None)).messages

    @staticmethod
    def _fingerprint(simulator: ProtocolSimulator) -> str:
        """Digest of the final overlay state, for byte-identical replays."""
        digest = hashlib.sha256()
        digest.update(f"{simulator.network.messages_sent}".encode())
        digest.update(f"@{simulator.engine.now!r}".encode())
        for object_id in sorted(simulator.nodes):
            node = simulator.nodes[object_id]
            links = ";".join(
                f"{link.neighbor}@{link.target!r}" for link in node.long_links)
            digest.update(
                f"|{object_id}:{sorted(node.voronoi)}:{sorted(node.close)}"
                f":{links}:{node.view_version}".encode())
        return digest.hexdigest()

    def run_schedule(self, schedule: CrashSchedule) -> FuzzOutcome:
        """Run one schedule end to end; never raises — errors are reported."""
        seed = schedule.seed
        capacity = 4 * (self.num_objects + self.churn_events + 8)
        config = VoroNetConfig(n_max=capacity,
                               num_long_links=self.num_long_links, seed=seed)
        faults = FaultPlane(seed=seed + 1)
        simulator = ProtocolSimulator(config, seed=seed, faults=faults,
                                      timeouts=self.timeouts)
        injector = ProtocolCrashInjector(simulator, rng=RandomSource(seed + 2))
        positions = generate_objects(UniformDistribution(), self.num_objects,
                                     RandomSource(seed + 3))
        churn_rng = RandomSource(seed + 4)

        # The trigger fires synchronously inside Network.send, i.e. in the
        # middle of whatever protocol loop sent the indexed message — the
        # victim dies holding exactly the in-flight state that message
        # represents.  `phase` is a cell so the trigger can record where
        # in the run the axe fell.
        phase: List[str] = ["build"]
        crash_info: Dict[str, object] = {"victim": None, "phase": None}

        def trigger(_message) -> None:
            live = sorted(simulator.nodes)
            if len(live) <= self.min_population:
                return  # too small to amputate; run continues fault-free
            victim = live[schedule.victim_rank % len(live)]
            crash_info["victim"] = victim
            crash_info["phase"] = phase[0]
            injector.crash(victim)

        if schedule.message_index is not None:
            simulator.network.at_message(schedule.message_index, trigger)

        converged = False
        heal_cycles = 0
        error: Optional[str] = None
        verify_problems = -1
        residual_stale = -1
        pending: Tuple[Tuple[str, int], ...] = ()
        try:
            simulator.bulk_join(positions)

            phase[0] = "churn"
            for _ in range(self.churn_events):
                if churn_rng.uniform() < 2.0 / 3.0:
                    simulator.join(churn_rng.random_point())
                else:
                    live = sorted(simulator.nodes)
                    if len(live) > self.min_population:
                        simulator.leave(
                            live[churn_rng.integer(0, len(live))])

            phase[0] = "heal"
            detector = HeartbeatDetector(simulator)
            repairer = RepairProtocol(simulator, detector=detector,
                                      max_rounds=self.max_repair_rounds)
            dead = set(injector.crashed)

            def all_damage_suspected() -> bool:
                for object_id in sorted(simulator.nodes):
                    node = simulator.nodes[object_id]
                    for peer in sorted(node.monitored_peers()):
                        if peer in dead and peer not in node.suspects:
                            return False
                return True

            for _ in range(self.max_heal_cycles):
                heal_cycles += 1
                rounds = 0
                while rounds < self.max_detection_rounds:
                    detector.run_round()
                    rounds += 1
                    if (rounds >= detector.miss_threshold
                            and all_damage_suspected()):
                        break
                repair = repairer.repair()
                verify_problems = len(simulator.verify_views())
                residual_stale = injector.assess_damage().total_stale_entries
                pending = tuple(simulator.pending_operations())
                if (repair.converged and verify_problems == 0
                        and residual_stale == 0 and not pending
                        and simulator.engine.quiescent):
                    converged = True
                    break
        except Exception as exc:  # noqa: BLE001 — counterexamples must be reported, not raised
            error = f"{type(exc).__name__}: {exc}"

        return FuzzOutcome(
            schedule=schedule,
            converged=converged,
            victim=crash_info["victim"],
            crash_phase=crash_info["phase"],
            messages=simulator.network.messages_sent,
            virtual_time=simulator.engine.now,
            verify_problems=verify_problems,
            residual_stale=residual_stale,
            pending_operations=pending,
            heal_cycles=heal_cycles,
            operation_timeouts=int(
                simulator.metrics.counter("operation_timeouts")),
            operation_retries=int(
                simulator.metrics.counter("operation_retries")),
            fingerprint=self._fingerprint(simulator),
            error=error,
        )

    # ------------------------------------------------------------------
    def run_sweep(self, master_seed: int, schedules: int, *,
                  stop_on_failure: bool = False) -> FuzzSweepReport:
        """Derive and run ``schedules`` schedules from one master seed.

        Per schedule the master stream draws a sub-seed, a victim rank and
        a message index uniform over the sub-seed's fault-free message
        count (measured once per sub-seed), so crashes land anywhere from
        the first carve to the last churn hand-over.  Every draw comes
        from the master stream in a fixed order — the whole sweep replays
        from ``master_seed`` alone, and each failure from its own triple.
        """
        if schedules < 1:
            raise ValueError(f"schedules must be >= 1, got {schedules}")
        master = RandomSource(master_seed)
        baselines: Dict[int, int] = {}
        outcomes: List[FuzzOutcome] = []
        for _ in range(schedules):
            sub_seed = master.integer(0, 2**31 - 1)
            rank = master.integer(0, 1 << 16)
            if sub_seed not in baselines:
                baselines[sub_seed] = max(1, self.baseline_messages(sub_seed))
            index = master.integer(1, baselines[sub_seed] + 1)
            outcomes.append(self.run_schedule(
                CrashSchedule(seed=sub_seed, message_index=index,
                              victim_rank=rank)))
            if stop_on_failure and outcomes[-1].failed:
                break
        failures = tuple(o for o in outcomes if o.failed)
        return FuzzSweepReport(
            master_seed=master_seed,
            schedules_run=len(outcomes),
            failures=failures,
            crashes_fired=sum(1 for o in outcomes if o.victim is not None),
            operation_timeouts=sum(o.operation_timeouts for o in outcomes),
            operation_retries=sum(o.operation_retries for o in outcomes),
            outcomes=tuple(outcomes),
        )


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _parse_replay(text: str) -> CrashSchedule:
    """Parse a ``SEED:INDEX:RANK`` replay triple (INDEX may be ``none``)."""
    parts = text.split(":")
    if len(parts) != 3:
        raise argparse.ArgumentTypeError(
            f"expected SEED:INDEX:RANK, got {text!r}")
    seed, index_text, rank = parts
    index = None if index_text.lower() == "none" else int(index_text)
    return CrashSchedule(seed=int(seed), message_index=index,
                         victim_rank=int(rank))


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``python -m repro.simulation.fuzz``; returns exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.simulation.fuzz",
        description="Seeded crash-at-any-message schedule sweeps.")
    parser.add_argument("--seed", type=int, default=0,
                        help="master seed of the sweep (default 0)")
    parser.add_argument("--schedules", type=int, default=50,
                        help="number of schedules to derive (default 50)")
    parser.add_argument("--replay", type=_parse_replay, action="append",
                        metavar="SEED:INDEX:RANK", default=[],
                        help="replay one failing triple instead of sweeping "
                             "(repeatable; INDEX 'none' runs fault-free)")
    parser.add_argument("--objects", type=int, default=20,
                        help="overlay size each schedule builds (default 20)")
    parser.add_argument("--churn", type=int, default=8,
                        help="churn events per schedule (default 8)")
    parser.add_argument("--output", type=str, default=None,
                        help="write failing triples as JSON to this path")
    args = parser.parse_args(argv)

    fuzzer = CrashScheduleFuzzer(num_objects=args.objects,
                                 churn_events=args.churn)
    if args.replay:
        failures = []
        for schedule in args.replay:
            outcome = fuzzer.run_schedule(schedule)
            status = "FAIL" if outcome.failed else "ok"
            print(f"{status} seed={schedule.seed} "
                  f"index={schedule.message_index} "
                  f"rank={schedule.victim_rank} victim={outcome.victim} "
                  f"phase={outcome.crash_phase} "
                  f"fingerprint={outcome.fingerprint[:16]}"
                  + (f" error={outcome.error}" if outcome.error else ""))
            if outcome.failed:
                failures.append(outcome)
    else:
        report = fuzzer.run_sweep(args.seed, args.schedules)
        failures = list(report.failures)
        print(f"{report.schedules_run} schedules from master seed "
              f"{args.seed}: {report.crashes_fired} crashes fired, "
              f"{report.operation_timeouts} operation timeouts, "
              f"{report.operation_retries} retries, "
              f"{len(failures)} failures")
        for outcome in failures:
            triple = outcome.schedule.as_triple()
            print(f"FAIL {triple[0]}:{triple[1]}:{triple[2]} "
                  f"victim={outcome.victim} phase={outcome.crash_phase}"
                  + (f" error={outcome.error}" if outcome.error else ""))

    if args.output and failures:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump([outcome.as_dict() for outcome in failures],
                      handle, indent=2)
        print(f"failing triples written to {args.output}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

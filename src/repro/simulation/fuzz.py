"""Fault-at-any-message fuzzing: deterministic Jepsen-style schedules.

The engine's virtual clock and the seeded :class:`~repro.simulation.faults.
FaultPlane` make every protocol run perfectly replayable; this module
turns that determinism into a correctness harness.  A
:class:`CrashSchedule` names the classic experiment — *with this seed,
crash a victim at exactly this global message index* — and a
:class:`FuzzTrace` generalises it to an ordered sequence of
:class:`CrashEvent`\\ s (multi-crash, victim by rank *or* "whoever sent
the armed message", i.e. the coordinator of the operation in flight) and
:class:`PartitionEvent`\\ s (a partition window opened at an exact
message index).  :class:`CrashScheduleFuzzer` runs either end to end:
build an overlay through ``bulk_join``, churn it with sequential joins
and leaves, fire the faults wherever their indices land (mid-carve,
mid-close-discovery, mid-search, mid-hand-over — the triggers sit inside
``Network.send`` itself), then heal any still-open windows and drive
bounded detect→repair cycles asserting convergence to a clean
``verify_views()`` with no leaked operation watchdogs.

Every failure reproduces from its serialized trace alone
(:meth:`FuzzTrace.as_dict` / :meth:`FuzzTrace.from_dict` — the CI
artifact shape): victims are resolved *at fire time* from the sorted
live ids (by rank) or the armed message's sender (coordinator), and
partition members are the first ``ceil(fraction · n)`` of the sorted
live ids, so no population knowledge is needed in advance.
:attr:`FuzzOutcome.fingerprint` digests the final overlay state so
replays can be checked byte-identical.  Single-crash traces keep the
legacy ``(seed, message_index, victim_rank)`` triple as a short form.

Two drivers share the harness:

* the Hypothesis stateful suite in ``tests/simulation/test_fuzz.py``,
  which shrinks a failing schedule to a minimal one, and
* the sweep CLI — ``python -m repro.simulation.fuzz --seed S
  --schedules K [--partition-fraction F] [--crashes C]`` — which derives
  ``K`` traces from one master seed, re-runs any failure to confirm it,
  and emits the failing traces (CI's ``fuzz-smoke`` job uploads them as
  an artifact; replay with ``--replay-trace artifact.json``).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import math
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.core.config import VoroNetConfig
from repro.simulation.faults import (
    FaultPlane,
    HeartbeatDetector,
    ProtocolCrashInjector,
    RepairProtocol,
)
from repro.simulation.protocol import ProtocolSimulator, TimeoutPolicy
from repro.utils.rng import RandomSource
from repro.workloads.distributions import UniformDistribution
from repro.workloads.generators import generate_objects

__all__ = [
    "CrashSchedule",
    "CrashEvent",
    "PartitionEvent",
    "FuzzTrace",
    "FuzzOutcome",
    "FuzzSweepReport",
    "CrashScheduleFuzzer",
    "main",
]


@dataclass(frozen=True)
class CrashSchedule:
    """One crash experiment: seed, global message index, victim rank.

    ``message_index`` is 1-based over every message the run sends (the
    :meth:`Network.at_message <repro.simulation.network.Network.at_message>`
    contract); ``None`` runs the schedule fault-free — the baseline that
    sizes the index range for sweeps.  ``victim_rank`` selects the victim
    as ``sorted(live ids)[rank % population]`` at the moment the trigger
    fires, so the whole experiment replays from these three values.
    """

    seed: int
    message_index: Optional[int]
    victim_rank: int = 0

    def __post_init__(self) -> None:
        if self.message_index is not None and self.message_index < 1:
            raise ValueError(
                f"message_index must be >= 1, got {self.message_index}")
        if self.victim_rank < 0:
            raise ValueError(
                f"victim_rank must be >= 0, got {self.victim_rank}")

    def as_triple(self) -> Tuple[int, Optional[int], int]:
        """The replay triple ``(seed, message_index, victim_rank)``."""
        return (self.seed, self.message_index, self.victim_rank)


@dataclass(frozen=True)
class CrashEvent:
    """Crash one victim when the ``at_message``-th global send occurs.

    ``victim`` selects the resolution rule at fire time:

    * ``"rank"`` — ``sorted(live ids)[victim_rank % population]``, the
      legacy schedule semantics;
    * ``"coordinator"`` — the *sender of the armed message itself*: the
      node driving whatever multi-message operation that send belongs
      to.  Crashing the coordinator mid-conversation is the adversarial
      case the operation watchdogs exist for; when the sender is not a
      live node (already crashed by an earlier event), the rank rule is
      the fallback, keeping every trace total.
    """

    at_message: int
    victim_rank: int = 0
    victim: str = "rank"

    def __post_init__(self) -> None:
        if self.at_message < 1:
            raise ValueError(
                f"at_message is 1-based, got {self.at_message}")
        if self.victim_rank < 0:
            raise ValueError(
                f"victim_rank must be >= 0, got {self.victim_rank}")
        if self.victim not in ("rank", "coordinator"):
            raise ValueError(
                f"victim must be 'rank' or 'coordinator', got {self.victim!r}")

    def as_dict(self) -> Dict[str, object]:
        return {"kind": "crash", "at_message": self.at_message,
                "victim_rank": self.victim_rank, "victim": self.victim}


@dataclass(frozen=True)
class PartitionEvent:
    """Open a partition window when the ``at_message``-th send occurs.

    At fire time the first ``ceil(fraction · n)`` of the sorted live ids
    (at least one node is always left on each side) are isolated from
    the rest for ``duration`` of virtual time from the current clock —
    the legacy clock-windowed :class:`~repro.simulation.faults.
    PartitionSpec`, so messages crossing the cut feed the fault plane
    and in-flight semantics follow the pinned send-time rule.  The
    harness heals any window still open when the heal phase starts; the
    repair machinery must then converge the overlay exactly as it does
    after crashes.
    """

    at_message: int
    fraction: float = 0.5
    duration: float = 50.0

    def __post_init__(self) -> None:
        if self.at_message < 1:
            raise ValueError(
                f"at_message is 1-based, got {self.at_message}")
        if not 0.0 < self.fraction < 1.0:
            raise ValueError(
                f"fraction must be in (0, 1), got {self.fraction}")
        if self.duration <= 0:
            raise ValueError(
                f"duration must be positive, got {self.duration}")

    def as_dict(self) -> Dict[str, object]:
        return {"kind": "partition", "at_message": self.at_message,
                "fraction": self.fraction, "duration": self.duration}


#: One armed fault of a trace.
FuzzEvent = Union[CrashEvent, PartitionEvent]


@dataclass(frozen=True)
class FuzzTrace:
    """A full replayable experiment: one seed, an ordered fault sequence.

    The serialized form (:meth:`as_dict`/:meth:`from_dict`) is the CI
    failure artifact: everything the run did — which victims died, which
    nodes were cut, in which protocol phase — derives from it, because
    every resolution rule is a pure function of (seed, event list, fire
    time).  A single rank-victim :class:`CrashEvent` round-trips to the
    legacy ``(seed, message_index, victim_rank)`` triple.
    """

    seed: int
    events: Tuple[FuzzEvent, ...] = ()

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready serialization (the replay-trace artifact shape)."""
        return {"seed": self.seed,
                "events": [event.as_dict() for event in self.events]}

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "FuzzTrace":
        """Rebuild a trace from :meth:`as_dict` output."""
        events: List[FuzzEvent] = []
        for raw in data.get("events", []):
            kind = raw.get("kind")
            if kind == "crash":
                events.append(CrashEvent(
                    at_message=int(raw["at_message"]),
                    victim_rank=int(raw.get("victim_rank", 0)),
                    victim=str(raw.get("victim", "rank"))))
            elif kind == "partition":
                events.append(PartitionEvent(
                    at_message=int(raw["at_message"]),
                    fraction=float(raw.get("fraction", 0.5)),
                    duration=float(raw.get("duration", 50.0))))
            else:
                raise ValueError(f"unknown trace event kind: {kind!r}")
        return FuzzTrace(seed=int(data["seed"]), events=tuple(events))

    def as_schedule(self) -> CrashSchedule:
        """The legacy-triple view: first crash event, or fault-free."""
        for event in self.events:
            if isinstance(event, CrashEvent):
                return CrashSchedule(seed=self.seed,
                                     message_index=event.at_message,
                                     victim_rank=event.victim_rank)
        return CrashSchedule(seed=self.seed, message_index=None)


@dataclass(frozen=True)
class FuzzOutcome:
    """Everything one trace run produced (all derivable from the trace).

    ``schedule``/``victim``/``crash_phase`` keep the legacy single-crash
    view (first crash event); ``trace``/``victims``/``phase_marks`` carry
    the full story for multi-fault runs.  ``phase_marks`` records the
    global message count at which each protocol phase began — the sweep
    uses the fault-free run's marks to aim partition windows at the
    churn phase.
    """

    schedule: CrashSchedule
    converged: bool
    victim: Optional[int]
    crash_phase: Optional[str]
    messages: int
    virtual_time: float
    verify_problems: int
    residual_stale: int
    pending_operations: Tuple[Tuple[str, int], ...]
    heal_cycles: int
    operation_timeouts: int
    operation_retries: int
    fingerprint: str
    error: Optional[str] = None
    trace: Optional[FuzzTrace] = None
    victims: Tuple[int, ...] = ()
    partitions_opened: int = 0
    partitions_healed: int = 0
    phase_marks: Tuple[Tuple[str, int], ...] = ()

    @property
    def failed(self) -> bool:
        """Whether the trace is a counterexample (crash or divergence)."""
        return self.error is not None or not self.converged

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready summary — the shape the CI artifact stores."""
        return {
            "seed": self.schedule.seed,
            "message_index": self.schedule.message_index,
            "victim_rank": self.schedule.victim_rank,
            "trace": self.trace.as_dict() if self.trace is not None else None,
            "victim": self.victim,
            "victims": list(self.victims),
            "crash_phase": self.crash_phase,
            "partitions_opened": self.partitions_opened,
            "partitions_healed": self.partitions_healed,
            "phase_marks": [list(mark) for mark in self.phase_marks],
            "converged": self.converged,
            "messages": self.messages,
            "virtual_time": self.virtual_time,
            "verify_problems": self.verify_problems,
            "residual_stale": self.residual_stale,
            "pending_operations": [list(key) for key in self.pending_operations],
            "heal_cycles": self.heal_cycles,
            "operation_timeouts": self.operation_timeouts,
            "operation_retries": self.operation_retries,
            "fingerprint": self.fingerprint,
            "error": self.error,
        }


@dataclass(frozen=True)
class FuzzSweepReport:
    """Aggregate of one seeded sweep."""

    master_seed: int
    schedules_run: int
    failures: Tuple[FuzzOutcome, ...]
    crashes_fired: int
    operation_timeouts: int
    operation_retries: int
    outcomes: Tuple[FuzzOutcome, ...] = field(repr=False, default=())
    partitions_opened: int = 0
    partitions_healed: int = 0

    @property
    def converged(self) -> bool:
        return not self.failures


class CrashScheduleFuzzer:  # simlint: ignore[SIM003] — one per campaign, not per message
    """Runs crash schedules against fresh, fully seeded simulators.

    Parameters size the experiment each schedule runs: ``num_objects``
    bulk-joined to build, ``churn_events`` sequential joins/leaves (two
    joins for every leave, mirroring the churn harness rates), then up to
    ``max_heal_cycles`` detect→repair cycles, each bounded by
    ``max_detection_rounds`` heartbeat rounds and the repairer's
    ``max_repair_rounds``.  ``min_population`` stops the trigger from
    amputating an overlay too small to repair (the schedule records the
    skip; the run still must converge fault-free).
    """

    def __init__(self, *, num_objects: int = 20, churn_events: int = 8,
                 num_long_links: int = 1, min_population: int = 6,
                 max_heal_cycles: int = 3, max_detection_rounds: int = 6,
                 max_repair_rounds: int = 8,
                 timeouts: Optional[TimeoutPolicy] = None) -> None:
        if num_objects < 4:
            raise ValueError(f"num_objects must be >= 4, got {num_objects}")
        if min_population < 4:
            raise ValueError(
                f"min_population must be >= 4, got {min_population}")
        if max_heal_cycles < 1:
            raise ValueError(
                f"max_heal_cycles must be >= 1, got {max_heal_cycles}")
        self.num_objects = num_objects
        self.churn_events = churn_events
        self.num_long_links = num_long_links
        self.min_population = min_population
        self.max_heal_cycles = max_heal_cycles
        self.max_detection_rounds = max_detection_rounds
        self.max_repair_rounds = max_repair_rounds
        self.timeouts = timeouts if timeouts is not None else TimeoutPolicy()

    # ------------------------------------------------------------------
    def baseline_messages(self, seed: int) -> int:
        """Total messages of the fault-free run — the index range for sweeps."""
        return self.run_schedule(
            CrashSchedule(seed=seed, message_index=None)).messages

    @staticmethod
    def _fingerprint(simulator: ProtocolSimulator) -> str:
        """Digest of the final overlay state, for byte-identical replays."""
        digest = hashlib.sha256()
        digest.update(f"{simulator.network.messages_sent}".encode())
        digest.update(f"@{simulator.engine.now!r}".encode())
        for object_id in sorted(simulator.nodes):
            node = simulator.nodes[object_id]
            links = ";".join(
                f"{link.neighbor}@{link.target!r}" for link in node.long_links)
            digest.update(
                f"|{object_id}:{sorted(node.voronoi)}:{sorted(node.close)}"
                f":{links}:{node.view_version}".encode())
        return digest.hexdigest()

    def run_schedule(self, schedule: CrashSchedule) -> FuzzOutcome:
        """Run one legacy single-crash schedule; delegates to :meth:`run_trace`."""
        events: Tuple[FuzzEvent, ...] = ()
        if schedule.message_index is not None:
            events = (CrashEvent(at_message=schedule.message_index,
                                 victim_rank=schedule.victim_rank),)
        return self.run_trace(FuzzTrace(seed=schedule.seed, events=events),
                              _schedule=schedule)

    def run_trace(self, trace: FuzzTrace, *,
                  _schedule: Optional[CrashSchedule] = None) -> FuzzOutcome:
        """Run one trace end to end; never raises — errors are reported."""
        seed = trace.seed
        schedule = _schedule if _schedule is not None else trace.as_schedule()
        capacity = 4 * (self.num_objects + self.churn_events + 8)
        config = VoroNetConfig(n_max=capacity,
                               num_long_links=self.num_long_links, seed=seed)
        faults = FaultPlane(seed=seed + 1)
        simulator = ProtocolSimulator(config, seed=seed, faults=faults,
                                      timeouts=self.timeouts)
        injector = ProtocolCrashInjector(simulator, rng=RandomSource(seed + 2))
        positions = generate_objects(UniformDistribution(), self.num_objects,
                                     RandomSource(seed + 3))
        churn_rng = RandomSource(seed + 4)

        # Triggers fire synchronously inside Network.send, i.e. in the
        # middle of whatever protocol loop sent the indexed message — a
        # crash victim dies holding exactly the in-flight state that
        # message represents, and a partition window opens under it.
        # `phase` is a cell so triggers can record where the axe fell;
        # `phase_marks` records the message count at each phase boundary.
        phase: List[str] = ["build"]
        phase_marks: List[Tuple[str, int]] = [("build", 0)]
        crash_info: Dict[str, object] = {"victim": None, "phase": None}
        victims: List[int] = []
        partitions_opened: List[int] = [0]

        def enter_phase(name: str) -> None:
            phase[0] = name
            phase_marks.append((name, simulator.network.messages_sent))

        def make_crash_trigger(event: CrashEvent):
            def trigger(message) -> None:
                live = sorted(simulator.nodes)
                if len(live) <= self.min_population:
                    return  # too small to amputate; run continues fault-free
                if (event.victim == "coordinator"
                        and message.sender in simulator.nodes):
                    victim = message.sender
                else:
                    victim = live[event.victim_rank % len(live)]
                if crash_info["victim"] is None:
                    crash_info["victim"] = victim
                    crash_info["phase"] = phase[0]
                victims.append(victim)
                injector.crash(victim)
            return trigger

        def make_partition_trigger(event: PartitionEvent):
            def trigger(_message) -> None:
                live = sorted(simulator.nodes)
                if len(live) < 2:
                    return  # nothing to cut
                count = max(1, math.ceil(len(live) * event.fraction))
                members = live[:min(count, len(live) - 1)]
                now = simulator.engine.now
                faults.partition(members, now, now + event.duration)
                partitions_opened[0] += 1
            return trigger

        for event in trace.events:
            if isinstance(event, CrashEvent):
                simulator.network.at_message(event.at_message,
                                             make_crash_trigger(event))
            else:
                simulator.network.at_message(event.at_message,
                                             make_partition_trigger(event))

        converged = False
        heal_cycles = 0
        partitions_healed = 0
        error: Optional[str] = None
        verify_problems = -1
        residual_stale = -1
        pending: Tuple[Tuple[str, int], ...] = ()
        try:
            simulator.bulk_join(positions)

            enter_phase("churn")
            for _ in range(self.churn_events):
                if churn_rng.uniform() < 2.0 / 3.0:
                    simulator.join(churn_rng.random_point())
                else:
                    live = sorted(simulator.nodes)
                    if len(live) > self.min_population:
                        simulator.leave(
                            live[churn_rng.integer(0, len(live))])

            enter_phase("heal")
            detector = HeartbeatDetector(simulator)
            repairer = RepairProtocol(simulator, detector=detector,
                                      max_rounds=self.max_repair_rounds)
            dead = set(injector.crashed)

            def all_damage_suspected() -> bool:
                for object_id in sorted(simulator.nodes):
                    node = simulator.nodes[object_id]
                    for peer in sorted(node.monitored_peers()):
                        if peer in dead and peer not in node.suspects:
                            return False
                return True

            for _ in range(self.max_heal_cycles):
                heal_cycles += 1
                # Windows still open are closed at each cycle boundary:
                # the experiment asserts *post-partition* convergence, and
                # a window opened by a late-armed event (even by the heal
                # phase's own messages) must not leave the cut standing
                # for the remaining cycles to diverge against.
                partitions_healed += faults.heal_partitions()
                rounds = 0
                while rounds < self.max_detection_rounds:
                    detector.run_round()
                    rounds += 1
                    if (rounds >= detector.miss_threshold
                            and all_damage_suspected()):
                        break
                repair = repairer.repair()
                verify_problems = len(simulator.verify_views())
                residual_stale = injector.assess_damage().total_stale_entries
                pending = tuple(simulator.pending_operations())
                if (repair.converged and verify_problems == 0
                        and residual_stale == 0 and not pending
                        and simulator.engine.quiescent):
                    converged = True
                    break
        except Exception as exc:  # noqa: BLE001 — counterexamples must be reported, not raised
            error = f"{type(exc).__name__}: {exc}"

        return FuzzOutcome(
            schedule=schedule,
            converged=converged,
            victim=crash_info["victim"],
            crash_phase=crash_info["phase"],
            messages=simulator.network.messages_sent,
            virtual_time=simulator.engine.now,
            verify_problems=verify_problems,
            residual_stale=residual_stale,
            pending_operations=pending,
            heal_cycles=heal_cycles,
            operation_timeouts=int(
                simulator.metrics.counter("operation_timeouts")),
            operation_retries=int(
                simulator.metrics.counter("operation_retries")),
            fingerprint=self._fingerprint(simulator),
            error=error,
            trace=trace,
            victims=tuple(victims),
            partitions_opened=partitions_opened[0],
            partitions_healed=partitions_healed,
            phase_marks=tuple(phase_marks),
        )

    # ------------------------------------------------------------------
    def run_sweep(self, master_seed: int, schedules: int, *,
                  stop_on_failure: bool = False,
                  crashes: int = 1,
                  partition_fraction: float = 0.0,
                  partition_duration: float = 40.0) -> FuzzSweepReport:
        """Derive and run ``schedules`` traces from one master seed.

        Per trace the master stream draws a sub-seed, a victim rank and a
        message index uniform over the sub-seed's fault-free message
        count (measured once per sub-seed), so crashes land anywhere from
        the first carve to the last churn hand-over.  ``crashes > 1``
        draws that many independent (index, rank) crash events per trace;
        ``partition_fraction > 0`` additionally aims one partition window
        of ``partition_duration`` at the post-build range (the fault-free
        run's phase marks locate the churn phase), so the window overlaps
        live protocol operations rather than the batched construction.
        Every draw comes from the master stream in a fixed order — the
        whole sweep replays from ``master_seed`` alone, and each failure
        from its own serialized trace; with the default ``crashes=1`` and
        no partitions the derived traces are exactly the legacy triples.
        """
        if schedules < 1:
            raise ValueError(f"schedules must be >= 1, got {schedules}")
        if crashes < 1:
            raise ValueError(f"crashes must be >= 1, got {crashes}")
        master = RandomSource(master_seed)
        baselines: Dict[int, FuzzOutcome] = {}
        outcomes: List[FuzzOutcome] = []
        for _ in range(schedules):
            sub_seed = master.integer(0, 2**31 - 1)
            rank = master.integer(0, 1 << 16)
            if sub_seed not in baselines:
                baselines[sub_seed] = self.run_schedule(
                    CrashSchedule(seed=sub_seed, message_index=None))
            baseline = baselines[sub_seed]
            total = max(1, baseline.messages)
            index = master.integer(1, total + 1)
            events: List[FuzzEvent] = [
                CrashEvent(at_message=index, victim_rank=rank)]
            for _extra in range(crashes - 1):
                extra_rank = master.integer(0, 1 << 16)
                extra_index = master.integer(1, total + 1)
                events.append(CrashEvent(at_message=extra_index,
                                         victim_rank=extra_rank))
            if partition_fraction > 0.0:
                churn_start, heal_start = 1, total
                for name, mark in baseline.phase_marks:
                    if name == "churn":
                        churn_start = max(1, mark)
                    elif name == "heal":
                        heal_start = max(1, mark)
                # Aim at [churn_start, heal_start]: the window overlaps
                # live sequential operations, and the heal phase's cycle
                # boundaries are guaranteed to close it.
                part_index = master.integer(
                    churn_start, max(churn_start + 1, heal_start + 1))
                events.append(PartitionEvent(at_message=part_index,
                                             fraction=partition_fraction,
                                             duration=partition_duration))
            outcomes.append(self.run_trace(
                FuzzTrace(seed=sub_seed, events=tuple(events))))
            if stop_on_failure and outcomes[-1].failed:
                break
        failures = tuple(o for o in outcomes if o.failed)
        return FuzzSweepReport(
            master_seed=master_seed,
            schedules_run=len(outcomes),
            failures=failures,
            crashes_fired=sum(len(o.victims) for o in outcomes),
            operation_timeouts=sum(o.operation_timeouts for o in outcomes),
            operation_retries=sum(o.operation_retries for o in outcomes),
            outcomes=tuple(outcomes),
            partitions_opened=sum(o.partitions_opened for o in outcomes),
            partitions_healed=sum(o.partitions_healed for o in outcomes),
        )


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _parse_replay(text: str) -> CrashSchedule:
    """Parse a ``SEED:INDEX:RANK`` replay triple (INDEX may be ``none``)."""
    parts = text.split(":")
    if len(parts) != 3:
        raise argparse.ArgumentTypeError(
            f"expected SEED:INDEX:RANK, got {text!r}")
    seed, index_text, rank = parts
    index = None if index_text.lower() == "none" else int(index_text)
    return CrashSchedule(seed=int(seed), message_index=index,
                         victim_rank=int(rank))


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``python -m repro.simulation.fuzz``; returns exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.simulation.fuzz",
        description="Seeded crash-at-any-message schedule sweeps.")
    parser.add_argument("--seed", type=int, default=0,
                        help="master seed of the sweep (default 0)")
    parser.add_argument("--schedules", type=int, default=50,
                        help="number of schedules to derive (default 50)")
    parser.add_argument("--replay", type=_parse_replay, action="append",
                        metavar="SEED:INDEX:RANK", default=[],
                        help="replay one failing triple instead of sweeping "
                             "(repeatable; INDEX 'none' runs fault-free)")
    parser.add_argument("--replay-trace", type=str, action="append",
                        metavar="PATH", default=[],
                        help="replay serialized traces from a JSON file "
                             "(one trace dict, a list of them, or a failure "
                             "artifact written by --output; repeatable)")
    parser.add_argument("--objects", type=int, default=20,
                        help="overlay size each schedule builds (default 20)")
    parser.add_argument("--churn", type=int, default=8,
                        help="churn events per schedule (default 8)")
    parser.add_argument("--crashes", type=int, default=1,
                        help="crash events per derived trace (default 1)")
    parser.add_argument("--partition-fraction", type=float, default=0.0,
                        help="isolate this fraction of the overlay in one "
                             "message-indexed partition window per trace "
                             "(default 0 = no partitions)")
    parser.add_argument("--partition-duration", type=float, default=40.0,
                        help="virtual-time length of each partition window "
                             "(default 40)")
    parser.add_argument("--output", type=str, default=None,
                        help="write failing traces as JSON to this path")
    args = parser.parse_args(argv)

    fuzzer = CrashScheduleFuzzer(num_objects=args.objects,
                                 churn_events=args.churn)

    def describe(outcome: FuzzOutcome) -> str:
        trace = outcome.trace
        shape = (f"{len(trace.events)} events" if trace is not None
                 and len(trace.events) != 1 else "1 event")
        victims = (f"victims={list(outcome.victims)}"
                   if len(outcome.victims) > 1
                   else f"victim={outcome.victim}")
        return (f"seed={outcome.schedule.seed} {shape} {victims} "
                f"partitions={outcome.partitions_opened} "
                f"phase={outcome.crash_phase} "
                f"fingerprint={outcome.fingerprint[:16]}"
                + (f" error={outcome.error}" if outcome.error else ""))

    if args.replay or args.replay_trace:
        traces: List[FuzzTrace] = []
        for schedule in args.replay:
            events: Tuple[FuzzEvent, ...] = ()
            if schedule.message_index is not None:
                events = (CrashEvent(at_message=schedule.message_index,
                                     victim_rank=schedule.victim_rank),)
            traces.append(FuzzTrace(seed=schedule.seed, events=events))
        for path in args.replay_trace:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
            records = data if isinstance(data, list) else [data]
            for record in records:
                # Failure artifacts nest the trace under "trace"; bare
                # trace dicts carry "seed"/"events" at top level.
                raw = record.get("trace") or record
                traces.append(FuzzTrace.from_dict(raw))
        failures = []
        for trace in traces:
            outcome = fuzzer.run_trace(trace)
            status = "FAIL" if outcome.failed else "ok"
            print(f"{status} {describe(outcome)}")
            if outcome.failed:
                failures.append(outcome)
    else:
        report = fuzzer.run_sweep(args.seed, args.schedules,
                                  crashes=args.crashes,
                                  partition_fraction=args.partition_fraction,
                                  partition_duration=args.partition_duration)
        failures = list(report.failures)
        print(f"{report.schedules_run} schedules from master seed "
              f"{args.seed}: {report.crashes_fired} crashes fired, "
              f"{report.partitions_opened} partitions opened, "
              f"{report.operation_timeouts} operation timeouts, "
              f"{report.operation_retries} retries, "
              f"{len(failures)} failures")
        for outcome in failures:
            print(f"FAIL {describe(outcome)}")

    if args.output and failures:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump([outcome.as_dict() for outcome in failures],
                      handle, indent=2)
        print(f"failing traces written to {args.output}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

"""Metric collection for simulations.

A small registry of named counters and histograms, shared by the protocol
simulator and churn experiments.  Values are plain Python numbers so the
registry can be serialised (e.g. into benchmark JSON) without ceremony.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

import numpy as np

__all__ = ["MetricsRegistry"]


@dataclass
class _Histogram:
    values: List[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        self.values.append(float(value))

    def summary(self) -> Dict[str, float]:
        if not self.values:
            return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0}
        array = np.asarray(self.values)
        return {
            "count": int(array.size),
            "mean": float(array.mean()),
            "p50": float(np.median(array)),
            "p95": float(np.percentile(array, 95)),
            "max": float(array.max()),
        }


class MetricsRegistry:
    """Named counters and histograms.

    Examples
    --------
    >>> metrics = MetricsRegistry()
    >>> metrics.increment("joins")
    >>> metrics.observe("join_messages", 12)
    >>> metrics.counter("joins")
    1
    """

    __slots__ = ("_counters", "_histograms")

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._histograms: Dict[str, _Histogram] = {}

    # ------------------------------------------------------------------
    # counters
    # ------------------------------------------------------------------
    def increment(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to the named counter (creating it at zero)."""
        self._counters[name] = self._counters.get(name, 0.0) + amount

    def counter(self, name: str) -> float:
        """Current value of a counter (0 when never incremented)."""
        return self._counters.get(name, 0.0)

    def counters(self) -> Dict[str, float]:
        """Copy of every counter."""
        return dict(self._counters)

    # ------------------------------------------------------------------
    # histograms
    # ------------------------------------------------------------------
    def observe(self, name: str, value: float) -> None:
        """Record one observation into the named histogram."""
        self._histograms.setdefault(name, _Histogram()).add(value)

    def observe_many(self, name: str, values: Iterable[float]) -> None:
        """Record a batch of observations into the named histogram."""
        histogram = self._histograms.setdefault(name, _Histogram())
        for value in values:
            histogram.add(value)

    def histogram_values(self, name: str) -> List[float]:
        """Raw observations of a histogram (empty when unknown)."""
        histogram = self._histograms.get(name)
        return list(histogram.values) if histogram else []

    def histogram_summary(self, name: str) -> Dict[str, float]:
        """Count/mean/median/p95/max of the named histogram."""
        histogram = self._histograms.get(name)
        return histogram.summary() if histogram else _Histogram().summary()

    # ------------------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other``'s counters and observations into this registry.

        Sweep aggregation: each fuzz schedule runs against a fresh
        simulator (and therefore a fresh registry); the sweep driver
        merges them so retry/timeout totals can be reported across the
        whole campaign.  Counters add; histogram observations concatenate.
        """
        for name, value in other._counters.items():
            self.increment(name, value)
        for name, histogram in other._histograms.items():
            self.observe_many(name, histogram.values)

    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, Dict]:
        """Serialise the whole registry (counters + histogram summaries)."""
        return {
            "counters": self.counters(),
            "histograms": {name: hist.summary()
                           for name, hist in self._histograms.items()},
        }

    def reset(self) -> None:
        """Clear every counter and histogram."""
        self._counters.clear()
        self._histograms.clear()

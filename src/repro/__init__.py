"""VoroNet reproduction — a scalable object network based on Voronoi tessellations.

This package is a full reimplementation of the system described in
*"VoroNet: A scalable object network based on Voronoi tessellations"*
(Beaumont, Kermarrec, Marchal, Rivière — INRIA RR-5833 / IPDPS 2007),
together with every substrate it needs: a robust incremental Delaunay /
Voronoi kernel, a Kleinberg small-world substrate, a discrete-event
message-level simulator, workload generators, baselines and analysis
tooling.

Quick start
-----------
>>> from repro import VoroNet
>>> overlay = VoroNet(n_max=1_000, seed=42)
>>> ids = overlay.insert_many([(0.1, 0.2), (0.8, 0.3), (0.5, 0.9)])
>>> overlay.route(ids[0], ids[2]).owner == ids[2]
True

See ``examples/quickstart.py`` for a guided tour and ``DESIGN.md`` for the
full system inventory.
"""

from repro.core import (
    QueryResult,
    RouteResult,
    VoroNet,
    VoroNetConfig,
    VoroNetError,
    point_query,
    radius_query,
    range_query,
    segment_query,
)
from repro.geometry import DelaunayTriangulation

__version__ = "1.0.0"

__all__ = [
    "VoroNet",
    "VoroNetConfig",
    "VoroNetError",
    "RouteResult",
    "QueryResult",
    "point_query",
    "range_query",
    "radius_query",
    "segment_query",
    "DelaunayTriangulation",
    "__version__",
]

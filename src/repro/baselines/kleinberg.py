"""Kleinberg-grid baseline adapter.

The original Kleinberg construction only applies when objects sit on a
regular grid; this adapter exposes it through the same "insert objects,
route between them, report hops" shape the comparison benchmark uses for
the other systems, mapping grid nodes to unit-square coordinates.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.smallworld.kleinberg_grid import GridRouteResult, KleinbergGrid
from repro.utils.rng import RandomSource

__all__ = ["KleinbergBaseline"]


class KleinbergBaseline:
    """A Kleinberg grid presented as an object network over the unit square.

    Parameters
    ----------
    n:
        Grid side length; the network holds ``n²`` objects at the centres of
        a regular ``n × n`` lattice over the unit square.
    exponent:
        Clustering exponent ``s``; 2 is the navigable value.
    long_links_per_node:
        Long-range contacts per node.
    """

    def __init__(self, n: int, *, exponent: float = 2.0,
                 long_links_per_node: int = 1,
                 rng: Optional[RandomSource] = None) -> None:
        self._grid = KleinbergGrid(n, exponent=exponent,
                                   long_links_per_node=long_links_per_node,
                                   rng=rng or RandomSource())

    @property
    def grid(self) -> KleinbergGrid:
        """The wrapped grid model."""
        return self._grid

    def __len__(self) -> int:
        return self._grid.size

    def object_ids(self) -> List[int]:
        """Objects numbered row-major over the lattice."""
        return list(range(self._grid.size))

    def position_of(self, object_id: int) -> Tuple[float, float]:
        """Unit-square coordinates of a grid object (cell centres)."""
        row, col = divmod(object_id, self._grid.n)
        return ((col + 0.5) / self._grid.n, (row + 0.5) / self._grid.n)

    def route(self, source: int, destination: int, *,
              record_path: bool = False) -> GridRouteResult:
        """Greedy route between two objects (by their row-major ids)."""
        src = divmod(source, self._grid.n)
        dst = divmod(destination, self._grid.n)
        return self._grid.greedy_route(src, dst, record_path=record_path)

    def node_id(self, coord: Tuple[int, int]) -> int:
        """Row-major object id of a grid coordinate (inverse of routing coords)."""
        return coord[0] * self._grid.n + coord[1]

    def mean_route_length(self, num_pairs: int,
                          rng: Optional[RandomSource] = None) -> float:
        """Mean greedy route length over random object pairs."""
        return self._grid.mean_route_length(num_pairs, rng)

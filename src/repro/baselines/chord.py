"""A Chord distributed hash table.

Chord [Stoica et al., SIGCOMM'01] is the canonical hash-based structured
overlay the paper's introduction contrasts VoroNet with: node and key
identifiers are hashes on an ``m``-bit ring, every node keeps ``m`` fingers
(successors at power-of-two distances) and lookups take ``O(log N)`` hops —
but only for *exact* keys.  A range query over an attribute has to be
decomposed into one lookup per discrete value of the range, which is the
behaviour the range-query comparison benchmark quantifies.

The implementation is an in-process simulation: nodes are plain objects,
messages are hop-counted method calls, and the hash is deterministic
(`sha1`) so experiments are reproducible.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["ChordRing", "ChordLookupResult"]


def _sha1_id(value: str, bits: int) -> int:
    """Deterministic ``bits``-bit identifier of a string key."""
    digest = hashlib.sha1(value.encode("utf-8")).digest()
    return int.from_bytes(digest, "big") % (1 << bits)


@dataclass(frozen=True)
class ChordLookupResult:
    """Outcome of one Chord lookup.

    ``path`` lists every node the lookup visited (start node through
    owner, inclusive) when the lookup was asked to record it; ``None``
    otherwise — hop counting alone stays allocation-free for the large
    sweeps.
    """

    key: int
    owner: int
    hops: int
    path: Optional[Tuple[int, ...]] = None

    @property
    def messages(self) -> int:
        return self.hops


class _ChordNode:
    """Internal per-node state: identifier and finger table."""

    __slots__ = ("node_id", "fingers")

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.fingers: List[int] = []


class ChordRing:
    """A Chord ring with ``m``-bit identifiers and full finger tables.

    Parameters
    ----------
    bits:
        Identifier width ``m`` (the ring has ``2^m`` positions).

    Examples
    --------
    >>> ring = ChordRing(bits=16)
    >>> ids = [ring.join(f"node-{i}") for i in range(32)]
    >>> result = ring.lookup_key("object-7")
    >>> result.owner in ids
    True
    """

    def __init__(self, bits: int = 32) -> None:
        if not 4 <= bits <= 160:
            raise ValueError("bits must be between 4 and 160")
        self.bits = bits
        self._nodes: Dict[int, _ChordNode] = {}
        self._sorted_ids: List[int] = []

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def node_ids(self) -> List[int]:
        """Sorted list of node identifiers currently on the ring."""
        return list(self._sorted_ids)

    def join(self, name: str) -> int:
        """Add a node (identified by hashing ``name``) and rebuild fingers."""
        node_id = _sha1_id(name, self.bits)
        while node_id in self._nodes:  # extremely unlikely collision
            node_id = (node_id + 1) % (1 << self.bits)
        self._nodes[node_id] = _ChordNode(node_id)
        index = bisect_left(self._sorted_ids, node_id)
        self._sorted_ids.insert(index, node_id)
        self._rebuild_fingers()
        return node_id

    def bulk_join(self, names: Sequence[str]) -> List[int]:
        """Add a batch of nodes with one finger rebuild at the end.

        :meth:`join` recomputes every finger table after each arrival,
        which is the right model for incremental membership but costs
        ``O(n² · m)`` when building a ring of ``n`` nodes — unusable at
        the serving benchmark's 10⁴-node populations.  The batch form
        inserts every identifier first and rebuilds once; the resulting
        ring is identical to joining the same names one at a time.
        """
        ids: List[int] = []
        for name in names:
            node_id = _sha1_id(name, self.bits)
            while node_id in self._nodes:  # extremely unlikely collision
                node_id = (node_id + 1) % (1 << self.bits)
            self._nodes[node_id] = _ChordNode(node_id)
            ids.append(node_id)
        self._sorted_ids = sorted(self._nodes)
        self._rebuild_fingers()
        return ids

    def leave(self, node_id: int) -> None:
        """Remove a node from the ring and rebuild fingers."""
        if node_id not in self._nodes:
            raise KeyError(f"unknown Chord node {node_id}")
        del self._nodes[node_id]
        self._sorted_ids.remove(node_id)
        self._rebuild_fingers()

    def _rebuild_fingers(self) -> None:
        """Recompute every node's finger table (idealised global knowledge)."""
        for node in self._nodes.values():
            node.fingers = [
                self._successor((node.node_id + (1 << k)) % (1 << self.bits))
                for k in range(self.bits)
            ]

    def _successor(self, key: int) -> int:
        """The node responsible for ``key`` (first node clockwise from it)."""
        if not self._sorted_ids:
            raise RuntimeError("the ring has no nodes")
        index = bisect_left(self._sorted_ids, key)
        if index == len(self._sorted_ids):
            return self._sorted_ids[0]
        return self._sorted_ids[index]

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    @staticmethod
    def _in_interval(value: int, start: int, end: int, modulus: int) -> bool:
        """Whether ``value`` lies in the half-open ring interval ``(start, end]``."""
        value, start, end = value % modulus, start % modulus, end % modulus
        if start < end:
            return start < value <= end
        if start > end:
            return value > start or value <= end
        return True  # full circle

    def lookup(self, key: int, start: Optional[int] = None, *,
               record_path: bool = False) -> ChordLookupResult:
        """Route a lookup for ``key`` using finger tables; count the hops."""
        if not self._sorted_ids:
            raise RuntimeError("the ring has no nodes")
        key %= (1 << self.bits)
        owner = self._successor(key)
        current = start if start in self._nodes else self._sorted_ids[0]
        path: Optional[List[int]] = [current] if record_path else None
        hops = 0
        limit = 4 * self.bits + len(self._nodes)
        while current != owner:
            node = self._nodes[current]
            # Forward to the farthest finger that does not overshoot the key.
            next_hop = None
            for finger in reversed(node.fingers):
                if finger != current and self._in_interval(
                        finger, current, key, 1 << self.bits):
                    next_hop = finger
                    break
            if next_hop is None or next_hop == current:
                next_hop = self._successor((current + 1) % (1 << self.bits))
            current = next_hop
            hops += 1
            if path is not None:
                path.append(current)
            if hops > limit:  # pragma: no cover - defensive
                raise RuntimeError("Chord lookup failed to converge")
        return ChordLookupResult(key=key, owner=owner, hops=hops,
                                 path=tuple(path) if path is not None else None)

    def lookup_key(self, name: str, start: Optional[int] = None, *,
                   record_path: bool = False) -> ChordLookupResult:
        """Lookup of a string key (hashed onto the ring)."""
        return self.lookup(_sha1_id(name, self.bits), start=start,
                           record_path=record_path)

    # ------------------------------------------------------------------
    # range queries (the pain point)
    # ------------------------------------------------------------------
    def range_query_cost(self, values: Sequence[str],
                         start: Optional[int] = None) -> Tuple[int, List[ChordLookupResult]]:
        """Cost of answering a range query by looking up every discrete value.

        Because hashing destroys attribute locality, a DHT can only answer a
        range predicate by enumerating the possible values of the range and
        looking each one up independently.  Returns the total hop count and
        the individual lookups.
        """
        results = [self.lookup_key(value, start=start) for value in values]
        return sum(result.hops for result in results), results

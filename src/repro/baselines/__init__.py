"""Baseline systems VoroNet is compared against.

* :mod:`repro.baselines.chord` — a Chord distributed hash table, the
  archetype of the hash-based structured overlays the introduction
  contrasts VoroNet with (exact-match lookups are cheap, range queries
  degenerate into one lookup per discrete value);
* :mod:`repro.baselines.delaunay_only` — VoroNet without long-range links
  (pure Delaunay greedy routing), isolating the contribution of the
  Kleinberg mechanism;
* :mod:`repro.baselines.kleinberg` — the original grid model, usable only
  for grid-shaped object sets;
* :mod:`repro.baselines.random_graph` — greedy routing over a random
  k-regular graph embedded in the unit square, showing that long links
  without the harmonic distribution do not give navigability.
"""

from repro.baselines.chord import ChordLookupResult, ChordRing
from repro.baselines.delaunay_only import DelaunayOnlyOverlay
from repro.baselines.kleinberg import KleinbergBaseline
from repro.baselines.random_graph import RandomGraphOverlay

__all__ = [
    "ChordRing",
    "ChordLookupResult",
    "DelaunayOnlyOverlay",
    "KleinbergBaseline",
    "RandomGraphOverlay",
]

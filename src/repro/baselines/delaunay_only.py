"""Delaunay-only baseline: VoroNet without long-range links.

Greedy routing over the bare Delaunay graph always succeeds (it converges
to the region owner) but costs ``Θ(√N)`` hops instead of ``O(log² N)``; the
gap between this baseline and full VoroNet is exactly the contribution of
the generalised Kleinberg mechanism.  The class wraps a regular
:class:`~repro.core.overlay.VoroNet` configured with zero long links so the
construction cost is comparable and the object placement identical.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.config import VoroNetConfig
from repro.core.overlay import VoroNet
from repro.core.routing import RouteResult, route_to_object
from repro.geometry.point import Point

__all__ = ["DelaunayOnlyOverlay"]


class DelaunayOnlyOverlay:
    """A VoroNet overlay stripped of its long-range links.

    Parameters
    ----------
    n_max:
        Maximum number of objects (same meaning as for VoroNet).
    seed:
        Seed of the underlying overlay.
    keep_close_neighbors:
        Whether the ``cn(o)`` sets are still maintained (they are part of
        the tessellation machinery, not of the small-world mechanism, so
        they default to on).
    """

    def __init__(self, n_max: int, *, seed: Optional[int] = None,
                 keep_close_neighbors: bool = True) -> None:
        config = VoroNetConfig(
            n_max=n_max,
            num_long_links=0,
            maintain_close_neighbors=keep_close_neighbors,
            seed=seed,
        )
        self._overlay = VoroNet(config)

    @property
    def overlay(self) -> VoroNet:
        """The wrapped overlay (for inspection)."""
        return self._overlay

    def __len__(self) -> int:
        return len(self._overlay)

    def insert(self, position: Point) -> int:
        """Publish an object (identical join procedure, no long links)."""
        return self._overlay.insert(position)

    def insert_many(self, positions: Sequence[Point]) -> List[int]:
        """Publish many objects in sequence."""
        return [self._overlay.insert(p) for p in positions]

    def remove(self, object_id: int) -> None:
        """Withdraw an object."""
        self._overlay.remove(object_id)

    def object_ids(self) -> List[int]:
        """Ids of the published objects."""
        return self._overlay.object_ids()

    def route(self, source: int, destination: int) -> RouteResult:
        """Greedy route between two objects using only Voronoi/close links."""
        return route_to_object(self._overlay, source, destination,
                               use_long_links=False)

"""Random-graph baseline: long links without the harmonic distribution.

Each object is placed in the unit square and connected to ``k`` uniformly
random other objects (plus, optionally, its nearest neighbour to keep the
graph roughly connected).  Greedy geographic routing on such a graph has no
navigability guarantee: it frequently gets stuck in local minima, and when
it does succeed the hop counts are far from poly-logarithmic.  The contrast
with VoroNet demonstrates that it is the *distribution* of the long links —
not their mere existence — that yields navigability, Kleinberg's original
point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from repro.geometry.kdtree import KDTree
from repro.geometry.point import Point, distance_sq
from repro.utils.rng import RandomSource

__all__ = ["RandomGraphOverlay", "RandomGraphRouteResult"]


@dataclass(frozen=True)
class RandomGraphRouteResult:
    """Outcome of one greedy route on the random graph."""

    source: int
    destination: int
    hops: int
    success: bool


class RandomGraphOverlay:
    """Objects in the unit square wired by uniformly random links.

    Parameters
    ----------
    positions:
        Object positions (index = object id).
    links_per_node:
        Number of uniformly random outgoing links per object.
    connect_nearest:
        Also link every object to its nearest neighbour (makes greedy
        failures rarer but does not restore navigability).
    rng:
        Random source for link selection.
    """

    def __init__(self, positions: Sequence[Point], *, links_per_node: int = 7,
                 connect_nearest: bool = True,
                 rng: Optional[RandomSource] = None) -> None:
        if len(positions) < 2:
            raise ValueError("need at least two objects")
        if links_per_node < 1:
            raise ValueError("links_per_node must be at least 1")
        self._positions: List[Point] = [(float(x), float(y)) for x, y in positions]
        self._rng = rng if rng is not None else RandomSource()
        self._adjacency: Dict[int, Set[int]] = {i: set() for i in range(len(positions))}
        self._build(links_per_node, connect_nearest)

    def _build(self, links_per_node: int, connect_nearest: bool) -> None:
        count = len(self._positions)
        generator = self._rng.generator
        for node in range(count):
            targets = generator.choice(count, size=min(links_per_node, count - 1),
                                       replace=False)
            for target in targets:
                target = int(target)
                if target != node:
                    self._adjacency[node].add(target)
                    self._adjacency[target].add(node)
        if connect_nearest:
            tree = KDTree(self._positions)
            for node, position in enumerate(self._positions):
                ranked = tree.k_nearest(position, 2)
                nearest = ranked[1] if ranked[0] == node else ranked[0]
                self._adjacency[node].add(nearest)
                self._adjacency[nearest].add(node)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._positions)

    def object_ids(self) -> List[int]:
        return list(range(len(self._positions)))

    def position_of(self, object_id: int) -> Point:
        return self._positions[object_id]

    def neighbors(self, object_id: int) -> Set[int]:
        return set(self._adjacency[object_id])

    def route(self, source: int, destination: int, *,
              max_hops: Optional[int] = None) -> RandomGraphRouteResult:
        """Greedy geographic routing; fails when stuck in a local minimum."""
        target = self._positions[destination]
        limit = max_hops if max_hops is not None else len(self._positions)
        current = source
        hops = 0
        while current != destination:
            best = current
            best_d = distance_sq(self._positions[current], target)
            for neighbor in self._adjacency[current]:
                d = distance_sq(self._positions[neighbor], target)
                if d < best_d:
                    best, best_d = neighbor, d
            if best == current or hops >= limit:
                return RandomGraphRouteResult(source=source, destination=destination,
                                              hops=hops, success=False)
            current = best
            hops += 1
        return RandomGraphRouteResult(source=source, destination=destination,
                                      hops=hops, success=True)

    def measure(self, num_pairs: int,
                rng: Optional[RandomSource] = None) -> Dict[str, float]:
        """Success rate and mean hops (successful routes only) over random pairs."""
        rng = rng if rng is not None else self._rng
        successes = 0
        total_hops = 0
        for _ in range(num_pairs):
            source = rng.integer(0, len(self._positions))
            destination = rng.integer(0, len(self._positions))
            while destination == source:
                destination = rng.integer(0, len(self._positions))
            result = self.route(source, destination)
            if result.success:
                successes += 1
                total_hops += result.hops
        return {
            "success_rate": successes / num_pairs if num_pairs else 0.0,
            "mean_hops": total_hops / successes if successes else float("nan"),
        }

"""Small argument-validation helpers used across the library.

Keeping these in one place gives consistent error messages and makes the
public API strict about its inputs without repeating boilerplate.
"""

from __future__ import annotations

from typing import Any, Tuple

__all__ = [
    "require",
    "check_positive",
    "check_probability",
    "check_in_unit_square",
]


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with ``message`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def check_positive(value: float, name: str) -> float:
    """Validate that ``value`` is strictly positive and return it."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_probability(value: float, name: str) -> float:
    """Validate that ``value`` lies in [0, 1] and return it."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_in_unit_square(point: Tuple[float, float], name: str = "point",
                         tolerance: float = 0.0) -> Tuple[float, float]:
    """Validate that a 2-D point lies inside the unit square.

    Parameters
    ----------
    point:
        ``(x, y)`` pair.
    name:
        Name used in the error message.
    tolerance:
        Allowed overshoot outside [0, 1] on each axis (long-link *targets*
        may legitimately fall outside the square, per the paper).
    """
    if len(point) != 2:
        raise ValueError(f"{name} must be a 2-D point, got {point!r}")
    x, y = float(point[0]), float(point[1])
    lo, hi = -tolerance, 1.0 + tolerance
    if not (lo <= x <= hi and lo <= y <= hi):
        raise ValueError(
            f"{name} must lie in the unit square (tolerance {tolerance}), got {point!r}"
        )
    return (x, y)


def ensure_type(value: Any, expected: type, name: str) -> Any:
    """Validate ``isinstance(value, expected)`` and return ``value``."""
    if not isinstance(value, expected):
        raise TypeError(f"{name} must be {expected.__name__}, got {type(value).__name__}")
    return value

"""Lightweight logging configuration for the library.

The library never configures the root logger; applications opt in with
:func:`configure_logging`.  Simulation components use module-level loggers
obtained through :func:`get_logger` so that verbose protocol traces can be
enabled selectively (e.g. only ``repro.simulation.protocol``).
"""

from __future__ import annotations

import logging
from typing import Optional

__all__ = ["get_logger", "configure_logging"]

_LIBRARY_ROOT = "repro"
_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"


def get_logger(name: str) -> logging.Logger:
    """Return a logger namespaced under the library root."""
    if not name.startswith(_LIBRARY_ROOT):
        name = f"{_LIBRARY_ROOT}.{name}"
    logger = logging.getLogger(name)
    logger.addHandler(logging.NullHandler())
    return logger


def configure_logging(level: int = logging.INFO,
                      stream=None,
                      fmt: Optional[str] = None) -> logging.Logger:
    """Attach a stream handler to the library root logger.

    Returns the configured root library logger so callers can tweak it
    further.  Safe to call repeatedly; existing stream handlers installed by
    this function are replaced.
    """
    root = logging.getLogger(_LIBRARY_ROOT)
    root.setLevel(level)
    for handler in list(root.handlers):
        if getattr(handler, "_repro_installed", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream)
    handler.setFormatter(logging.Formatter(fmt or _FORMAT))
    handler._repro_installed = True  # type: ignore[attr-defined]
    root.addHandler(handler)
    return root

"""Seeded random-number management.

Every stochastic component of the reproduction (workload generators, the
Choose-LRT long-link sampler, churn traces, routing-pair selection) draws
from a :class:`RandomSource` so that experiments are reproducible end to
end from a single integer seed.  Internally this wraps
:class:`numpy.random.Generator`, which is the vectorisation-friendly RNG
recommended by the scientific-Python guides.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Union

import numpy as np

__all__ = ["RandomSource", "spawn_rng"]

SeedLike = Union[int, None, np.random.Generator, "RandomSource"]


class RandomSource:
    """A reproducible random source built on :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        An integer seed, ``None`` (non-deterministic), an existing numpy
        ``Generator`` or another :class:`RandomSource` (shared stream).

    Examples
    --------
    >>> rng = RandomSource(42)
    >>> 0.0 <= rng.uniform() < 1.0
    True
    """

    __slots__ = ("_generator", "_seed", "_provenance")

    def __init__(self, seed: SeedLike = None) -> None:
        if isinstance(seed, RandomSource):
            self._generator = seed._generator
            self._seed = seed._seed
            self._provenance = seed._provenance
        elif isinstance(seed, np.random.Generator):
            self._generator = seed
            self._seed = None
            self._provenance = "generator"
        else:
            self._generator = np.random.default_rng(seed)
            self._seed = seed
            self._provenance = "unseeded" if seed is None else str(seed)

    # ------------------------------------------------------------------
    # basic draws
    # ------------------------------------------------------------------
    @property
    def generator(self) -> np.random.Generator:
        """The underlying numpy generator (for vectorised bulk draws)."""
        return self._generator

    @property
    def seed(self) -> Optional[int]:
        """The seed this source was constructed with, if known."""
        return self._seed if isinstance(self._seed, int) else None

    @property
    def provenance(self) -> str:
        """How this stream was derived, as an auditable string.

        ``"42"`` for a directly seeded source, ``"42.spawn[1]"`` for the
        second child spawned from it (and so on recursively),
        ``"unseeded"`` for an OS-entropy source, ``"generator"`` when
        wrapping a caller-supplied numpy generator.  Components expose
        this in their reprs so a SIM002 determinism audit can trace every
        stream back to the experiment seed.
        """
        return self._provenance

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """Draw a single float uniformly from ``[low, high)``."""
        return float(self._generator.uniform(low, high))

    def uniform_array(self, low: float, high: float, size: int) -> np.ndarray:
        """Draw ``size`` floats uniformly from ``[low, high)`` as an array."""
        return self._generator.uniform(low, high, size=size)

    def integer(self, low: int, high: int) -> int:
        """Draw a single integer uniformly from ``[low, high)``."""
        return int(self._generator.integers(low, high))

    def integers(self, low: int, high: int, size: int) -> np.ndarray:
        """Draw ``size`` integers uniformly from ``[low, high)``."""
        return self._generator.integers(low, high, size=size)

    def choice(self, seq: Sequence, size: Optional[int] = None, replace: bool = True):
        """Choose uniformly from ``seq`` (scalar if ``size`` is None)."""
        idx = self._generator.choice(len(seq), size=size, replace=replace)
        if size is None:
            return seq[int(idx)]
        return [seq[int(i)] for i in np.atleast_1d(idx)]

    def shuffle(self, seq: list) -> None:
        """Shuffle ``seq`` in place."""
        self._generator.shuffle(seq)

    def exponential(self, scale: float = 1.0) -> float:
        """Draw from an exponential distribution with the given scale."""
        return float(self._generator.exponential(scale))

    def normal(self, loc: float = 0.0, scale: float = 1.0) -> float:
        """Draw from a normal distribution."""
        return float(self._generator.normal(loc, scale))

    def random_point(self) -> tuple:
        """Draw a point uniformly from the unit square."""
        xy = self._generator.random(2)
        return (float(xy[0]), float(xy[1]))

    def random_points(self, n: int) -> np.ndarray:
        """Draw ``n`` points uniformly from the unit square (shape (n, 2))."""
        return self._generator.random((n, 2))

    # ------------------------------------------------------------------
    # stream management
    # ------------------------------------------------------------------
    def spawn(self, n: int = 1) -> "list[RandomSource]":
        """Create ``n`` statistically independent child sources.

        Child streams are derived with numpy's ``spawn`` mechanism so that
        parallel components (e.g. independent simulation replicas) never
        share a stream.
        """
        children = []
        for index, generator in enumerate(self._generator.spawn(n)):
            child = RandomSource(generator)
            # numpy's SeedSequence numbers children across *all* spawn
            # calls on this parent; prefer it so two successive fork()s
            # get distinct provenance strings.
            try:
                index = generator.bit_generator.seed_seq.spawn_key[-1]
            except (AttributeError, IndexError):
                pass
            child._provenance = f"{self._provenance}.spawn[{index}]"
            children.append(child)
        return children

    def fork(self) -> "RandomSource":
        """Convenience wrapper returning a single spawned child."""
        return self.spawn(1)[0]

    def __repr__(self) -> str:
        return f"RandomSource(provenance={self._provenance!r})"


def spawn_rng(seed: SeedLike, count: int) -> Iterator[RandomSource]:
    """Yield ``count`` independent :class:`RandomSource` streams from a seed."""
    root = RandomSource(seed)
    for child in root.spawn(count):
        yield child

"""Shared utilities: seeded RNG management, validation helpers, logging.

These modules are intentionally dependency-light so that every other
subpackage (geometry, simulation, core, ...) can import them without
creating cycles.
"""

from repro.utils.rng import RandomSource, spawn_rng
from repro.utils.validation import (
    check_in_unit_square,
    check_positive,
    check_probability,
    require,
)

__all__ = [
    "RandomSource",
    "spawn_rng",
    "check_in_unit_square",
    "check_positive",
    "check_probability",
    "require",
]

"""Object-placement distributions over the unit square.

The evaluation section of the paper uses two families:

* an **even (uniform)** distribution, and
* **power-law** ("sparse") distributions where "the frequency of the i-th
  most popular value is proportional to ``1/i^α``", with α ∈ {1, 2, 5} for
  low, mid and high skew.

The power-law family is realised here by ranking the cells of a regular
grid over the unit square, assigning them Zipf(α) probabilities in a
shuffled rank order, and drawing object positions by first picking a cell
with those probabilities and then placing the object uniformly inside it —
exactly the "popular attribute values attract many objects" regime the
paper targets, while keeping positions continuous so no two objects
coincide.

Two extra families (clustered Gaussian mixtures and perturbed grids) are
provided for ablation studies.
"""

from __future__ import annotations

import abc
import math
from typing import Dict, List

import numpy as np

from repro.geometry.point import Point
from repro.utils.rng import RandomSource

__all__ = [
    "ObjectDistribution",
    "UniformDistribution",
    "PowerLawDistribution",
    "ClusteredDistribution",
    "GridDistribution",
    "distribution_by_name",
    "paper_distributions",
]


class ObjectDistribution(abc.ABC):
    """Base class of object-placement distributions.

    Subclasses implement :meth:`sample_array`, returning an ``(n, 2)`` array
    of positions strictly inside the unit square.
    """

    #: Short machine-readable name used in benchmark tables.
    name: str = "abstract"

    @abc.abstractmethod
    def sample_array(self, count: int, rng: RandomSource) -> np.ndarray:
        """Draw ``count`` positions as an ``(n, 2)`` float array in ``(0, 1)²``."""

    def sample(self, count: int, rng: RandomSource) -> List[Point]:
        """Draw ``count`` positions as a list of ``(x, y)`` tuples."""
        array = self.sample_array(count, rng)
        return [(float(x), float(y)) for x, y in array]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"

    @staticmethod
    def _clip_open_unit(array: np.ndarray) -> np.ndarray:
        """Clamp positions to the open unit square (avoids exact-boundary ties)."""
        epsilon = 1e-9
        return np.clip(array, epsilon, 1.0 - epsilon)


class UniformDistribution(ObjectDistribution):
    """Positions drawn uniformly at random over the unit square."""

    name = "uniform"

    def sample_array(self, count: int, rng: RandomSource) -> np.ndarray:
        return self._clip_open_unit(rng.generator.random((count, 2)))


class PowerLawDistribution(ObjectDistribution):
    """Zipf-ranked grid-cell distribution (the paper's "sparse" workloads).

    Parameters
    ----------
    alpha:
        Skew exponent; the i-th most popular cell receives probability
        proportional to ``1 / i^alpha``.  The paper uses 1, 2 and 5.
    cells_per_axis:
        Resolution of the ranking grid.  The default (32) gives 1024 ranked
        attribute values; at α = 5 the most popular value already receives
        ~93 % of all objects, i.e. an overdensity of roughly 1000× over
        uniform, which is the "highly sparse" regime the paper evaluates.
    """

    def __init__(self, alpha: float, cells_per_axis: int = 32) -> None:
        if alpha <= 0:
            raise ValueError(f"alpha must be > 0, got {alpha}")
        if cells_per_axis < 2:
            raise ValueError("cells_per_axis must be at least 2")
        self.alpha = float(alpha)
        self.cells_per_axis = int(cells_per_axis)
        self.name = f"powerlaw-a{alpha:g}"

    def sample_array(self, count: int, rng: RandomSource) -> np.ndarray:
        generator = rng.generator
        total_cells = self.cells_per_axis ** 2
        ranks = np.arange(1, total_cells + 1, dtype=np.float64)
        weights = ranks ** (-self.alpha)
        weights /= weights.sum()
        # Shuffle which spatial cell gets which popularity rank so the skew is
        # not spatially correlated with the square's corner.
        cell_order = generator.permutation(total_cells)
        chosen_ranks = generator.choice(total_cells, size=count, p=weights)
        chosen_cells = cell_order[chosen_ranks]
        rows, cols = np.divmod(chosen_cells, self.cells_per_axis)
        jitter = generator.random((count, 2))
        cell = 1.0 / self.cells_per_axis
        xs = (cols + jitter[:, 0]) * cell
        ys = (rows + jitter[:, 1]) * cell
        return self._clip_open_unit(np.column_stack([xs, ys]))


class ClusteredDistribution(ObjectDistribution):
    """Gaussian-mixture clusters (hot spots) over the unit square.

    Not part of the paper's evaluation; used by the close-neighbour ablation
    (ABL1) to produce extremely dense local clusters.
    """

    def __init__(self, num_clusters: int = 8, spread: float = 0.02,
                 background_fraction: float = 0.05) -> None:
        if num_clusters < 1:
            raise ValueError("num_clusters must be at least 1")
        if spread <= 0:
            raise ValueError("spread must be > 0")
        if not 0.0 <= background_fraction <= 1.0:
            raise ValueError("background_fraction must be in [0, 1]")
        self.num_clusters = num_clusters
        self.spread = spread
        self.background_fraction = background_fraction
        self.name = f"clustered-k{num_clusters}"

    def sample_array(self, count: int, rng: RandomSource) -> np.ndarray:
        generator = rng.generator
        centers = generator.uniform(0.1, 0.9, size=(self.num_clusters, 2))
        assignment = generator.integers(0, self.num_clusters, size=count)
        positions = centers[assignment] + generator.normal(
            0.0, self.spread, size=(count, 2))
        background = generator.random(count) < self.background_fraction
        positions[background] = generator.random((int(background.sum()), 2))
        return self._clip_open_unit(positions)


class GridDistribution(ObjectDistribution):
    """A perturbed regular lattice (near-degenerate input for stress tests)."""

    def __init__(self, jitter: float = 1e-3) -> None:
        if jitter < 0:
            raise ValueError("jitter must be non-negative")
        self.jitter = jitter
        self.name = "grid"

    def sample_array(self, count: int, rng: RandomSource) -> np.ndarray:
        generator = rng.generator
        side = max(2, int(math.ceil(math.sqrt(count))))
        xs, ys = np.meshgrid(
            (np.arange(side) + 0.5) / side,
            (np.arange(side) + 0.5) / side,
        )
        lattice = np.column_stack([xs.ravel(), ys.ravel()])[:count]
        lattice = lattice + generator.uniform(-self.jitter, self.jitter,
                                              size=lattice.shape)
        return self._clip_open_unit(lattice)


def paper_distributions() -> List[ObjectDistribution]:
    """The four distributions of the paper's evaluation, in figure order."""
    return [
        UniformDistribution(),
        PowerLawDistribution(alpha=1.0),
        PowerLawDistribution(alpha=2.0),
        PowerLawDistribution(alpha=5.0),
    ]


def distribution_by_name(name: str) -> ObjectDistribution:
    """Look up a distribution by its short name (used by CLI/benchmarks)."""
    registry: Dict[str, ObjectDistribution] = {
        d.name: d for d in paper_distributions()
    }
    registry["clustered"] = ClusteredDistribution()
    registry["grid"] = GridDistribution()
    try:
        return registry[name]
    except KeyError:
        raise ValueError(
            f"unknown distribution {name!r}; available: {sorted(registry)}"
        ) from None

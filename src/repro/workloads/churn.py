"""Churn traces: interleaved join/leave sequences.

The paper's maintenance algorithms (Section 3.3 / 4.2) are exercised by
replaying traces of object arrivals and departures; this module generates
such traces with a controllable arrival/departure mix and replays them
against an overlay, which is what the churn example and the maintenance
benchmark (ABL3) use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.geometry.point import Point
from repro.utils.rng import RandomSource
from repro.workloads.distributions import ObjectDistribution, UniformDistribution

__all__ = ["ChurnEvent", "ChurnTrace", "generate_churn_trace", "replay_churn"]


@dataclass(frozen=True)
class ChurnEvent:
    """One churn event: either a join (with a position) or a leave."""

    kind: str  # "join" or "leave"
    position: Optional[Point] = None

    def __post_init__(self) -> None:
        if self.kind not in ("join", "leave"):
            raise ValueError(f"kind must be 'join' or 'leave', got {self.kind!r}")
        if self.kind == "join" and self.position is None:
            raise ValueError("join events need a position")


@dataclass(frozen=True)
class ChurnTrace:
    """An ordered sequence of churn events."""

    events: Tuple[ChurnEvent, ...]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def join_count(self) -> int:
        return sum(1 for e in self.events if e.kind == "join")

    @property
    def leave_count(self) -> int:
        return sum(1 for e in self.events if e.kind == "leave")


def generate_churn_trace(num_events: int, rng: RandomSource, *,
                         leave_probability: float = 0.3,
                         warmup_joins: int = 16,
                         distribution: Optional[ObjectDistribution] = None) -> ChurnTrace:
    """Generate an interleaved join/leave trace.

    Parameters
    ----------
    num_events:
        Total number of events (including the warm-up joins).
    leave_probability:
        Probability that a post-warm-up event is a departure; the expected
        population therefore grows at rate ``1 - 2·leave_probability`` per
        event.
    warmup_joins:
        Number of guaranteed initial joins so the overlay never drains to
        zero during the trace.
    distribution:
        Placement distribution for joining objects (uniform by default).
    """
    if num_events < warmup_joins:
        raise ValueError("num_events must be at least warmup_joins")
    if not 0.0 <= leave_probability < 1.0:
        raise ValueError("leave_probability must be in [0, 1)")
    distribution = distribution or UniformDistribution()
    positions = generate_positions = distribution.sample(num_events, rng)
    events: List[ChurnEvent] = []
    position_index = 0
    population = 0
    for event_index in range(num_events):
        if event_index < warmup_joins or population <= 2 or \
                rng.uniform() >= leave_probability:
            events.append(ChurnEvent(kind="join",
                                     position=positions[position_index]))
            position_index += 1
            population += 1
        else:
            events.append(ChurnEvent(kind="leave"))
            population -= 1
    return ChurnTrace(events=tuple(events))


def replay_churn(overlay, trace: ChurnTrace, rng: RandomSource) -> List[int]:
    """Replay a churn trace against an overlay.

    Joins publish the event's position; leaves withdraw a uniformly random
    currently-published object.  Returns the list of object ids that are
    still alive after the replay.
    """
    alive: List[int] = list(overlay.object_ids())
    for event in trace:
        if event.kind == "join":
            alive.append(overlay.insert(event.position))
        else:
            if len(alive) <= 1:
                continue
            victim_index = rng.integer(0, len(alive))
            victim = alive.pop(victim_index)
            overlay.remove(victim)
    return alive

"""Churn traces: interleaved join/leave/crash sequences.

The paper's maintenance algorithms (Section 3.3 / 4.2) are exercised by
replaying traces of object arrivals and departures; this module generates
such traces with a controllable arrival/departure mix and replays them
against an overlay, which is what the churn example and the maintenance
benchmark (ABL3) use.  Traces can also carry *crash* events — abrupt,
non-graceful departures — which the replay hands to a caller-supplied
callable (typically ``CrashInjector.crash`` or
``ProtocolCrashInjector.crash``), so failure studies can mix graceful and
abrupt departures in one reproducible stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.geometry.point import Point
from repro.utils.rng import RandomSource
from repro.workloads.distributions import ObjectDistribution, UniformDistribution

__all__ = ["ChurnEvent", "ChurnTrace", "generate_churn_trace", "replay_churn"]


@dataclass(frozen=True)
class ChurnEvent:
    """One churn event: a join (with a position), a leave, or a crash."""

    kind: str  # "join", "leave" or "crash"
    position: Optional[Point] = None

    def __post_init__(self) -> None:
        if self.kind not in ("join", "leave", "crash"):
            raise ValueError(
                f"kind must be 'join', 'leave' or 'crash', got {self.kind!r}")
        if self.kind == "join" and self.position is None:
            raise ValueError("join events need a position")


@dataclass(frozen=True)
class ChurnTrace:
    """An ordered sequence of churn events."""

    events: Tuple[ChurnEvent, ...]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def join_count(self) -> int:
        return sum(1 for e in self.events if e.kind == "join")

    @property
    def leave_count(self) -> int:
        return sum(1 for e in self.events if e.kind == "leave")

    @property
    def crash_count(self) -> int:
        return sum(1 for e in self.events if e.kind == "crash")


def generate_churn_trace(num_events: int, rng: RandomSource, *,
                         leave_probability: float = 0.3,
                         crash_probability: float = 0.0,
                         warmup_joins: int = 16,
                         distribution: Optional[ObjectDistribution] = None) -> ChurnTrace:
    """Generate an interleaved join/leave/crash trace.

    Parameters
    ----------
    num_events:
        Total number of events (including the warm-up joins).
    leave_probability:
        Probability that a post-warm-up event is a graceful departure; the
        expected population therefore grows at rate
        ``1 - 2·(leave_probability + crash_probability)`` per event.
    crash_probability:
        Probability that a post-warm-up event is an *abrupt* departure.
        The default of zero keeps both the event mix and the random stream
        of pre-existing traces unchanged.
    warmup_joins:
        Number of guaranteed initial joins so the overlay never drains to
        zero during the trace.
    distribution:
        Placement distribution for joining objects (uniform by default).
    """
    if num_events < warmup_joins:
        raise ValueError("num_events must be at least warmup_joins")
    if not 0.0 <= leave_probability < 1.0:
        raise ValueError("leave_probability must be in [0, 1)")
    if not 0.0 <= crash_probability < 1.0:
        raise ValueError("crash_probability must be in [0, 1)")
    if leave_probability + crash_probability >= 1.0:
        raise ValueError("leave_probability + crash_probability must be < 1")
    distribution = distribution or UniformDistribution()
    positions = distribution.sample(num_events, rng)
    events: List[ChurnEvent] = []
    position_index = 0
    population = 0
    for event_index in range(num_events):
        # The draw is skipped during warm-up (and at minimum population),
        # exactly as before crash events existed, so a fixed seed keeps
        # producing the same trace when crash_probability is zero.
        draw = None if event_index < warmup_joins or population <= 2 \
            else rng.uniform()
        if draw is None or draw >= leave_probability + crash_probability:
            events.append(ChurnEvent(kind="join",
                                     position=positions[position_index]))
            position_index += 1
            population += 1
        elif draw < leave_probability:
            events.append(ChurnEvent(kind="leave"))
            population -= 1
        else:
            events.append(ChurnEvent(kind="crash"))
            population -= 1
    return ChurnTrace(events=tuple(events))


def replay_churn(overlay, trace: ChurnTrace, rng: RandomSource, *,
                 crash: Optional[Callable[[int], None]] = None) -> List[int]:
    """Replay a churn trace against an overlay.

    Joins publish the event's position; leaves withdraw a uniformly random
    currently-published object; crash events hand a uniformly random
    victim to the ``crash`` callable (e.g.
    :meth:`CrashInjector.crash <repro.simulation.failures.CrashInjector.crash>`),
    which performs the abrupt removal.  Returns the list of object ids
    that are still alive after the replay.

    Raises
    ------
    ValueError
        When the trace contains crash events and no ``crash`` callable is
        given — silently downgrading a crash to a graceful leave would
        erase exactly the damage a failure study measures.
    """
    if trace.crash_count > 0 and crash is None:
        raise ValueError("trace contains crash events; pass a crash callable")
    alive: List[int] = list(overlay.object_ids())
    for event in trace:
        if event.kind == "join":
            alive.append(overlay.insert(event.position))
        else:
            if len(alive) <= 1:
                continue
            victim_index = rng.integer(0, len(alive))
            victim = alive.pop(victim_index)
            if event.kind == "crash":
                crash(victim)
            else:
                overlay.remove(victim)
    return alive

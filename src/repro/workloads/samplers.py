"""Target samplers for the heavy-traffic serving workloads.

The routing sweeps of the paper measure isolated uniform pairs; a serving
layer sees *skewed*, *time-varying* demand.  This module provides the
target-selection side of that story: every sampler draws **indices into a
fixed object population** (``0 .. population-1``), so the same sampled
schedule can be replayed against VoroNet and against the Kleinberg/Chord
baselines (each adapter maps indices into its own id space).

Samplers are seeded and deterministic: constructing the same sampler with
the same seed and drawing the same counts yields byte-identical index
streams, which is what makes the oracle-vs-protocol serving parity test
(and the bench records) reproducible.

Families
--------
* :class:`UniformTargets` — the baseline every overlay likes.
* :class:`ZipfTargets` — Zipf(α) popularity over objects: the i-th most
  popular object receives mass ∝ ``1/i^α``, with the popularity ranking
  assigned by a seeded permutation (so popularity is uncorrelated with id
  order or spatial position).
* :class:`HotspotTargets` — spatial skew: a fraction of queries targets
  only the objects inside a disk of the attribute space.
* :class:`FlashCrowdTargets` — time-varying skew: the sampler switches
  between phase samplers at fixed points of the query stream (a crowd
  arriving on one region mid-run, then dispersing).
* :class:`MovingObjects` — not a target sampler but the traffic-time
  churn mixin: a seeded stream of position updates replayed against the
  overlay as remove+insert.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.point import Point
from repro.utils.rng import RandomSource

__all__ = [
    "TargetSampler",
    "UniformTargets",
    "ZipfTargets",
    "HotspotTargets",
    "FlashCrowdTargets",
    "MovingObjects",
]


class TargetSampler(abc.ABC):
    """Base class of query-target samplers over a fixed population.

    Parameters
    ----------
    population:
        Number of targetable objects; samples are indices in
        ``[0, population)``.
    seed:
        Seed of the sampler's private random stream.  Two samplers built
        with the same parameters and seed produce identical streams.
    """

    #: Short machine-readable name used in benchmark records.
    name: str = "abstract"

    def __init__(self, population: int, seed: Optional[int] = None) -> None:
        if population < 1:
            raise ValueError(f"population must be >= 1, got {population}")
        self.population = int(population)
        self._rng = RandomSource(seed)

    @abc.abstractmethod
    def sample(self, count: int) -> np.ndarray:
        """Draw ``count`` target indices as an int64 array."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{type(self).__name__}(name={self.name!r}, "
                f"population={self.population})")


class UniformTargets(TargetSampler):
    """Every object equally popular — the sweep-style baseline workload."""

    name = "uniform"

    def sample(self, count: int) -> np.ndarray:
        return self._rng.generator.integers(0, self.population, size=count,
                                            dtype=np.int64)


class ZipfTargets(TargetSampler):
    """Zipf(α) popularity over objects.

    The i-th most popular object receives probability ``∝ 1 / i^α``; which
    *object* holds rank i is a seeded permutation, so the skew is
    uncorrelated with join order and with spatial position.  α around 1
    is the classic web-object regime; the paper's "sparse" placements use
    the same family for object positions (α ∈ {1, 2, 5}).

    Attributes
    ----------
    rank_of:
        ``rank_of[i]`` is the popularity rank (0 = most popular) of object
        index ``i`` — exposed so tests and load analyses can line empirical
        frequencies up against the expected Zipf mass.
    """

    def __init__(self, population: int, alpha: float = 1.0,
                 seed: Optional[int] = None) -> None:
        super().__init__(population, seed)
        if alpha <= 0:
            raise ValueError(f"alpha must be > 0, got {alpha}")
        self.alpha = float(alpha)
        self.name = f"zipf-a{alpha:g}"
        ranks = np.arange(1, self.population + 1, dtype=np.float64)
        weights = ranks ** (-self.alpha)
        self._mass = weights / weights.sum()
        # objects_by_rank[r] = object index holding popularity rank r.
        self.objects_by_rank = self._rng.generator.permutation(self.population)
        self.rank_of = np.empty(self.population, dtype=np.int64)
        self.rank_of[self.objects_by_rank] = np.arange(self.population)

    def expected_mass(self, rank: int) -> float:
        """Probability mass of the object at popularity ``rank`` (0-based)."""
        return float(self._mass[rank])

    def sample(self, count: int) -> np.ndarray:
        drawn_ranks = self._rng.generator.choice(self.population, size=count,
                                                 p=self._mass)
        return self.objects_by_rank[drawn_ranks].astype(np.int64)


class HotspotTargets(TargetSampler):
    """Spatially skewed demand: a hot disk of the attribute space.

    With probability ``hot_fraction`` a query targets a uniformly chosen
    object inside the disk of ``radius`` around ``center``; otherwise a
    uniformly chosen object of the whole population.  An empty disk (no
    object inside) degrades to the uniform branch rather than failing, so
    churn that empties the region cannot wedge a running workload.
    """

    def __init__(self, positions: Sequence[Point] | np.ndarray,
                 center: Point = (0.5, 0.5), radius: float = 0.1,
                 hot_fraction: float = 0.9,
                 seed: Optional[int] = None) -> None:
        array = np.asarray(positions, dtype=np.float64)
        if array.ndim != 2 or array.shape[1] != 2:
            raise ValueError("positions must be an (n, 2) array-like")
        super().__init__(len(array), seed)
        if radius <= 0:
            raise ValueError(f"radius must be > 0, got {radius}")
        if not 0.0 <= hot_fraction <= 1.0:
            raise ValueError(
                f"hot_fraction must be in [0, 1], got {hot_fraction}")
        self.center = (float(center[0]), float(center[1]))
        self.radius = float(radius)
        self.hot_fraction = float(hot_fraction)
        self.name = f"hotspot-f{hot_fraction:g}"
        delta = array - np.asarray(self.center)
        inside = (delta * delta).sum(axis=1) <= self.radius * self.radius
        self.hot_indices = np.flatnonzero(inside).astype(np.int64)

    def sample(self, count: int) -> np.ndarray:
        generator = self._rng.generator
        uniform = generator.integers(0, self.population, size=count,
                                     dtype=np.int64)
        if len(self.hot_indices) == 0 or self.hot_fraction == 0.0:
            return uniform
        hot = self.hot_indices[
            generator.integers(0, len(self.hot_indices), size=count)]
        take_hot = generator.random(count) < self.hot_fraction
        return np.where(take_hot, hot, uniform)


class FlashCrowdTargets(TargetSampler):
    """Time-varying skew: the sampler retargets at fixed stream offsets.

    ``phases`` is a list of ``(start_index, sampler)`` pairs: query number
    ``k`` (0-based, counted across every :meth:`sample` call) is drawn from
    the sampler of the last phase whose ``start_index`` is ≤ k.  The
    classic flash crowd is uniform traffic, then a hotspot phase, then
    uniform again; any phase samplers over the same population compose.

    Phase boundaries are respected *within* a batch: one :meth:`sample`
    call spanning a boundary draws each segment from its own phase
    sampler, so batched drivers see the same stream a query-at-a-time
    driver would.
    """

    def __init__(self, phases: Sequence[Tuple[int, TargetSampler]]) -> None:
        if not phases:
            raise ValueError("need at least one phase")
        starts = [start for start, _sampler in phases]
        if starts[0] != 0:
            raise ValueError("the first phase must start at index 0")
        if starts != sorted(starts) or len(set(starts)) != len(starts):
            raise ValueError("phase start indices must be strictly increasing")
        populations = {sampler.population for _start, sampler in phases}
        if len(populations) != 1:
            raise ValueError("all phase samplers must share one population")
        # The phase samplers own the randomness; no extra seed needed here.
        super().__init__(populations.pop(), seed=0)
        self.phases = [(int(start), sampler) for start, sampler in phases]
        self.name = "flash-crowd"
        self._cursor = 0

    def _phase_end(self, phase_index: int) -> float:
        if phase_index + 1 < len(self.phases):
            return self.phases[phase_index + 1][0]
        return float("inf")

    def sample(self, count: int) -> np.ndarray:
        chunks: List[np.ndarray] = []
        remaining = count
        while remaining > 0:
            # Last phase whose start is <= cursor.
            index = max(i for i, (start, _s) in enumerate(self.phases)
                        if start <= self._cursor)
            end = self._phase_end(index)
            take = (remaining if end == float("inf")
                    else min(remaining, int(end) - self._cursor))
            chunks.append(self.phases[index][1].sample(take))
            self._cursor += take
            remaining -= take
        return np.concatenate(chunks) if len(chunks) > 1 else chunks[0]


class MovingObjects:
    """Seeded position-update stream replayed as remove+insert churn.

    The serving drivers interleave these updates with query traffic: every
    ``apply()`` picks a random live object, removes it and re-inserts it
    at a jittered position.  Two modes:

    * ``reuse_ids=True`` (default) re-inserts under the *same* object id —
      a genuine "object moved" update; target schedules sampled up front
      stay valid.
    * ``reuse_ids=False`` publishes the replacement under a fresh id —
      turnover churn; schedules targeting the old id now reference a
      departed object, which is exactly the mid-batch-miss edge case the
      serving layer must survive (``route_many(..., missing="miss")``).

    Updates route through the overlay's public ``remove``/``insert`` so
    all maintenance (close hand-over, long-link delegation, locate-grid
    and shard-store sync, routing-table invalidation) runs as production
    churn would.
    """

    def __init__(self, seed: Optional[int] = None, *, step_sigma: float = 0.02,
                 reuse_ids: bool = True) -> None:
        if step_sigma <= 0:
            raise ValueError(f"step_sigma must be > 0, got {step_sigma}")
        self._rng = RandomSource(seed)
        self.step_sigma = float(step_sigma)
        self.reuse_ids = bool(reuse_ids)
        self.moves_applied = 0

    def _jitter(self, position: Point) -> Point:
        generator = self._rng.generator
        epsilon = 1e-9
        x = float(np.clip(position[0] + generator.normal(0.0, self.step_sigma),
                          epsilon, 1.0 - epsilon))
        y = float(np.clip(position[1] + generator.normal(0.0, self.step_sigma),
                          epsilon, 1.0 - epsilon))
        return (x, y)

    def apply(self, overlay, object_id: Optional[int] = None) -> Tuple[int, int]:
        """Move one object; returns ``(old_id, new_id)``.

        ``object_id`` defaults to a uniformly random live object.  With
        ``reuse_ids`` the two ids are equal; otherwise the new id is the
        overlay-assigned replacement.
        """
        ids = overlay.object_ids()
        if len(ids) < 5:
            raise ValueError("refusing to churn an overlay of fewer than 5 objects")
        if object_id is None:
            object_id = ids[self._rng.integer(0, len(ids))]
        position = overlay.position_of(object_id)
        target = self._jitter(position)
        overlay.remove(object_id)
        new_id = overlay.insert(
            target, object_id=object_id if self.reuse_ids else None)
        self.moves_applied += 1
        return object_id, new_id

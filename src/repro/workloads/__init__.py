"""Workload generation: object placements, query mixes and churn traces.

The paper's evaluation populates the unit square with 300 000 objects drawn
from a uniform distribution and from power-law ("sparse") distributions of
increasing skew (α = 1, 2, 5), then measures routing between random object
pairs.  This package generates those placements plus the richer workloads
used by the examples and ablation benchmarks, and — for the serving layer
— the skewed *query-target* samplers of :mod:`repro.workloads.samplers`
(Zipf popularity, spatial hotspots, flash crowds, moving-object churn).
"""

from repro.workloads.distributions import (
    ClusteredDistribution,
    GridDistribution,
    ObjectDistribution,
    PowerLawDistribution,
    UniformDistribution,
    distribution_by_name,
    paper_distributions,
)
from repro.workloads.generators import (
    QueryWorkload,
    RoutingPairs,
    generate_objects,
    generate_query_workload,
    generate_routing_pairs,
)
from repro.workloads.churn import ChurnEvent, ChurnTrace, generate_churn_trace
from repro.workloads.samplers import (
    FlashCrowdTargets,
    HotspotTargets,
    MovingObjects,
    TargetSampler,
    UniformTargets,
    ZipfTargets,
)

__all__ = [
    "ObjectDistribution",
    "UniformDistribution",
    "PowerLawDistribution",
    "ClusteredDistribution",
    "GridDistribution",
    "distribution_by_name",
    "paper_distributions",
    "generate_objects",
    "generate_routing_pairs",
    "generate_query_workload",
    "RoutingPairs",
    "QueryWorkload",
    "ChurnEvent",
    "ChurnTrace",
    "generate_churn_trace",
    "TargetSampler",
    "UniformTargets",
    "ZipfTargets",
    "HotspotTargets",
    "FlashCrowdTargets",
    "MovingObjects",
]

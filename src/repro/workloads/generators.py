"""Workload generators: object streams, routing pairs and query mixes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.geometry.bounding import BoundingBox
from repro.geometry.point import Point
from repro.utils.rng import RandomSource
from repro.workloads.distributions import ObjectDistribution

__all__ = [
    "generate_objects",
    "generate_position_array",
    "generate_routing_pairs",
    "generate_query_workload",
    "RoutingPairs",
    "QueryWorkload",
]


def generate_objects(distribution: ObjectDistribution, count: int,
                     rng: RandomSource) -> List[Point]:
    """Draw ``count`` object positions from a distribution.

    Exact duplicates are regenerated (the overlay requires distinct
    positions, as does a real attribute space with continuous values).
    """
    positions = distribution.sample(count, rng)
    seen = set()
    unique: List[Point] = []
    for point in positions:
        if point in seen:
            continue
        seen.add(point)
        unique.append(point)
    while len(unique) < count:
        for point in distribution.sample(count - len(unique), rng):
            if point not in seen:
                seen.add(point)
                unique.append(point)
    return unique[:count]


def generate_position_array(distribution: ObjectDistribution, count: int,
                            rng: RandomSource) -> np.ndarray:
    """Draw ``count`` distinct object positions as an ``(n, 2)`` float array.

    The array form feeds :meth:`~repro.core.overlay.VoroNet.bulk_load` and
    other vectorised consumers without a round-trip through tuple lists;
    the positions are exactly those of :func:`generate_objects` with the
    same arguments.
    """
    return np.asarray(generate_objects(distribution, count, rng),
                      dtype=np.float64)


@dataclass(frozen=True)
class RoutingPairs:
    """A batch of (source, destination) object-id pairs for route measurements."""

    pairs: Tuple[Tuple[int, int], ...]

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self):
        return iter(self.pairs)


def generate_routing_pairs(object_ids: Sequence[int], count: int,
                           rng: RandomSource) -> RoutingPairs:
    """Draw ``count`` random ordered pairs of *distinct* objects.

    Mirrors the paper's measurement protocol ("random couples of different
    objects in the overlay").
    """
    ids = np.asarray(list(object_ids))
    if len(ids) < 2:
        raise ValueError("need at least two objects to build routing pairs")
    generator = rng.generator
    sources = generator.integers(0, len(ids), size=count)
    destinations = generator.integers(0, len(ids) - 1, size=count)
    # Shift destinations that collide with their source to guarantee distinctness.
    destinations = destinations + (destinations >= sources)
    pairs = tuple(
        (int(ids[s]), int(ids[d])) for s, d in zip(sources, destinations)
    )
    return RoutingPairs(pairs=pairs)


@dataclass(frozen=True)
class QueryWorkload:
    """A mixed batch of spatial queries.

    Attributes
    ----------
    point_queries:
        Target points for exact-match lookups.
    range_queries:
        Axis-aligned boxes for rectangular range queries.
    radius_queries:
        ``(center, radius)`` pairs for disk queries.
    segment_queries:
        ``(a, b)`` endpoints for one-attribute range (segment) queries.
    """

    point_queries: Tuple[Point, ...] = ()
    range_queries: Tuple[BoundingBox, ...] = ()
    radius_queries: Tuple[Tuple[Point, float], ...] = ()
    segment_queries: Tuple[Tuple[Point, Point], ...] = ()

    @property
    def total(self) -> int:
        return (len(self.point_queries) + len(self.range_queries)
                + len(self.radius_queries) + len(self.segment_queries))


def generate_query_workload(rng: RandomSource, *,
                            num_point: int = 0,
                            num_range: int = 0,
                            num_radius: int = 0,
                            num_segment: int = 0,
                            range_extent: float = 0.1,
                            radius: float = 0.05) -> QueryWorkload:
    """Generate a mixed query workload over the unit square.

    Parameters
    ----------
    range_extent:
        Side length of generated range-query rectangles.
    radius:
        Radius of generated disk queries.
    """
    generator = rng.generator

    def random_point() -> Point:
        xy = generator.random(2)
        return (float(xy[0]), float(xy[1]))

    points = tuple(random_point() for _ in range(num_point))
    ranges = []
    for _ in range(num_range):
        x0 = float(generator.uniform(0.0, 1.0 - range_extent))
        y0 = float(generator.uniform(0.0, 1.0 - range_extent))
        ranges.append(BoundingBox(x0, y0, x0 + range_extent, y0 + range_extent))
    radii = tuple((random_point(), radius) for _ in range(num_radius))
    segments = []
    for _ in range(num_segment):
        y = float(generator.uniform(0.05, 0.95))
        x0 = float(generator.uniform(0.0, 0.7))
        x1 = min(1.0, x0 + float(generator.uniform(0.1, 0.3)))
        segments.append(((x0, y), (x1, y)))
    return QueryWorkload(
        point_queries=points,
        range_queries=tuple(ranges),
        radius_queries=radii,
        segment_queries=tuple(segments),
    )

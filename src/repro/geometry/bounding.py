"""Axis-aligned bounding boxes and polygon clipping.

VoroNet's attribute space is the unit square ``[0, 1] × [0, 1]``.  Voronoi
cells of boundary objects are unbounded; for cell-geometry reporting
(areas, plots) they are clipped against the unit square with a standard
Sutherland–Hodgman pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.geometry.point import Point

__all__ = ["BoundingBox", "UNIT_SQUARE", "clip_polygon_to_box"]


@dataclass(frozen=True)
class BoundingBox:
    """An axis-aligned rectangle ``[xmin, xmax] × [ymin, ymax]``."""

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    def __post_init__(self) -> None:
        if self.xmin > self.xmax or self.ymin > self.ymax:
            raise ValueError(f"degenerate bounding box: {self}")

    @property
    def width(self) -> float:
        return self.xmax - self.xmin

    @property
    def height(self) -> float:
        return self.ymax - self.ymin

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return ((self.xmin + self.xmax) * 0.5, (self.ymin + self.ymax) * 0.5)

    @property
    def corners(self) -> Tuple[Point, Point, Point, Point]:
        """Corners in counter-clockwise order starting at ``(xmin, ymin)``."""
        return (
            (self.xmin, self.ymin),
            (self.xmax, self.ymin),
            (self.xmax, self.ymax),
            (self.xmin, self.ymax),
        )

    def contains(self, point: Point, tolerance: float = 0.0) -> bool:
        """Whether ``point`` lies inside the box (inclusive, with tolerance)."""
        x, y = point
        return (
            self.xmin - tolerance <= x <= self.xmax + tolerance
            and self.ymin - tolerance <= y <= self.ymax + tolerance
        )

    def clamp(self, point: Point) -> Point:
        """Project ``point`` onto the box (nearest point inside the box)."""
        x = min(max(point[0], self.xmin), self.xmax)
        y = min(max(point[1], self.ymin), self.ymax)
        return (x, y)

    def sample(self, rng) -> Point:
        """Draw a point uniformly from the box using a RandomSource-like rng."""
        return (
            rng.uniform(self.xmin, self.xmax),
            rng.uniform(self.ymin, self.ymax),
        )

    def expanded(self, margin: float) -> "BoundingBox":
        """A copy grown by ``margin`` on every side."""
        return BoundingBox(
            self.xmin - margin, self.ymin - margin,
            self.xmax + margin, self.ymax + margin,
        )


#: The attribute space the paper works in.
UNIT_SQUARE = BoundingBox(0.0, 0.0, 1.0, 1.0)


def _clip_against_edge(polygon: List[Point], inside, intersect) -> List[Point]:
    if not polygon:
        return []
    output: List[Point] = []
    prev = polygon[-1]
    prev_inside = inside(prev)
    for current in polygon:
        cur_inside = inside(current)
        if cur_inside:
            if not prev_inside:
                output.append(intersect(prev, current))
            output.append(current)
        elif prev_inside:
            output.append(intersect(prev, current))
        prev, prev_inside = current, cur_inside
    return output


def clip_polygon_to_box(polygon: Sequence[Point], box: BoundingBox) -> List[Point]:
    """Clip a (convex or simple) polygon against an axis-aligned box.

    Implements Sutherland–Hodgman clipping, one box edge at a time.  Returns
    the clipped polygon as a list of points (possibly empty if the polygon
    lies entirely outside the box).
    """
    poly = [(float(x), float(y)) for x, y in polygon]

    def x_intersect(p: Point, q: Point, x: float) -> Point:
        t = (x - p[0]) / (q[0] - p[0])
        return (x, p[1] + t * (q[1] - p[1]))

    def y_intersect(p: Point, q: Point, y: float) -> Point:
        t = (y - p[1]) / (q[1] - p[1])
        return (p[0] + t * (q[0] - p[0]), y)

    poly = _clip_against_edge(
        poly, lambda p: p[0] >= box.xmin, lambda p, q: x_intersect(p, q, box.xmin))
    poly = _clip_against_edge(
        poly, lambda p: p[0] <= box.xmax, lambda p, q: x_intersect(p, q, box.xmax))
    poly = _clip_against_edge(
        poly, lambda p: p[1] >= box.ymin, lambda p, q: y_intersect(p, q, box.ymin))
    poly = _clip_against_edge(
        poly, lambda p: p[1] <= box.ymax, lambda p, q: y_intersect(p, q, box.ymax))
    return poly


def polygon_area(polygon: Sequence[Point]) -> float:
    """Unsigned area of a simple polygon (shoelace formula)."""
    n = len(polygon)
    if n < 3:
        return 0.0
    total = 0.0
    for i in range(n):
        x1, y1 = polygon[i]
        x2, y2 = polygon[(i + 1) % n]
        total += x1 * y2 - x2 * y1
    return abs(total) * 0.5

"""Convex hulls (Andrew's monotone chain).

Used by tests (the hull of the object set determines which Delaunay
vertices are allowed to be "hull vertices") and by the Voronoi cell
construction examples.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.geometry.point import Point
from repro.geometry.predicates import orient2d

__all__ = ["convex_hull", "point_in_convex_polygon"]


def convex_hull(points: Sequence[Point]) -> List[Point]:
    """Convex hull of a point set in counter-clockwise order.

    Collinear points on the hull boundary are dropped; duplicate input
    points are tolerated.  For fewer than three distinct points the distinct
    points are returned in sorted order.
    """
    unique = sorted({(float(x), float(y)) for x, y in points})
    if len(unique) <= 2:
        return unique

    def build(sequence: List[Point]) -> List[Point]:
        chain: List[Point] = []
        for p in sequence:
            while len(chain) >= 2 and orient2d(chain[-2], chain[-1], p) <= 0:
                chain.pop()
            chain.append(p)
        return chain

    lower = build(unique)
    upper = build(list(reversed(unique)))
    hull = lower[:-1] + upper[:-1]
    if len(hull) < 3:
        # All points collinear: return the two extremes.
        return [unique[0], unique[-1]]
    return hull


def point_in_convex_polygon(point: Point, polygon: Sequence[Point]) -> bool:
    """Whether ``point`` lies inside or on a convex CCW polygon."""
    n = len(polygon)
    if n == 0:
        return False
    if n == 1:
        return tuple(point) == tuple(polygon[0])
    if n == 2:
        return orient2d(polygon[0], polygon[1], point) == 0
    for i in range(n):
        if orient2d(polygon[i], polygon[(i + 1) % n], point) < 0:
            return False
    return True


def hull_vertices_of(points: Sequence[Point]) -> List[int]:
    """Indices (into ``points``) of the points lying on the convex hull."""
    hull = set(map(tuple, convex_hull(points)))
    return [i for i, p in enumerate(points) if (float(p[0]), float(p[1])) in hull]

"""Robust geometric predicates.

The paper relies on the Sugihara–Iri construction precisely because naive
floating-point Voronoi maintenance breaks down under calculation degeneracy
(near-collinear or near-cocircular objects).  We obtain the same resilience
differently: the ``orient2d`` and ``incircle`` predicates below are first
evaluated in fast floating point; when the result falls within a
conservative forward-error bound of zero, they are re-evaluated exactly
with :class:`fractions.Fraction` arithmetic.  Floats convert to rationals
exactly, so the fallback gives the mathematically exact sign.

Only the *signs* of these determinants drive the triangulation logic, so
exactness of the sign is all that is needed for topological consistency.
"""

from __future__ import annotations

import math
from enum import IntEnum
from fractions import Fraction
from typing import Optional, Sequence

from repro.geometry.point import Point

__all__ = [
    "Orientation",
    "orient2d",
    "incircle",
    "circumcenter",
    "circumradius",
    "point_in_triangle",
    "point_in_polygon",
    "collinear",
    "segment_contains",
    "triangle_area",
]

# Forward-error coefficients, slightly inflated relative to Shewchuk's exact
# constants so the exact path is taken a little more eagerly than strictly
# necessary.  The exact path is cheap at our scales and only rarely taken.
_ORIENT_ERRBOUND = 4.0e-16
_INCIRCLE_ERRBOUND = 1.2e-15


class Orientation(IntEnum):
    """Sign of the orientation determinant."""

    CLOCKWISE = -1
    COLLINEAR = 0
    COUNTERCLOCKWISE = 1


def _orient2d_exact(a: Point, b: Point, c: Point) -> int:
    ax, ay = Fraction(a[0]), Fraction(a[1])
    bx, by = Fraction(b[0]), Fraction(b[1])
    cx, cy = Fraction(c[0]), Fraction(c[1])
    det = (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)
    if det > 0:
        return 1
    if det < 0:
        return -1
    return 0


def orient2d(a: Point, b: Point, c: Point) -> int:
    """Sign of the signed area of triangle ``abc``.

    Returns ``+1`` if ``c`` lies strictly to the left of the directed line
    ``a → b`` (counter-clockwise triangle), ``-1`` if strictly to the right,
    and ``0`` if the three points are exactly collinear.
    """
    acx = a[0] - c[0]
    acy = a[1] - c[1]
    bcx = b[0] - c[0]
    bcy = b[1] - c[1]
    det = acx * bcy - acy * bcx
    detsum = abs(acx * bcy) + abs(acy * bcx)
    if abs(det) > _ORIENT_ERRBOUND * detsum:
        return 1 if det > 0 else -1
    return _orient2d_exact(a, b, c)


def collinear(a: Point, b: Point, c: Point) -> bool:
    """Whether the three points are exactly collinear."""
    return orient2d(a, b, c) == 0


def _incircle_exact(a: Point, b: Point, c: Point, d: Point) -> int:
    ax, ay = Fraction(a[0]) - Fraction(d[0]), Fraction(a[1]) - Fraction(d[1])
    bx, by = Fraction(b[0]) - Fraction(d[0]), Fraction(b[1]) - Fraction(d[1])
    cx, cy = Fraction(c[0]) - Fraction(d[0]), Fraction(c[1]) - Fraction(d[1])
    det = (
        (ax * ax + ay * ay) * (bx * cy - by * cx)
        - (bx * bx + by * by) * (ax * cy - ay * cx)
        + (cx * cx + cy * cy) * (ax * by - ay * bx)
    )
    if det > 0:
        return 1
    if det < 0:
        return -1
    return 0


def incircle(a: Point, b: Point, c: Point, d: Point) -> int:
    """Sign of the in-circumcircle determinant.

    For a *counter-clockwise* triangle ``abc``, returns ``+1`` if ``d`` lies
    strictly inside the circumscribed circle of ``abc``, ``-1`` if strictly
    outside, and ``0`` if exactly on the circle.  (For a clockwise triangle
    the sign flips, as usual.)
    """
    adx = a[0] - d[0]
    ady = a[1] - d[1]
    bdx = b[0] - d[0]
    bdy = b[1] - d[1]
    cdx = c[0] - d[0]
    cdy = c[1] - d[1]

    bdxcdy = bdx * cdy
    cdxbdy = cdx * bdy
    alift = adx * adx + ady * ady

    cdxady = cdx * ady
    adxcdy = adx * cdy
    blift = bdx * bdx + bdy * bdy

    adxbdy = adx * bdy
    bdxady = bdx * ady
    clift = cdx * cdx + cdy * cdy

    det = (
        alift * (bdxcdy - cdxbdy)
        + blift * (cdxady - adxcdy)
        + clift * (adxbdy - bdxady)
    )
    permanent = (
        (abs(bdxcdy) + abs(cdxbdy)) * alift
        + (abs(cdxady) + abs(adxcdy)) * blift
        + (abs(adxbdy) + abs(bdxady)) * clift
    )
    if abs(det) > _INCIRCLE_ERRBOUND * permanent:
        return 1 if det > 0 else -1
    return _incircle_exact(a, b, c, d)


def triangle_area(a: Point, b: Point, c: Point) -> float:
    """Unsigned area of triangle ``abc`` (floating point)."""
    return abs(
        (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0])
    ) * 0.5


def circumcenter(a: Point, b: Point, c: Point) -> Optional[Point]:
    """Circumcenter of triangle ``abc`` or ``None`` if the points are collinear.

    Computed in floating point; it feeds Voronoi-cell geometry (vertices,
    areas) where small numerical error is acceptable, never the exact
    topological decisions.
    """
    ax, ay = a
    bx, by = b
    cx, cy = c
    d = 2.0 * (ax * (by - cy) + bx * (cy - ay) + cx * (ay - by))
    if d == 0.0:
        return None
    ux = (
        (ax * ax + ay * ay) * (by - cy)
        + (bx * bx + by * by) * (cy - ay)
        + (cx * cx + cy * cy) * (ay - by)
    ) / d
    uy = (
        (ax * ax + ay * ay) * (cx - bx)
        + (bx * bx + by * by) * (ax - cx)
        + (cx * cx + cy * cy) * (bx - ax)
    ) / d
    return (ux, uy)


def circumradius(a: Point, b: Point, c: Point) -> float:
    """Circumradius of triangle ``abc`` (``inf`` for collinear points)."""
    center = circumcenter(a, b, c)
    if center is None:
        return math.inf
    return math.hypot(center[0] - a[0], center[1] - a[1])


def point_in_triangle(p: Point, a: Point, b: Point, c: Point) -> bool:
    """Whether ``p`` lies inside or on the boundary of triangle ``abc``.

    Works for either orientation of the triangle.
    """
    o1 = orient2d(a, b, p)
    o2 = orient2d(b, c, p)
    o3 = orient2d(c, a, p)
    has_neg = (o1 < 0) or (o2 < 0) or (o3 < 0)
    has_pos = (o1 > 0) or (o2 > 0) or (o3 > 0)
    return not (has_neg and has_pos)


def point_in_polygon(point: Point, polygon: Sequence[Point], *,
                     include_boundary: bool = True) -> bool:
    """Whether ``point`` lies inside a simple polygon.

    The interior test is the even-odd ray cast; points lying exactly on an
    edge or vertex are classified by :func:`segment_contains`, so with
    ``include_boundary=True`` (the default) an on-boundary point counts as
    inside.  A bare ray cast misclassifies such points unpredictably, which
    is exactly the failure mode that perturbed the overlay's
    ``DistanceToRegion`` primitive for points on a Voronoi cell edge.
    """
    n = len(polygon)
    if n == 0:
        return False
    for i in range(n):
        a = polygon[i]
        b = polygon[(i + 1) % n]
        if point == a:
            return include_boundary
        if a != b and segment_contains(a, b, point, strict=False):
            return include_boundary
    x, y = point
    inside = False
    for i in range(n):
        x1, y1 = polygon[i]
        x2, y2 = polygon[(i + 1) % n]
        if (y1 > y) != (y2 > y):
            x_cross = x1 + (y - y1) * (x2 - x1) / (y2 - y1)
            if x < x_cross:
                inside = not inside
    return inside


def segment_contains(a: Point, b: Point, p: Point, *, strict: bool = True) -> bool:
    """Whether ``p`` lies on segment ``ab``.

    Requires exact collinearity.  With ``strict=True`` the endpoints are
    excluded (open segment), which is the test needed by the ghost-triangle
    circumdisk rule of the Delaunay kernel.
    """
    if orient2d(a, b, p) != 0:
        return False
    dot = (p[0] - a[0]) * (b[0] - a[0]) + (p[1] - a[1]) * (b[1] - a[1])
    length_sq = (b[0] - a[0]) ** 2 + (b[1] - a[1]) ** 2
    if length_sq == 0.0:
        return False
    if strict:
        return 0.0 < dot < length_sq
    return 0.0 <= dot <= length_sq

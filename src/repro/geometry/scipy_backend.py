"""Cross-check backend built on :mod:`scipy.spatial`.

Our own incremental Delaunay kernel is the one the overlay uses (it has to
support deletion, hints, and per-vertex stars).  ``scipy.spatial.Delaunay``
provides an independent, battle-tested implementation of the *same*
mathematical object; this module exposes its adjacency so tests can verify
that both kernels agree, and offers a convenience batch constructor for
analysis code that only needs a static triangulation.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

import numpy as np
from scipy.spatial import Delaunay as _SciPyDelaunay

from repro.geometry.delaunay import DelaunayTriangulation
from repro.geometry.point import Point

__all__ = [
    "scipy_delaunay_adjacency",
    "adjacency_of",
    "compare_with_scipy",
]


def scipy_delaunay_adjacency(points: Sequence[Point]) -> Dict[int, Set[int]]:
    """Delaunay adjacency (index → neighbour indices) computed by scipy.

    Raises
    ------
    ValueError
        If scipy cannot triangulate the input (fewer than 3 points or a
        degenerate/collinear configuration).
    """
    array = np.asarray(points, dtype=np.float64)
    if array.ndim != 2 or array.shape[1] != 2:
        raise ValueError(f"expected (n, 2) points, got shape {array.shape}")
    if array.shape[0] < 3:
        raise ValueError("scipy Delaunay requires at least 3 points")
    triangulation = _SciPyDelaunay(array)
    adjacency: Dict[int, Set[int]] = {i: set() for i in range(array.shape[0])}
    indptr, indices = triangulation.vertex_neighbor_vertices
    for i in range(array.shape[0]):
        adjacency[i] = set(int(j) for j in indices[indptr[i]:indptr[i + 1]])
    return adjacency


def adjacency_of(triangulation: DelaunayTriangulation) -> Dict[int, Set[int]]:
    """Adjacency map (vertex id → neighbour ids) of our own triangulation."""
    return {
        vid: set(triangulation.neighbors(vid))
        for vid in triangulation.vertex_ids()
    }


def compare_with_scipy(triangulation: DelaunayTriangulation) -> List[str]:
    """Compare our kernel's adjacency against scipy on the same points.

    Returns a list of human-readable discrepancy descriptions (empty when
    the two adjacencies are identical).  Cocircular degeneracies can make
    several triangulations equally Delaunay, so callers comparing random
    continuous inputs should expect an empty list while callers feeding
    adversarial grids may see benign differences.
    """
    ids = triangulation.vertex_ids()
    if len(ids) < 3:
        return []
    points = [triangulation.point(vid) for vid in ids]
    try:
        scipy_adjacency = scipy_delaunay_adjacency(points)
    except Exception as exc:  # degenerate inputs scipy refuses
        return [f"scipy failed to triangulate: {exc}"]
    id_to_index = {vid: i for i, vid in enumerate(ids)}
    ours = adjacency_of(triangulation)
    problems: List[str] = []
    for vid in ids:
        mine = {id_to_index[nb] for nb in ours[vid]}
        theirs = scipy_adjacency[id_to_index[vid]]
        if mine != theirs:
            missing = theirs - mine
            extra = mine - theirs
            problems.append(
                f"vertex {vid}: missing neighbours {sorted(missing)}, "
                f"extra neighbours {sorted(extra)}"
            )
    return problems


def build_reference_triangulation(points: Sequence[Point]) -> DelaunayTriangulation:
    """Build our incremental triangulation from a batch of points.

    Convenience for analysis scripts that have all points up front; points
    are inserted in the given order with the default hint strategy.
    """
    triangulation = DelaunayTriangulation()
    for point in points:
        triangulation.insert(point)
    return triangulation

"""Incremental Delaunay triangulation with insertion and deletion.

This kernel is the geometric heart of the VoroNet reproduction: the
adjacency of the Delaunay triangulation *is* the set of Voronoi neighbours
``vn(o)`` each overlay object maintains, and nearest-vertex location on the
triangulation is exactly "find the object whose Voronoi region contains
this point".

Design
------
The triangulation is stored as a triangulation of the topological sphere:
every finite triangle ``(u, v, w)`` is kept in counter-clockwise order, and
the outside of the convex hull is covered by *ghost triangles* that share a
hull edge and a virtual vertex at infinity (:data:`INFINITE_VERTEX`).  This
is the classic trick that makes insertion outside the hull, hull updates
and vertex stars completely uniform — no special boundary cases in the
combinatorial machinery.

The only container is a map from every *directed* edge ``(u, v)`` to the
apex ``w`` of the triangle ``(u, v, w)`` lying to the left of the edge.
The neighbouring triangle across ``(u, v)`` is the one stored under the
reverse edge ``(v, u)``.

Operations
----------
* **Insertion** is Bowyer–Watson: locate a seed triangle whose circumdisk
  contains the new point by a visibility walk, grow the cavity of all such
  triangles by breadth-first search, and re-triangulate the cavity boundary
  as a fan around the new point.  Ghost triangles use Shewchuk's rule: their
  "circumdisk" is the open half-plane beyond their hull edge plus the open
  edge itself.
* **Deletion** of an interior vertex removes its star and re-triangulates
  the resulting star-shaped polygon by Delaunay ear clipping (an ear is
  clipped when it is convex and its circumcircle is empty of the other
  polygon vertices).  Deleting a hull vertex falls back to a full rebuild,
  which is rare for objects spread in the unit square and keeps the code
  simple and correct.
* **Point location** (``nearest_vertex``) is greedy descent on the Delaunay
  graph, which provably reaches the vertex whose Voronoi cell contains the
  query point.

All topological decisions go through the robust predicates of
:mod:`repro.geometry.predicates`, so the structure stays consistent under
near-degenerate inputs (the property the paper gets from Sugihara–Iri).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.geometry.point import Point
from repro.geometry.predicates import incircle, orient2d, segment_contains

__all__ = ["DelaunayTriangulation", "DuplicatePointError", "INFINITE_VERTEX",
           "morton_order"]

#: Sentinel id of the vertex at infinity used by ghost triangles.
INFINITE_VERTEX = -1

Triangle = Tuple[int, int, int]
DirectedEdge = Tuple[int, int]


class DuplicatePointError(ValueError):
    """Raised when inserting a point that coincides exactly with an existing vertex."""

    def __init__(self, point: Point, existing_vertex: int) -> None:
        super().__init__(
            f"point {point!r} duplicates existing vertex {existing_vertex}"
        )
        self.point = point
        self.existing_vertex = existing_vertex


class TriangulationCorruptionError(RuntimeError):
    """Raised by :meth:`DelaunayTriangulation.validate` on invariant violation."""


def morton_order(points: Sequence[Point]) -> List[int]:
    """Indices of ``points`` sorted along a Morton (Z-order) curve.

    Coordinates are normalised to the batch's bounding box and quantised to
    a 1024-cell lattice per axis — enough locality for hinted insertion;
    exactness is irrelevant because the order only affects speed.  The bit
    interleaving runs vectorised over the whole batch.
    """
    if len(points) < 3:
        return list(range(len(points)))
    pts = np.asarray(points, dtype=np.float64)
    mins = pts.min(axis=0)
    spans = pts.max(axis=0) - mins
    spans[spans == 0.0] = 1.0
    quantized = ((pts - mins) / spans * 1023.0).astype(np.uint32)
    qx = quantized[:, 0]
    qy = quantized[:, 1]
    codes = np.zeros(len(points), dtype=np.uint32)
    for component, shift in ((qx, 0), (qy, 1)):
        v = component & np.uint32(0xFFFF)
        v = (v | (v << 8)) & np.uint32(0x00FF00FF)
        v = (v | (v << 4)) & np.uint32(0x0F0F0F0F)
        v = (v | (v << 2)) & np.uint32(0x33333333)
        v = (v | (v << 1)) & np.uint32(0x55555555)
        codes |= v << np.uint32(shift)
    return [int(i) for i in np.argsort(codes, kind="stable")]


def _normalize(u: int, v: int, w: int) -> Triangle:
    """Canonical rotation of a triangle (smallest id first, cyclic order kept)."""
    if u <= v and u <= w:
        return (u, v, w)
    if v <= u and v <= w:
        return (v, w, u)
    return (w, u, v)


class DelaunayTriangulation:
    """An incremental 2-D Delaunay triangulation.

    Parameters
    ----------
    points:
        Optional initial points, inserted in order.

    Examples
    --------
    >>> dt = DelaunayTriangulation()
    >>> a = dt.insert((0.1, 0.1))
    >>> b = dt.insert((0.9, 0.1))
    >>> c = dt.insert((0.5, 0.8))
    >>> d = dt.insert((0.5, 0.4))
    >>> sorted(dt.neighbors(d)) == sorted([a, b, c])
    True
    """

    def __init__(self, points: Optional[Sequence[Point]] = None) -> None:
        self._points: Dict[int, Point] = {}
        self._coord_index: Dict[Point, int] = {}
        self._apex: Dict[DirectedEdge, int] = {}
        self._vertex_edge: Dict[int, DirectedEdge] = {}
        self._has_triangulation = False
        self._next_id = 0
        self._last_vertex: Optional[int] = None
        # Monotone structure version: bumped on every topological mutation
        # (insert, remove, rebuild).  Per-vertex neighbour blocks are cached
        # against it so repeated point locations between mutations never
        # re-walk a vertex star.
        self._version = 0
        self._neighbor_cache: Dict[int, Tuple[int, List[Tuple[int, float, float]]]] = {}
        if points:
            for p in points:
                self.insert(p)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._points)

    def __contains__(self, vertex_id: int) -> bool:
        return vertex_id in self._points

    @property
    def has_triangulation(self) -> bool:
        """Whether a full (non-degenerate) triangulation currently exists."""
        return self._has_triangulation

    def vertex_ids(self) -> List[int]:
        """All finite vertex ids currently in the triangulation."""
        return list(self._points.keys())

    def point(self, vertex_id: int) -> Point:
        """Coordinates of a vertex."""
        return self._points[vertex_id]

    def points(self) -> Dict[int, Point]:
        """A copy of the id → coordinates mapping."""
        return dict(self._points)

    def vertex_at(self, point: Point) -> Optional[int]:
        """The vertex with exactly these coordinates, if any."""
        return self._coord_index.get((float(point[0]), float(point[1])))

    @property
    def last_vertex(self) -> Optional[int]:
        """The most recently inserted vertex (the default location hint)."""
        return self._last_vertex

    @property
    def version(self) -> int:
        """Monotone structure version, bumped on every topological mutation.

        Consumers caching anything derived from the adjacency (neighbour
        blocks, routing tables) compare their stored version against this
        value and rebuild lazily on mismatch.  It is an invalidation token,
        not a mutation counter: one operation may advance it more than once
        (e.g. a rebuild re-inserting every vertex).
        """
        return self._version

    def advance_version(self, minimum: int) -> None:
        """Raise the structure version to at least ``minimum``.

        Used when this triangulation supersedes forks that mutated (and
        so version-advanced) independently — e.g. the union kernel built
        on partition heal must dominate every side's partial order so its
        version-stamped view snapshots win at every node.  Never lowers
        the version (monotonicity is the whole contract).
        """
        if minimum > self._version:
            self._version = minimum

    # ------------------------------------------------------------------
    # triangle bookkeeping
    # ------------------------------------------------------------------
    def _add_triangle(self, u: int, v: int, w: int) -> None:
        self._apex[(u, v)] = w
        self._apex[(v, w)] = u
        self._apex[(w, u)] = v
        self._vertex_edge[u] = (u, v)
        self._vertex_edge[v] = (v, w)
        self._vertex_edge[w] = (w, u)

    def _remove_triangle(self, u: int, v: int, w: int) -> None:
        del self._apex[(u, v)]
        del self._apex[(v, w)]
        del self._apex[(w, u)]

    def triangles(self) -> Iterator[Triangle]:
        """Iterate over the finite triangles, each exactly once, CCW."""
        seen: Set[Triangle] = set()
        for (u, v), w in self._apex.items():
            if u == INFINITE_VERTEX or v == INFINITE_VERTEX or w == INFINITE_VERTEX:
                continue
            tri = _normalize(u, v, w)
            if tri not in seen:
                seen.add(tri)
                yield tri

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over finite undirected edges as ``(u, v)`` with ``u < v``."""
        if self._has_triangulation:
            for (u, v) in self._apex:
                if u == INFINITE_VERTEX or v == INFINITE_VERTEX:
                    continue
                if u < v:
                    yield (u, v)
        else:
            ids = list(self._points)
            for i, u in enumerate(ids):
                for v in self._degenerate_neighbors(u):
                    if u < v:
                        yield (u, v)

    def triangle_count(self) -> int:
        """Number of finite triangles."""
        return sum(1 for _ in self.triangles())

    # ------------------------------------------------------------------
    # degenerate (fewer than 3 non-collinear points) handling
    # ------------------------------------------------------------------
    def _find_non_collinear_triple(self) -> Optional[Tuple[int, int, int]]:
        ids = list(self._points)
        if len(ids) < 3:
            return None
        a = ids[0]
        b = None
        for candidate in ids[1:]:
            if self._points[candidate] != self._points[a]:
                b = candidate
                break
        if b is None:
            return None
        pa, pb = self._points[a], self._points[b]
        for c in ids:
            if c in (a, b):
                continue
            if orient2d(pa, pb, self._points[c]) != 0:
                return (a, b, c)
        return None

    def _try_bootstrap(self) -> None:
        """Build the initial triangulation once 3 non-collinear points exist."""
        triple = self._find_non_collinear_triple()
        if triple is None:
            return
        a, b, c = triple
        pa, pb, pc = self._points[a], self._points[b], self._points[c]
        if orient2d(pa, pb, pc) < 0:
            b, c = c, b
        self._apex.clear()
        self._vertex_edge.clear()
        self._add_triangle(a, b, c)
        # Ghost triangles: one per hull edge, keyed by the reversed edge.
        self._add_triangle(b, a, INFINITE_VERTEX)
        self._add_triangle(c, b, INFINITE_VERTEX)
        self._add_triangle(a, c, INFINITE_VERTEX)
        self._has_triangulation = True
        remaining = [vid for vid in self._points if vid not in (a, b, c)]
        for vid in remaining:
            self._insert_into_triangulation(vid, hint=a)

    def _degenerate_neighbors(self, vertex_id: int) -> List[int]:
        """Neighbours when no triangulation exists (≤2 points or all collinear).

        With all points on a common line, the natural Delaunay graph is the
        path along the line; we return the nearest existing point on each
        side.  With one or two points, the other point (if any) is the sole
        neighbour.
        """
        others = [vid for vid in self._points if vid != vertex_id]
        if len(others) <= 1:
            return others
        p = self._points[vertex_id]
        anchor = None
        for vid in others:
            if self._points[vid] != p:
                anchor = self._points[vid]
                break
        if anchor is None:
            return []
        # Project every point on the (p, anchor) line and take the adjacent ones.
        dx, dy = anchor[0] - p[0], anchor[1] - p[1]

        def coord(q: Point) -> float:
            return (q[0] - p[0]) * dx + (q[1] - p[1]) * dy

        before: Optional[Tuple[float, int]] = None
        after: Optional[Tuple[float, int]] = None
        for vid in others:
            t = coord(self._points[vid])
            if t < 0 and (before is None or t > before[0]):
                before = (t, vid)
            elif t > 0 and (after is None or t < after[0]):
                after = (t, vid)
            elif t == 0:
                # Coincident projection (duplicate location along the line).
                after = (0.0, vid) if after is None else after
        result = []
        if before is not None:
            result.append(before[1])
        if after is not None:
            result.append(after[1])
        return result

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    def insert(self, point: Point, vertex_id: Optional[int] = None,
               hint: Optional[int] = None) -> int:
        """Insert a point and return its vertex id.

        Parameters
        ----------
        point:
            ``(x, y)`` coordinates.
        vertex_id:
            Optional caller-chosen id (must be a fresh non-negative integer);
            auto-assigned when omitted.
        hint:
            A vertex id believed to be close to ``point``; point location
            starts there, making insertion effectively constant time when the
            hint is the nearest vertex (as it is during VoroNet joins).
        """
        point = (float(point[0]), float(point[1]))
        existing = self._coord_index.get(point)
        if existing is not None:
            raise DuplicatePointError(point, existing)
        if vertex_id is None:
            vertex_id = self._next_id
            self._next_id += 1
        else:
            if vertex_id < 0:
                raise ValueError("vertex ids must be non-negative")
            if vertex_id in self._points:
                raise ValueError(f"vertex id {vertex_id} already in use")
            self._next_id = max(self._next_id, vertex_id + 1)
        self._points[vertex_id] = point
        self._coord_index[point] = vertex_id
        if not self._has_triangulation:
            self._try_bootstrap()
            # Degenerate-path insertions (< 3 non-collinear points) change
            # the implied path adjacency without touching any triangle;
            # the triangulated path bumps inside _insert_into_triangulation
            # (shared with bulk_insert, which bypasses this method).
            self._version += 1
        else:
            self._insert_into_triangulation(vertex_id, hint)
        self._last_vertex = vertex_id
        return vertex_id

    def bulk_insert(self, points: Sequence[Point],
                    vertex_ids: Optional[Sequence[int]] = None) -> List[int]:
        """Insert a batch of points in one spatially sorted pass.

        The batch is validated up front (no partial mutation on duplicate
        input), ordered along a Morton (Z-order) curve, and inserted with
        the kernel's last-insert hint: consecutive points are spatial
        neighbours, so every location walk starts next to its answer and
        each insertion runs in effectively constant time.  The resulting
        triangulation is identical to inserting the points in any other
        order (the Delaunay triangulation is order-independent up to
        cocircular degeneracies).

        Parameters
        ----------
        points:
            Batch of ``(x, y)`` coordinates.
        vertex_ids:
            Optional caller-chosen ids aligned with ``points`` (fresh,
            non-negative, pairwise distinct); auto-assigned when omitted.

        Returns
        -------
        The vertex ids in **input order** (not insertion order).
        """
        pts = [(float(p[0]), float(p[1])) for p in points]
        if vertex_ids is None:
            ids = list(range(self._next_id, self._next_id + len(pts)))
        else:
            ids = [int(v) for v in vertex_ids]
            if len(ids) != len(pts):
                raise ValueError("vertex_ids must align with points")
            if len(set(ids)) != len(ids):
                raise ValueError("vertex_ids must be pairwise distinct")
            for vid in ids:
                if vid < 0:
                    raise ValueError("vertex ids must be non-negative")
                if vid in self._points:
                    raise ValueError(f"vertex id {vid} already in use")
        first_index: Dict[Point, int] = {}
        for index, p in enumerate(pts):
            existing = self._coord_index.get(p)
            if existing is not None:
                raise DuplicatePointError(p, existing)
            if p in first_index:
                raise DuplicatePointError(p, ids[first_index[p]])
            first_index[p] = index
        for index in morton_order(pts):
            vid = ids[index]
            if self._has_triangulation:
                # Already validated above: bypass insert()'s re-checks and
                # go straight to the hinted Bowyer–Watson step.
                point = pts[index]
                self._points[vid] = point
                self._coord_index[point] = vid
                self._next_id = max(self._next_id, vid + 1)
                self._insert_into_triangulation(vid, hint=None)
                self._last_vertex = vid
            else:
                self.insert(pts[index], vertex_id=vid)
        return ids

    def _finite_triangle_at(self, vertex_id: int) -> Triangle:
        """Some finite triangle incident to ``vertex_id``."""
        edge = self._vertex_edge.get(vertex_id)
        if edge is None or edge not in self._apex or edge[0] != vertex_id:
            edge = self._rescan_vertex_edge(vertex_id)
        u, v = edge
        start = v
        w = self._apex[(u, v)]
        guard = 0
        while INFINITE_VERTEX in (v, w):
            v, w = w, self._apex[(u, w)]
            guard += 1
            if v == start or guard > len(self._apex):
                raise TriangulationCorruptionError(
                    f"vertex {vertex_id} has no finite incident triangle"
                )
        return (u, v, w)

    def _rescan_vertex_edge(self, vertex_id: int) -> DirectedEdge:
        for edge in self._apex:
            if edge[0] == vertex_id:
                self._vertex_edge[vertex_id] = edge
                return edge
        raise TriangulationCorruptionError(
            f"vertex {vertex_id} has no incident triangles"
        )

    def _walk_to_seed(self, point: Point, hint: Optional[int]) -> Triangle:
        """Find a triangle whose circumdisk contains ``point`` (visibility walk)."""
        start = hint if hint is not None and hint in self._points else self._last_vertex
        if start is None or start not in self._points:
            start = next(iter(self._points))
        try:
            tri = self._finite_triangle_at(start)
        except TriangulationCorruptionError:
            # The hinted vertex is not (yet) part of the triangle structure,
            # e.g. during a rebuild; start from any triangulated vertex.
            start = next(u for (u, _v) in self._apex if u != INFINITE_VERTEX)
            tri = self._finite_triangle_at(start)
        max_steps = 4 * max(len(self._apex), 8)
        for _ in range(max_steps):
            u, v, w = tri
            pu, pv, pw = self._points[u], self._points[v], self._points[w]
            moved = False
            for a, b, pa, pb in ((u, v, pu, pv), (v, w, pv, pw), (w, u, pw, pu)):
                if orient2d(pa, pb, point) < 0:
                    apex = self._apex[(b, a)]
                    if apex == INFINITE_VERTEX:
                        # point lies strictly beyond the hull edge (a, b): the
                        # ghost triangle's half-plane circumdisk contains it.
                        return (b, a, INFINITE_VERTEX)
                    tri = (b, a, apex)
                    moved = True
                    break
            if not moved:
                return tri
        return self._brute_force_seed(point)

    def _brute_force_seed(self, point: Point) -> Triangle:
        """Fallback seed search scanning every triangle (used only on walk failure)."""
        for (u, v), w in self._apex.items():
            if self._in_circumdisk((u, v, w), point):
                return (u, v, w)
        raise TriangulationCorruptionError(
            f"no triangle circumdisk contains {point!r}"
        )

    def _in_circumdisk(self, triangle: Triangle, point: Point) -> bool:
        u, v, w = triangle
        if INFINITE_VERTEX in triangle:
            # Rotate so the triangle reads (a, b, INFINITE): edge (a, b) is the
            # reversed hull edge, and the ghost circumdisk is the open
            # half-plane strictly left of a → b plus the open segment ab.
            if u == INFINITE_VERTEX:
                a, b = v, w
            elif v == INFINITE_VERTEX:
                a, b = w, u
            else:
                a, b = u, v
            pa, pb = self._points[a], self._points[b]
            o = orient2d(pa, pb, point)
            if o > 0:
                return True
            if o == 0:
                return segment_contains(pa, pb, point, strict=True)
            return False
        return incircle(self._points[u], self._points[v], self._points[w], point) > 0

    def _insert_into_triangulation(self, vertex_id: int, hint: Optional[int]) -> None:
        # Bowyer–Watson with the cavity tracked as a set of *directed edges*
        # (every directed edge belongs to exactly one triangle, so edge
        # membership is triangle membership without normalising triples) and
        # the boundary collected during the same breadth-first growth: an
        # edge whose outer triangle fails the circumdisk test is a boundary
        # edge.  This runs for every insertion, sequential or bulk — it is
        # the dominant cost of bulk construction.
        point = self._points[vertex_id]
        apex = self._apex
        points = self._points
        u, v, w = self._walk_to_seed(point, hint)
        cavity_edges: Set[DirectedEdge] = {(u, v), (v, w), (w, u)}
        stack: List[DirectedEdge] = [(u, v), (v, w), (w, u)]
        boundary: List[DirectedEdge] = []
        while stack:
            a, b = stack.pop()
            if (b, a) in cavity_edges:
                continue  # the outer triangle joined the cavity meanwhile
            outer_apex = apex.get((b, a))
            if outer_apex is None:
                boundary.append((a, b))
                continue
            # Circumdisk test of the outer triangle (b, a, outer_apex),
            # inlined from _in_circumdisk for this innermost loop; the rare
            # case of an infinite *edge endpoint* (reached when the cavity
            # already contains ghost triangles) keeps using the general
            # rotation logic of _in_circumdisk.
            if outer_apex == INFINITE_VERTEX:
                pb, pa = points[b], points[a]
                o = orient2d(pb, pa, point)
                in_disk = o > 0 or (
                    o == 0 and segment_contains(pb, pa, point, strict=True))
            elif a == INFINITE_VERTEX or b == INFINITE_VERTEX:
                in_disk = self._in_circumdisk((b, a, outer_apex), point)
            else:
                in_disk = incircle(points[b], points[a], points[outer_apex],
                                   point) > 0
            if in_disk:
                e2 = (a, outer_apex)
                e3 = (outer_apex, b)
                cavity_edges.add((b, a))
                cavity_edges.add(e2)
                cavity_edges.add(e3)
                stack.append(e2)
                stack.append(e3)
            else:
                boundary.append((a, b))
        for edge in cavity_edges:
            del apex[edge]
        for a, b in boundary:
            self._add_triangle(a, b, vertex_id)
        self._version += 1

    # ------------------------------------------------------------------
    # deletion
    # ------------------------------------------------------------------
    def remove(self, vertex_id: int) -> None:
        """Remove a vertex and restore the Delaunay property locally.

        Interior vertices are removed by re-triangulating their star polygon
        (Delaunay ear clipping); removing a hull vertex or shrinking below
        three non-collinear points triggers a rebuild of the triangulation.
        """
        if vertex_id not in self._points:
            raise KeyError(f"unknown vertex {vertex_id}")
        self._version += 1
        self._neighbor_cache.pop(vertex_id, None)
        point = self._points[vertex_id]
        if not self._has_triangulation:
            del self._points[vertex_id]
            self._coord_index.pop(point, None)
            self._fix_last_vertex()
            return
        if len(self._points) <= 4:
            self._delete_and_rebuild(vertex_id)
            return
        ring = self.star_ring(vertex_id)
        if INFINITE_VERTEX in ring:
            self._delete_and_rebuild(vertex_id)
            return
        # Remove the star triangles.
        k = len(ring)
        for i in range(k):
            self._remove_triangle(vertex_id, ring[i], ring[(i + 1) % k])
        new_triangles = self._triangulate_star_polygon(ring)
        if new_triangles is None:
            # Degenerate ear-clipping failure: restore nothing locally and
            # rebuild from scratch (correct, merely slower).
            for i in range(k):
                self._add_triangle(vertex_id, ring[i], ring[(i + 1) % k])
            self._delete_and_rebuild(vertex_id)
            return
        for tri in new_triangles:
            self._add_triangle(*tri)
        del self._points[vertex_id]
        self._coord_index.pop(point, None)
        self._vertex_edge.pop(vertex_id, None)
        self._fix_last_vertex()

    def _fix_last_vertex(self) -> None:
        if self._last_vertex not in self._points:
            self._last_vertex = next(iter(self._points)) if self._points else None

    def _delete_and_rebuild(self, vertex_id: int) -> None:
        point = self._points.pop(vertex_id)
        self._coord_index.pop(point, None)
        self._vertex_edge.pop(vertex_id, None)
        self.rebuild()
        self._fix_last_vertex()

    def rebuild(self) -> None:
        """Rebuild the whole triangulation from the current point set."""
        self._apex.clear()
        self._vertex_edge.clear()
        self._has_triangulation = False
        self._version += 1
        self._neighbor_cache.clear()
        self._try_bootstrap()

    def _triangulate_star_polygon(self, ring: List[int]) -> Optional[List[Triangle]]:
        """Delaunay ear-clipping of the (CCW) star polygon left by a deletion.

        Returns the list of CCW triangles filling the polygon, or ``None``
        when no valid ear can be found (caller falls back to a rebuild).
        """
        poly = list(ring)
        triangles: List[Triangle] = []
        while len(poly) > 3:
            n = len(poly)
            clipped = False
            for i in range(n):
                a, b, c = poly[i - 1], poly[i], poly[(i + 1) % n]
                pa, pb, pc = self._points[a], self._points[b], self._points[c]
                if orient2d(pa, pb, pc) <= 0:
                    continue
                empty = True
                for j in range(n):
                    other = poly[j]
                    if other in (a, b, c):
                        continue
                    if incircle(pa, pb, pc, self._points[other]) > 0:
                        empty = False
                        break
                if empty:
                    triangles.append((a, b, c))
                    del poly[i]
                    clipped = True
                    break
            if not clipped:
                return None
        a, b, c = poly
        pa, pb, pc = self._points[a], self._points[b], self._points[c]
        if orient2d(pa, pb, pc) <= 0:
            return None
        triangles.append((a, b, c))
        if len(triangles) != len(ring) - 2:
            return None
        return triangles

    # ------------------------------------------------------------------
    # adjacency and location
    # ------------------------------------------------------------------
    def star_ring(self, vertex_id: int) -> List[int]:
        """Neighbours of ``vertex_id`` in CCW order (may contain the infinite vertex)."""
        if vertex_id not in self._points:
            raise KeyError(f"unknown vertex {vertex_id}")
        edge = self._vertex_edge.get(vertex_id)
        if edge is None or edge not in self._apex or edge[0] != vertex_id:
            edge = self._rescan_vertex_edge(vertex_id)
        start = edge[1]
        ring = [start]
        current = self._apex[(vertex_id, start)]
        guard = 0
        while current != start:
            ring.append(current)
            current = self._apex[(vertex_id, current)]
            guard += 1
            if guard > len(self._apex):
                raise TriangulationCorruptionError(
                    f"non-closing star around vertex {vertex_id}"
                )
        return ring

    def neighbors(self, vertex_id: int) -> List[int]:
        """Finite Delaunay neighbours of a vertex (the Voronoi neighbours)."""
        if vertex_id not in self._points:
            raise KeyError(f"unknown vertex {vertex_id}")
        if not self._has_triangulation:
            return self._degenerate_neighbors(vertex_id)
        return [v for v in self.star_ring(vertex_id) if v != INFINITE_VERTEX]

    def degree(self, vertex_id: int) -> int:
        """Number of finite Delaunay neighbours of a vertex."""
        return len(self.neighbors(vertex_id))

    def degree_map(self) -> Dict[int, int]:
        """Degrees of *all* finite vertices in one pass over the edge map.

        Equivalent to ``{vid: self.degree(vid) for vid in self.vertex_ids()}``
        but linear in the number of edges instead of walking every vertex
        star; used by bulk construction to account attach messages.
        """
        if not self._has_triangulation:
            return {vid: len(self._degenerate_neighbors(vid))
                    for vid in self._points}
        degrees = {vid: 0 for vid in self._points}
        for (u, v) in self._apex:
            if u != INFINITE_VERTEX and v != INFINITE_VERTEX:
                degrees[u] += 1
        return degrees

    def is_hull_vertex(self, vertex_id: int) -> bool:
        """Whether the vertex lies on the convex hull of the point set."""
        if not self._has_triangulation:
            return True
        return INFINITE_VERTEX in self.star_ring(vertex_id)

    def incident_triangles(self, vertex_id: int) -> List[Triangle]:
        """Finite triangles incident to a vertex, in CCW order around it."""
        if not self._has_triangulation:
            return []
        ring = self.star_ring(vertex_id)
        k = len(ring)
        result = []
        for i in range(k):
            a, b = ring[i], ring[(i + 1) % k]
            if a == INFINITE_VERTEX or b == INFINITE_VERTEX:
                continue
            result.append((vertex_id, a, b))
        return result

    def _neighbor_block(self, vertex_id: int) -> List[Tuple[int, float, float]]:
        """``(id, x, y)`` triples of a vertex's finite neighbours, cached.

        The block is rebuilt lazily when the structure version moved since
        it was stored, so point location between mutations never re-walks a
        vertex star and never touches the apex map.
        """
        entry = self._neighbor_cache.get(vertex_id)
        if entry is not None and entry[0] == self._version:
            return entry[1]
        block = [(nb,) + self._points[nb] for nb in self.neighbors(vertex_id)]
        self._neighbor_cache[vertex_id] = (self._version, block)
        return block

    def nearest_vertex(self, point: Point, hint: Optional[int] = None) -> int:
        """Vertex whose Voronoi region contains ``point`` (greedy graph descent).

        Greedy descent on a Delaunay graph always reaches the closest vertex,
        which is exactly the owner of the Voronoi region containing the query
        point.  ``hint`` makes the search start near the answer.
        """
        if not self._points:
            raise ValueError("empty triangulation has no nearest vertex")
        px, py = float(point[0]), float(point[1])
        current = hint if hint is not None and hint in self._points else self._last_vertex
        if current is None or current not in self._points:
            current = next(iter(self._points))
        cx, cy = self._points[current]
        current_d = (cx - px) * (cx - px) + (cy - py) * (cy - py)
        guard = 0
        limit = len(self._points) + 8
        while True:
            best, best_d = current, current_d
            for nb, nx, ny in self._neighbor_block(current):
                d = (nx - px) * (nx - px) + (ny - py) * (ny - py)
                if d < best_d:
                    best, best_d = nb, d
            if best == current:
                return current
            current, current_d = best, best_d
            guard += 1
            if guard > limit:  # pragma: no cover - defensive
                raise TriangulationCorruptionError("nearest_vertex failed to converge")

    def nearest_vertices(self, points: Sequence[Point],
                         hints: Optional[Sequence[Optional[int]]] = None
                         ) -> List[int]:
        """Voronoi-region owners of a whole batch of query points.

        The batched form of :meth:`nearest_vertex` used for bulk long-link
        resolution: every descent runs over the version-cached neighbour
        blocks (warmed by the batch itself), and a query without an explicit
        hint starts from the previous query's answer, which for spatially
        correlated batches keeps each walk O(1).  Owners are exact and
        identical to per-point :meth:`nearest_vertex` calls with the same
        hints.
        """
        if not self._points:
            raise ValueError("empty triangulation has no nearest vertex")
        owners: List[int] = []
        previous: Optional[int] = None
        for index, point in enumerate(points):
            hint = hints[index] if hints is not None else None
            if hint is None:
                hint = previous
            previous = self.nearest_vertex(point, hint=hint)
            owners.append(previous)
        return owners

    def locate(self, point: Point, hint: Optional[int] = None) -> int:
        """Alias of :meth:`nearest_vertex` (Voronoi-region owner of ``point``)."""
        return self.nearest_vertex(point, hint)

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural and Delaunay invariants; raise on violation.

        Intended for tests and debugging; cost is linear in the number of
        triangles (plus predicate evaluations).
        """
        if not self._has_triangulation:
            if self._apex:
                raise TriangulationCorruptionError(
                    "degenerate triangulation should have no triangles"
                )
            return
        if len(self._apex) % 3 != 0:
            raise TriangulationCorruptionError("apex map size not a multiple of 3")
        for (u, v), w in self._apex.items():
            if self._apex.get((v, w)) != u or self._apex.get((w, u)) != v:
                raise TriangulationCorruptionError(
                    f"inconsistent triangle around edge ({u}, {v})"
                )
            if (v, u) not in self._apex:
                raise TriangulationCorruptionError(
                    f"edge ({u}, {v}) has no opposite triangle"
                )
        for tri in self.triangles():
            u, v, w = tri
            pu, pv, pw = self._points[u], self._points[v], self._points[w]
            if orient2d(pu, pv, pw) <= 0:
                raise TriangulationCorruptionError(f"triangle {tri} is not CCW")
            # Local Delaunay check across each edge implies the global property.
            for a, b in ((u, v), (v, w), (w, u)):
                opposite = self._apex.get((b, a))
                if opposite is None or opposite == INFINITE_VERTEX:
                    continue
                if incircle(pu, pv, pw, self._points[opposite]) > 0:
                    raise TriangulationCorruptionError(
                        f"Delaunay violation: {opposite} inside circumcircle of {tri}"
                    )
        # Every finite vertex must be reachable from the triangle structure.
        covered = {v for edge in self._apex for v in edge if v != INFINITE_VERTEX}
        covered.update(w for w in self._apex.values() if w != INFINITE_VERTEX)
        missing = set(self._points) - covered
        if missing:
            raise TriangulationCorruptionError(f"vertices missing from structure: {missing}")

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def degree_histogram(self) -> Dict[int, int]:
        """Histogram ``degree → number of vertices`` over finite vertices."""
        histogram: Dict[int, int] = {}
        for vid in self._points:
            d = self.degree(vid)
            histogram[d] = histogram.get(d, 0) + 1
        return histogram

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DelaunayTriangulation(vertices={len(self._points)}, "
            f"triangles={self.triangle_count() if self._has_triangulation else 0})"
        )

"""A small 2-D kd-tree used as an exact nearest-neighbour oracle.

The overlay never uses this structure (it locates points by greedy routing
on the Delaunay graph, as in the paper); the kd-tree exists as independent
ground truth for tests ("does greedy routing really end at the closest
object?") and for verifying range/radius query results.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.geometry.bounding import BoundingBox
from repro.geometry.point import Point, distance_sq

__all__ = ["KDTree"]


@dataclass
class _Node:
    index: int
    point: Point
    axis: int
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None


class KDTree:
    """Static 2-D kd-tree over an indexed point set.

    Parameters
    ----------
    points:
        Sequence of ``(x, y)`` points; results refer to indices into this
        sequence.

    Examples
    --------
    >>> tree = KDTree([(0.1, 0.1), (0.9, 0.9), (0.5, 0.4)])
    >>> tree.nearest((0.45, 0.45))
    2
    """

    def __init__(self, points: Sequence[Point]) -> None:
        self._points = [(float(x), float(y)) for x, y in points]
        indexed = list(enumerate(self._points))
        self._root = self._build(indexed, axis=0)

    def __len__(self) -> int:
        return len(self._points)

    def _build(self, items: List[Tuple[int, Point]], axis: int) -> Optional[_Node]:
        if not items:
            return None
        items.sort(key=lambda item: item[1][axis])
        mid = len(items) // 2
        index, point = items[mid]
        next_axis = 1 - axis
        return _Node(
            index=index,
            point=point,
            axis=axis,
            left=self._build(items[:mid], next_axis),
            right=self._build(items[mid + 1:], next_axis),
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def nearest(self, target: Point) -> int:
        """Index of the point closest to ``target`` (ties broken arbitrarily)."""
        if self._root is None:
            raise ValueError("nearest() on an empty KDTree")
        best_index = self._root.index
        best_d = distance_sq(self._root.point, target)

        def visit(node: Optional[_Node]) -> None:
            nonlocal best_index, best_d
            if node is None:
                return
            d = distance_sq(node.point, target)
            if d < best_d:
                best_index, best_d = node.index, d
            diff = target[node.axis] - node.point[node.axis]
            near, far = (node.left, node.right) if diff < 0 else (node.right, node.left)
            visit(near)
            if diff * diff < best_d:
                visit(far)

        visit(self._root)
        return best_index

    def query_radius(self, center: Point, radius: float) -> List[int]:
        """Indices of all points within (or exactly at) ``radius`` of ``center``."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        radius_sq = radius * radius
        result: List[int] = []

        def visit(node: Optional[_Node]) -> None:
            if node is None:
                return
            if distance_sq(node.point, center) <= radius_sq:
                result.append(node.index)
            diff = center[node.axis] - node.point[node.axis]
            if diff - radius <= 0:
                visit(node.left)
            if diff + radius >= 0:
                visit(node.right)

        visit(self._root)
        return sorted(result)

    def query_box(self, box: BoundingBox) -> List[int]:
        """Indices of all points inside an axis-aligned box (inclusive)."""
        result: List[int] = []

        def visit(node: Optional[_Node]) -> None:
            if node is None:
                return
            x, y = node.point
            if box.xmin <= x <= box.xmax and box.ymin <= y <= box.ymax:
                result.append(node.index)
            lo, hi = (box.xmin, box.xmax) if node.axis == 0 else (box.ymin, box.ymax)
            coordinate = node.point[node.axis]
            if lo <= coordinate:
                visit(node.left)
            if coordinate <= hi:
                visit(node.right)

        visit(self._root)
        return sorted(result)

    def k_nearest(self, target: Point, k: int) -> List[int]:
        """Indices of the ``k`` points closest to ``target`` (sorted by distance)."""
        if k <= 0:
            return []
        scored = sorted(
            range(len(self._points)),
            key=lambda i: distance_sq(self._points[i], target),
        )
        return scored[:k]

    def nearest_distance(self, target: Point) -> float:
        """Distance from ``target`` to its nearest point in the tree."""
        index = self.nearest(target)
        return math.sqrt(distance_sq(self._points[index], target))

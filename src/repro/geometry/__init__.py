"""Computational-geometry substrate for the VoroNet reproduction.

This package provides everything the overlay needs from geometry:

* :mod:`repro.geometry.point` — scalar and vectorised 2-D point helpers,
* :mod:`repro.geometry.predicates` — robust ``orient2d`` / ``incircle``
  predicates with an exact rational fallback (the degeneracy resilience the
  paper requires from the Sugihara–Iri construction),
* :mod:`repro.geometry.delaunay` — an incremental Delaunay triangulation
  supporting insertion *and* deletion, the structure whose adjacency defines
  the Voronoi-neighbour sets ``vn(o)``,
* :mod:`repro.geometry.voronoi` — explicit Voronoi cells (vertices, areas)
  clipped to the unit square,
* :mod:`repro.geometry.convex_hull` — convex hulls used by tests and cell
  clipping,
* :mod:`repro.geometry.locate_grid` — a grid-bucket index seeding point
  location and greedy descent with near-target hints,
* :mod:`repro.geometry.kdtree` — an exact nearest-neighbour oracle used as
  ground truth in tests and analysis,
* :mod:`repro.geometry.scipy_backend` — a :mod:`scipy.spatial` based
  cross-check backend used to validate our own kernel.
"""

from repro.geometry.point import (
    Point,
    distance,
    distance_sq,
    midpoint,
    pairwise_distances,
)
from repro.geometry.predicates import (
    Orientation,
    circumcenter,
    circumradius,
    incircle,
    orient2d,
    point_in_polygon,
    point_in_triangle,
)
from repro.geometry.delaunay import DelaunayTriangulation, DuplicatePointError
from repro.geometry.locate_grid import LocateGrid
from repro.geometry.voronoi import VoronoiCell, voronoi_cell, voronoi_cells
from repro.geometry.convex_hull import convex_hull
from repro.geometry.kdtree import KDTree
from repro.geometry.bounding import UNIT_SQUARE, BoundingBox, clip_polygon_to_box

__all__ = [
    "Point",
    "distance",
    "distance_sq",
    "midpoint",
    "pairwise_distances",
    "Orientation",
    "orient2d",
    "incircle",
    "circumcenter",
    "circumradius",
    "point_in_triangle",
    "point_in_polygon",
    "DelaunayTriangulation",
    "DuplicatePointError",
    "LocateGrid",
    "VoronoiCell",
    "voronoi_cell",
    "voronoi_cells",
    "convex_hull",
    "KDTree",
    "BoundingBox",
    "UNIT_SQUARE",
    "clip_polygon_to_box",
]

"""2-D point helpers.

Points throughout the library are plain ``(x, y)`` tuples of floats: they
are created in very large numbers (one per overlay object plus transient
routing targets), so we avoid per-point object overhead and keep the hot
distance computations as straight-line arithmetic.  Vectorised variants
operating on ``(n, 2)`` numpy arrays are provided for bulk analysis, per the
"vectorise the loops" guidance of the HPC guides.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Tuple

import numpy as np

__all__ = [
    "Point",
    "distance",
    "distance_sq",
    "midpoint",
    "lerp",
    "as_point",
    "points_to_array",
    "pairwise_distances",
    "distances_to",
    "nearly_equal",
]

#: Type alias for a 2-D point.
Point = Tuple[float, float]


def as_point(value: Sequence[float]) -> Point:
    """Coerce a length-2 sequence into a ``(float, float)`` tuple."""
    if len(value) != 2:
        raise ValueError(f"expected a 2-D point, got {value!r}")
    return (float(value[0]), float(value[1]))


def distance_sq(a: Point, b: Point) -> float:
    """Squared Euclidean distance between two points.

    Preferred over :func:`distance` in comparisons (greedy routing, nearest
    neighbour searches) because it avoids the square root.
    """
    dx = a[0] - b[0]
    dy = a[1] - b[1]
    return dx * dx + dy * dy


def distance(a: Point, b: Point) -> float:
    """Euclidean distance between two points."""
    return math.hypot(a[0] - b[0], a[1] - b[1])


def midpoint(a: Point, b: Point) -> Point:
    """Midpoint of the segment ``ab``."""
    return ((a[0] + b[0]) * 0.5, (a[1] + b[1]) * 0.5)


def lerp(a: Point, b: Point, t: float) -> Point:
    """Linear interpolation ``a + t (b - a)``."""
    return (a[0] + t * (b[0] - a[0]), a[1] + t * (b[1] - a[1]))


def nearly_equal(a: Point, b: Point, tolerance: float = 1e-12) -> bool:
    """Whether two points coincide up to ``tolerance`` per coordinate."""
    return abs(a[0] - b[0]) <= tolerance and abs(a[1] - b[1]) <= tolerance


def points_to_array(points: Iterable[Point]) -> np.ndarray:
    """Stack an iterable of points into an ``(n, 2)`` float64 array."""
    array = np.asarray(list(points), dtype=np.float64)
    if array.size == 0:
        return array.reshape(0, 2)
    if array.ndim != 2 or array.shape[1] != 2:
        raise ValueError(f"expected (n, 2) points, got shape {array.shape}")
    return array


def distances_to(points: np.ndarray, target: Point) -> np.ndarray:
    """Vectorised Euclidean distances from every row of ``points`` to ``target``."""
    pts = np.asarray(points, dtype=np.float64)
    delta = pts - np.asarray(target, dtype=np.float64)
    return np.hypot(delta[:, 0], delta[:, 1])


def pairwise_distances(points: np.ndarray) -> np.ndarray:
    """Full ``(n, n)`` matrix of pairwise Euclidean distances.

    Uses broadcasting rather than Python loops; intended for analysis of
    moderately sized point sets (the memory cost is ``O(n^2)``).
    """
    pts = np.asarray(points, dtype=np.float64)
    delta = pts[:, None, :] - pts[None, :, :]
    return np.hypot(delta[..., 0], delta[..., 1])


def nearest_index(points: np.ndarray, target: Point) -> int:
    """Index of the row of ``points`` closest to ``target`` (ties: lowest index)."""
    dists = distances_to(points, target)
    return int(np.argmin(dists))


def centroid(points: Iterable[Point]) -> Point:
    """Arithmetic mean of a non-empty collection of points."""
    pts: List[Point] = list(points)
    if not pts:
        raise ValueError("centroid of an empty point set is undefined")
    sx = sum(p[0] for p in pts)
    sy = sum(p[1] for p in pts)
    n = float(len(pts))
    return (sx / n, sy / n)

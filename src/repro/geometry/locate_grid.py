"""Grid-bucket point-location index.

Greedy descent on the Delaunay graph (:meth:`DelaunayTriangulation.nearest_vertex`)
is correct from *any* starting vertex, but its cost is proportional to the
graph distance between the start and the answer.  :class:`LocateGrid` keeps
every vertex bucketed in a uniform grid over the unit square so a query can
be seeded with a vertex from the bucket containing (or nearest to) the
query point — after which the descent finishes in O(1) expected steps for
well-distributed inputs.

The grid is intentionally *approximate*: :meth:`LocateGrid.hint` returns a
nearby vertex, not necessarily the nearest one, and the caller's exact
search (kernel descent, greedy routing) remains the source of truth.  That
makes staleness impossible to observe as long as membership is kept in
sync, which the overlay does on every insert, remove and bulk load.

The index also answers exact radius queries (:meth:`LocateGrid.within`),
which the bulk-construction path uses to discover close neighbours without
any per-object routing.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.geometry.point import Point, distance, distance_sq

__all__ = ["LocateGrid"]


class LocateGrid:
    """A uniform bucket grid over the unit square mapping cells to vertex ids.

    Parameters
    ----------
    target_occupancy:
        Desired mean number of vertices per occupied axis cell; the grid
        resolution is adapted (with hysteresis) as vertices come and go so
        each bucket holds roughly this many entries.

    Examples
    --------
    >>> grid = LocateGrid()
    >>> grid.insert(7, (0.25, 0.75))
    >>> grid.hint((0.3, 0.8))
    7
    """

    __slots__ = ("_target_occupancy", "_cells_per_axis", "_cells", "_points")

    def __init__(self, target_occupancy: float = 2.0) -> None:
        if target_occupancy <= 0.0:
            raise ValueError(f"target_occupancy must be positive, got {target_occupancy}")
        self._target_occupancy = float(target_occupancy)
        self._cells_per_axis = 1
        self._cells: Dict[Tuple[int, int], Set[int]] = {}
        self._points: Dict[int, Point] = {}

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._points)

    def __contains__(self, vertex_id: int) -> bool:
        return vertex_id in self._points

    @property
    def cells_per_axis(self) -> int:
        """Current grid resolution (cells per axis)."""
        return self._cells_per_axis

    def _cell_of(self, point: Point) -> Tuple[int, int]:
        m = self._cells_per_axis
        x = min(max(point[0], 0.0), 1.0)
        y = min(max(point[1], 0.0), 1.0)
        return (min(m - 1, int(x * m)), min(m - 1, int(y * m)))

    # ------------------------------------------------------------------
    # membership maintenance
    # ------------------------------------------------------------------
    def insert(self, vertex_id: int, point: Point) -> None:
        """Register a vertex at ``point`` (ids must be unique)."""
        if vertex_id in self._points:
            raise ValueError(f"vertex id {vertex_id} already indexed")
        self._points[vertex_id] = (float(point[0]), float(point[1]))
        self._cells.setdefault(self._cell_of(point), set()).add(vertex_id)
        self._maybe_resize()

    def discard(self, vertex_id: int) -> None:
        """Forget a vertex (no error if absent)."""
        point = self._points.pop(vertex_id, None)
        if point is None:
            return
        cell = self._cell_of(point)
        bucket = self._cells.get(cell)
        if bucket is not None:
            bucket.discard(vertex_id)
            if not bucket:
                del self._cells[cell]
        self._maybe_resize()

    def bulk_insert(self, items: Iterable[Tuple[int, Point]]) -> None:
        """Register a batch of ``(vertex_id, point)`` pairs."""
        for vertex_id, point in items:
            self.insert(vertex_id, point)

    def _maybe_resize(self) -> None:
        n = max(len(self._points), 1)
        desired = max(1, int(math.sqrt(n / self._target_occupancy)))
        # 2x hysteresis keeps rebuilds amortised O(1) per membership change.
        if desired > 2 * self._cells_per_axis or 2 * desired < self._cells_per_axis:
            self._rebuild(desired)

    def _rebuild(self, cells_per_axis: int) -> None:
        self._cells_per_axis = cells_per_axis
        self._cells = {}
        for vertex_id, point in self._points.items():
            self._cells.setdefault(self._cell_of(point), set()).add(vertex_id)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def hint(self, point: Point) -> Optional[int]:
        """A vertex close to ``point``, or ``None`` when the index is empty.

        The query point may lie outside the unit square (long-link targets
        do); it is clamped before the bucket search.  The search scans
        outward rings of cells and returns the best candidate from the
        first non-empty ring — a near-nearest vertex, which is all a point
        location seed needs.
        """
        if not self._points:
            return None
        point = (float(point[0]), float(point[1]))
        m = self._cells_per_axis
        cx, cy = self._cell_of(point)
        for radius in range(m):
            best = None
            best_d = math.inf
            for cell in self._ring(cx, cy, radius):
                for vertex_id in self._cells.get(cell, ()):
                    d = distance_sq(self._points[vertex_id], point)
                    if d < best_d:
                        best, best_d = vertex_id, d
            if best is not None:
                return best
        return next(iter(self._points))  # pragma: no cover - defensive

    def hints(self, points: Iterable[Point]) -> List[Optional[int]]:
        """Batched :meth:`hint`: one near-nearest seed per query point.

        The batched form used by bulk link resolution and the protocol
        simulator's ``bulk_join``; results are identical to per-point
        :meth:`hint` calls.

        Unlike the scalar path, cell coordinates are computed for the whole
        batch in one vectorised pass and the queries are then resolved
        *grouped by cell* — every query landing in the same bucket (the
        grid's micro-shard) shares one bucket lookup and one candidate
        materialisation.  Only queries whose own cell is empty fall back to
        the scalar ring search.  Tie-breaking matches the scalar path: the
        first strictly-smaller candidate in bucket iteration order wins.
        """
        pts = [(float(point[0]), float(point[1])) for point in points]
        if not pts:
            return []
        if not self._points:
            return [None] * len(pts)
        m = self._cells_per_axis
        arr = np.asarray(pts, dtype=np.float64)
        cells = (np.clip(arr, 0.0, 1.0) * m).astype(np.int64)
        np.clip(cells, 0, m - 1, out=cells)
        codes = cells[:, 0] * m + cells[:, 1]
        order = np.argsort(codes, kind="stable")
        sorted_codes = codes[order]
        # Group boundaries: positions where the cell code changes.
        boundaries = np.flatnonzero(np.diff(sorted_codes)) + 1
        starts = np.concatenate(([0], boundaries, [len(order)]))
        results: List[Optional[int]] = [None] * len(pts)
        points_map = self._points
        for g in range(len(starts) - 1):
            lo, hi = int(starts[g]), int(starts[g + 1])
            code = int(sorted_codes[lo])
            bucket = self._cells.get((code // m, code % m))
            group = order[lo:hi]
            if bucket:
                candidates = [(points_map[cid], cid) for cid in bucket]
                for q in group:
                    px, py = pts[q]
                    best = None
                    best_d = math.inf
                    for (vx, vy), cid in candidates:
                        d = (vx - px) ** 2 + (vy - py) ** 2
                        if d < best_d:
                            best, best_d = cid, d
                    results[q] = best
            else:
                for q in group:
                    results[q] = self.hint(pts[q])
        return results

    def _ring(self, cx: int, cy: int, radius: int) -> Iterable[Tuple[int, int]]:
        """Cells at Chebyshev distance ``radius`` from ``(cx, cy)``, in-grid."""
        m = self._cells_per_axis
        if radius == 0:
            yield (cx, cy)
            return
        for ix in range(max(0, cx - radius), min(m, cx + radius + 1)):
            for iy in (cy - radius, cy + radius):
                if 0 <= iy < m:
                    yield (ix, iy)
        for iy in range(max(0, cy - radius + 1), min(m, cy + radius)):
            for ix in (cx - radius, cx + radius):
                if 0 <= ix < m:
                    yield (ix, iy)

    def within(self, point: Point, radius: float) -> List[int]:
        """Ids of every indexed vertex within ``radius`` of ``point`` (exact).

        Scans only the buckets overlapping the disk's bounding box, then
        filters by exact Euclidean distance (``<= radius``, matching the
        close-neighbour rule of the overlay).
        """
        if radius < 0:
            raise ValueError("radius must be non-negative")
        if not self._points:
            return []
        px, py = float(point[0]), float(point[1])
        m = self._cells_per_axis
        x0 = min(m - 1, max(0, int(min(max(px - radius, 0.0), 1.0) * m)))
        x1 = min(m - 1, max(0, int(min(max(px + radius, 0.0), 1.0) * m)))
        y0 = min(m - 1, max(0, int(min(max(py - radius, 0.0), 1.0) * m)))
        y1 = min(m - 1, max(0, int(min(max(py + radius, 0.0), 1.0) * m)))
        point = (px, py)
        result: List[int] = []
        for ix in range(x0, x1 + 1):
            for iy in range(y0, y1 + 1):
                for vertex_id in self._cells.get((ix, iy), ()):
                    # math.hypot, not squared distance: exact parity with the
                    # overlay's close-neighbour rule on knife-edge distances.
                    if distance(self._points[vertex_id], point) <= radius:
                        result.append(vertex_id)
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LocateGrid(vertices={len(self._points)}, "
            f"cells_per_axis={self._cells_per_axis})"
        )

"""Explicit Voronoi cells derived from the Delaunay triangulation.

The overlay itself only ever needs Delaunay *adjacency* (the ``vn(o)``
sets), but examples, analysis and the region-hand-off logic benefit from
explicit cell geometry: the polygon of a region, its area, whether it is
bounded.  Cells are derived from the dual of the Delaunay triangulation
(circumcenters of incident triangles) and clipped to the unit square, the
attribute space of the paper.

Unbounded cells (hull objects) are closed off with far points along the
outward bisector rays before clipping; the resulting polygon is exact
inside the clipping box for convex cells, which Voronoi cells always are.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.geometry.bounding import UNIT_SQUARE, BoundingBox, clip_polygon_to_box, polygon_area
from repro.geometry.delaunay import INFINITE_VERTEX, DelaunayTriangulation
from repro.geometry.point import Point
from repro.geometry.predicates import circumcenter

__all__ = ["VoronoiCell", "voronoi_cell", "voronoi_cells"]

#: Length of the synthetic rays used to close unbounded cells before clipping.
_FAR = 64.0


@dataclass(frozen=True)
class VoronoiCell:
    """The Voronoi region of one object.

    Attributes
    ----------
    vertex_id:
        Id of the owning vertex in the triangulation (the overlay object id).
    site:
        Coordinates of the owning object.
    polygon:
        Cell boundary clipped to the clipping box, in counter-clockwise
        order.  Empty when the triangulation is degenerate (fewer than three
        non-collinear objects).
    bounded:
        Whether the *unclipped* cell is bounded (interior objects) or extends
        to infinity (hull objects).
    """

    vertex_id: int
    site: Point
    polygon: List[Point] = field(default_factory=list)
    bounded: bool = True

    @property
    def area(self) -> float:
        """Area of the clipped cell polygon."""
        return polygon_area(self.polygon)

    def contains(self, point: Point) -> bool:
        """Whether ``point`` lies inside the clipped cell polygon (convex test)."""
        poly = self.polygon
        n = len(poly)
        if n < 3:
            return False
        sign = 0
        for i in range(n):
            ax, ay = poly[i]
            bx, by = poly[(i + 1) % n]
            cross = (bx - ax) * (point[1] - ay) - (by - ay) * (point[0] - ax)
            if cross > 1e-12:
                current = 1
            elif cross < -1e-12:
                current = -1
            else:
                continue
            if sign == 0:
                sign = current
            elif sign != current:
                return False
        return True


def _outward_bisector(site: Point, hull_neighbor: Point, inner_reference: Point) -> Point:
    """Unit direction of the Voronoi ray along the bisector of a hull edge.

    The ray is perpendicular to ``site → hull_neighbor`` and points away from
    ``inner_reference`` (a vertex on the interior side of the hull edge).
    """
    ex, ey = hull_neighbor[0] - site[0], hull_neighbor[1] - site[1]
    length = math.hypot(ex, ey) or 1.0
    nx, ny = -ey / length, ex / length
    rx, ry = inner_reference[0] - site[0], inner_reference[1] - site[1]
    if nx * rx + ny * ry > 0:
        nx, ny = -nx, -ny
    return (nx, ny)


def voronoi_cell(triangulation: DelaunayTriangulation, vertex_id: int,
                 box: BoundingBox = UNIT_SQUARE) -> VoronoiCell:
    """Compute the (clipped) Voronoi cell of one vertex.

    Parameters
    ----------
    triangulation:
        The Delaunay triangulation of the current object set.
    vertex_id:
        Vertex whose cell is requested.
    box:
        Clipping box; defaults to the unit square.
    """
    site = triangulation.point(vertex_id)
    if not triangulation.has_triangulation:
        # Degenerate object sets have no well-defined planar subdivision;
        # report an empty polygon and mark the cell unbounded.
        return VoronoiCell(vertex_id=vertex_id, site=site, polygon=[], bounded=False)

    ring = triangulation.star_ring(vertex_id)
    bounded = INFINITE_VERTEX not in ring
    if bounded:
        centers: List[Point] = []
        k = len(ring)
        for i in range(k):
            a, b = ring[i], ring[(i + 1) % k]
            center = circumcenter(site, triangulation.point(a), triangulation.point(b))
            if center is not None:
                centers.append(center)
        polygon = clip_polygon_to_box(centers, box)
        return VoronoiCell(vertex_id=vertex_id, site=site, polygon=polygon, bounded=True)

    # Hull vertex: rotate the ring so it starts just after the infinite vertex,
    # leaving the finite fan ordered CCW from one hull neighbour to the other.
    idx = ring.index(INFINITE_VERTEX)
    fan = ring[idx + 1:] + ring[:idx]
    centers = []
    for i in range(len(fan) - 1):
        center = circumcenter(site, triangulation.point(fan[i]),
                              triangulation.point(fan[i + 1]))
        if center is not None:
            centers.append(center)
    first_nb = triangulation.point(fan[0])
    last_nb = triangulation.point(fan[-1])
    inner_first = triangulation.point(fan[1]) if len(fan) > 1 else last_nb
    inner_last = triangulation.point(fan[-2]) if len(fan) > 1 else first_nb
    dir_first = _outward_bisector(site, first_nb, inner_first)
    dir_last = _outward_bisector(site, last_nb, inner_last)
    anchor_first = centers[0] if centers else site
    anchor_last = centers[-1] if centers else site
    far_first = (anchor_first[0] + _FAR * dir_first[0], anchor_first[1] + _FAR * dir_first[1])
    far_last = (anchor_last[0] + _FAR * dir_last[0], anchor_last[1] + _FAR * dir_last[1])
    # Close the unbounded side with an extra far corner so the polygon wraps
    # around the site before clipping.
    mx, my = dir_first[0] + dir_last[0], dir_first[1] + dir_last[1]
    norm = math.hypot(mx, my)
    if norm < 1e-12:
        mx, my = -(last_nb[1] - first_nb[1]), (last_nb[0] - first_nb[0])
        norm = math.hypot(mx, my) or 1.0
    far_mid = (site[0] + _FAR * mx / norm, site[1] + _FAR * my / norm)
    polygon = [far_first] + centers + [far_last, far_mid]
    clipped = clip_polygon_to_box(polygon, box)
    return VoronoiCell(vertex_id=vertex_id, site=site, polygon=clipped, bounded=False)


def voronoi_cells(triangulation: DelaunayTriangulation,
                  box: BoundingBox = UNIT_SQUARE) -> Dict[int, VoronoiCell]:
    """Voronoi cells of every vertex, keyed by vertex id."""
    return {
        vid: voronoi_cell(triangulation, vid, box)
        for vid in triangulation.vertex_ids()
    }


def total_cell_area(cells: Dict[int, VoronoiCell]) -> float:
    """Sum of clipped cell areas (should cover the clipping box)."""
    return sum(cell.area for cell in cells.values())


def cell_of_point(triangulation: DelaunayTriangulation, point: Point,
                  hint: Optional[int] = None,
                  box: BoundingBox = UNIT_SQUARE) -> VoronoiCell:
    """The Voronoi cell containing ``point`` (owner found by nearest-vertex search)."""
    owner = triangulation.nearest_vertex(point, hint=hint)
    return voronoi_cell(triangulation, owner, box)

"""Morton-range sharded struct-of-arrays node store.

The overlay's substrate for million-object populations: object ids and
positions live in per-shard numpy blocks (struct-of-arrays), and each
shard carries its own **epoch** — the unit of routing-table invalidation.
A shard is a Morton (Z-order) prefix of the unit square: at ``level`` L
the square is a 2^L × 2^L grid whose cells are numbered along the Z-order
curve, giving ``4^L`` spatially compact, contiguously numbered shards.

Why Morton prefixes
-------------------
* **Locality.** Voronoi adjacency, close neighbours and the targeted
  invalidation sets produced by churn are all spatially local, so one
  join or leave touches O(1) shards regardless of overlay size — the
  property that lets per-shard epochs replace the global
  ``topology_epoch`` without weakening the invalidation contract.
* **Range-partitionable.** Shard indices are contiguous along the curve,
  so a ``[lo, hi)`` shard range is a connected region of the plane;
  parallel sweeps hand one range per worker and each worker's objects
  are spatially clustered (warm kernel caches, balanced close-neighbour
  work).
* **Cheap to compute.** The shard of a point is two clamps and a table
  lookup; batches are vectorised with the classic part-by-one bit
  spreading.

Level 0 is a single shard covering the whole square: per-shard epochs
then degrade exactly to the old global epoch, which is the flat-store
baseline the parity tests and ``bench_shard_scale`` compare against.

Epoch contract (per shard)
--------------------------
A cached routing entry records the epoch of its *object's* shard at
build time and is valid while the two still agree.  Mutations bump the
shards of every object whose forwarding candidates changed
(:meth:`ShardedNodeStore.bump_object_ids`, driven by
``VoroNet.invalidate_routing_tables(object_ids)``); overlay-wide events
(bulk loads, crash injection, external view surgery) bump every shard
(:meth:`ShardedNodeStore.bump_all`).  The epoch list is mutated in
place so hot loops can hoist a reference to it across a whole route.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["MAX_SHARD_LEVEL", "ShardedNodeStore", "morton_shard_codes"]

#: Deepest supported shard level: 4^8 = 65536 shards, 16-bit Morton codes.
MAX_SHARD_LEVEL = 8

#: Slot index width inside the packed (shard, slot) locator ints.
_SLOT_BITS = 40
_SLOT_MASK = (1 << _SLOT_BITS) - 1

#: 8-bit part-by-one spreading table: _SPREAD[b] interleaves the bits of
#: ``b`` with zeros (0b1011 -> 0b1000101), so a scalar Morton code is two
#: table lookups and one shift — no per-call bit twiddling.
_SPREAD: List[int] = []
for _b in range(256):
    _s = 0
    for _i in range(8):
        _s |= ((_b >> _i) & 1) << (2 * _i)
    _SPREAD.append(_s)
del _b, _i, _s


def _spread_bits_u32(values: np.ndarray) -> np.ndarray:
    """Vectorised part-by-one: interleave each value's bits with zeros."""
    v = values.astype(np.uint32)
    v = (v | (v << 8)) & np.uint32(0x00FF00FF)
    v = (v | (v << 4)) & np.uint32(0x0F0F0F0F)
    v = (v | (v << 2)) & np.uint32(0x33333333)
    v = (v | (v << 1)) & np.uint32(0x55555555)
    return v


def morton_shard_codes(points: np.ndarray, level: int) -> np.ndarray:
    """Morton shard index of every row of an ``(n, 2)`` position array.

    Positions are clamped into the unit square's grid, so boundary points
    (x == 1.0) land in the last cell instead of overflowing.
    """
    if level == 0:
        return np.zeros(len(points), dtype=np.int64)
    side = 1 << level
    cells = (points * side).astype(np.int64)
    np.clip(cells, 0, side - 1, out=cells)
    ix = _spread_bits_u32(cells[:, 0])
    iy = _spread_bits_u32(cells[:, 1])
    return (ix | (iy << np.uint32(1))).astype(np.int64)


class ShardedNodeStore:
    """Per-shard struct-of-arrays storage of object ids and positions.

    Each shard holds an amortised-growth ``int64`` id block and an aligned
    ``(n, 2) float64`` position block; removal is O(1) swap-remove.  A
    packed locator dict maps object id → (shard, slot) so membership
    queries and targeted epoch bumps are O(1) per object.

    The store is *secondary* state: the overlay's ``_nodes`` dict remains
    the source of truth for per-object protocol state (links, back
    registrations), while this store serves the routing cache's epoch
    domain, bulk geometry access and shard-range partitioning for
    parallel workers.  The two are kept in sync by the overlay's mutation
    entry points (insert / bulk_load / remove / crash injection).
    """

    __slots__ = ("_level", "_num_shards", "_side", "_epochs", "_ids",
                 "_positions", "_counts", "_locators", "_link_blocks")

    def __init__(self, level: int) -> None:
        if not 0 <= level <= MAX_SHARD_LEVEL:
            raise ValueError(
                f"shard level must lie in [0, {MAX_SHARD_LEVEL}], got {level}")
        self._level = level
        self._num_shards = 1 << (2 * level)
        self._side = 1 << level
        self._epochs: List[int] = [0] * self._num_shards
        self._ids: List[np.ndarray] = [
            np.empty(0, dtype=np.int64) for _ in range(self._num_shards)]
        self._positions: List[np.ndarray] = [
            np.empty((0, 2), dtype=np.float64) for _ in range(self._num_shards)]
        self._counts: List[int] = [0] * self._num_shards
        self._locators: Dict[int, int] = {}
        # shard → (epoch, ids, endpoints) — lazily materialised long-link
        # SoA blocks, cached against the shard epoch (see shard_link_block).
        self._link_blocks: Dict[int, Tuple[int, np.ndarray, np.ndarray]] = {}

    # ------------------------------------------------------------------
    # shard geometry
    # ------------------------------------------------------------------
    @property
    def level(self) -> int:
        """The Morton prefix depth (4**level shards)."""
        return self._level

    @property
    def num_shards(self) -> int:
        """Number of shards (``4 ** level``)."""
        return self._num_shards

    @property
    def epochs(self) -> List[int]:
        """The live per-shard epoch list (mutated in place, never replaced).

        Hot loops hoist this reference once per route; targeted bumps are
        visible through it immediately.
        """
        return self._epochs

    def shard_of_point(self, x: float, y: float) -> int:
        """Morton shard index of one point of the unit square."""
        side = self._side
        if side == 1:
            return 0
        ix = int(x * side)
        if ix >= side:
            ix = side - 1
        elif ix < 0:
            ix = 0
        iy = int(y * side)
        if iy >= side:
            iy = side - 1
        elif iy < 0:
            iy = 0
        return _SPREAD[ix] | (_SPREAD[iy] << 1)

    def shard_of(self, object_id: int) -> int:
        """Shard currently holding ``object_id`` (KeyError when absent)."""
        return self._locators[object_id] >> _SLOT_BITS

    def __contains__(self, object_id: int) -> bool:
        return object_id in self._locators

    def __len__(self) -> int:
        return len(self._locators)

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def insert(self, object_id: int, position: Tuple[float, float]) -> int:
        """Add one object; returns the shard it landed in."""
        if object_id in self._locators:
            raise ValueError(f"object id {object_id} already stored")
        shard = self.shard_of_point(position[0], position[1])
        slot = self._counts[shard]
        self._ensure_capacity(shard, slot + 1)
        self._ids[shard][slot] = object_id
        self._positions[shard][slot, 0] = position[0]
        self._positions[shard][slot, 1] = position[1]
        self._counts[shard] = slot + 1
        self._locators[object_id] = (shard << _SLOT_BITS) | slot
        return shard

    def bulk_insert(self, object_ids: Sequence[int],
                    positions: Sequence[Tuple[float, float]]) -> None:
        """Add a batch in one vectorised pass (shard codes, grouped appends)."""
        if not object_ids:
            return
        ids = np.asarray(object_ids, dtype=np.int64)
        pts = np.asarray(positions, dtype=np.float64).reshape(len(ids), 2)
        codes = morton_shard_codes(pts, self._level)
        order = np.argsort(codes, kind="stable")
        sorted_codes = codes[order]
        # Boundaries of each run of equal shard codes in the sorted batch.
        boundaries = np.flatnonzero(np.diff(sorted_codes)) + 1
        starts = np.concatenate(([0], boundaries))
        stops = np.concatenate((boundaries, [len(ids)]))
        locators = self._locators
        for start, stop in zip(starts, stops):
            shard = int(sorted_codes[start])
            chunk = order[start:stop]
            base = self._counts[shard]
            count = base + len(chunk)
            self._ensure_capacity(shard, count)
            self._ids[shard][base:count] = ids[chunk]
            self._positions[shard][base:count] = pts[chunk]
            self._counts[shard] = count
            shard_tag = shard << _SLOT_BITS
            for offset, object_id in enumerate(ids[chunk].tolist()):
                locators[object_id] = shard_tag | (base + offset)

    def discard(self, object_id: int) -> Optional[int]:
        """Remove one object (swap-remove); returns its shard, or ``None``."""
        locator = self._locators.pop(object_id, None)
        if locator is None:
            return None
        shard = locator >> _SLOT_BITS
        slot = locator & _SLOT_MASK
        last = self._counts[shard] - 1
        if slot != last:
            moved_id = int(self._ids[shard][last])
            self._ids[shard][slot] = moved_id
            self._positions[shard][slot] = self._positions[shard][last]
            self._locators[moved_id] = (shard << _SLOT_BITS) | slot
        self._counts[shard] = last
        return shard

    def _ensure_capacity(self, shard: int, needed: int) -> None:
        ids = self._ids[shard]
        if len(ids) >= needed:
            return
        capacity = max(8, len(ids) * 2, needed)
        new_ids = np.empty(capacity, dtype=np.int64)
        new_ids[: self._counts[shard]] = ids[: self._counts[shard]]
        self._ids[shard] = new_ids
        new_pos = np.empty((capacity, 2), dtype=np.float64)
        new_pos[: self._counts[shard]] = self._positions[shard][: self._counts[shard]]
        self._positions[shard] = new_pos

    # ------------------------------------------------------------------
    # epochs
    # ------------------------------------------------------------------
    def bump_object_ids(self, object_ids: Iterable[int]) -> int:
        """Bump the epoch of every shard holding one of ``object_ids``.

        Ids no longer stored (just-departed objects) are skipped; each
        touched shard is bumped exactly once per call, so the resulting
        epoch values do not depend on the iteration order of the input.
        Returns the number of distinct shards bumped.
        """
        locators = self._locators
        shards = set()
        for object_id in object_ids:
            locator = locators.get(object_id)
            if locator is not None:
                shards.add(locator >> _SLOT_BITS)
        epochs = self._epochs
        for shard in sorted(shards):
            epochs[shard] += 1
        return len(shards)

    def bump_all(self) -> None:
        """Bump every shard epoch (overlay-wide invalidation)."""
        epochs = self._epochs
        for shard in range(self._num_shards):
            epochs[shard] += 1

    # ------------------------------------------------------------------
    # per-shard block access
    # ------------------------------------------------------------------
    def shard_count(self, shard: int) -> int:
        """Number of objects currently stored in ``shard``."""
        return self._counts[shard]

    def shard_ids(self, shard: int) -> np.ndarray:
        """Id block of one shard (a live view; do not mutate)."""
        return self._ids[shard][: self._counts[shard]]

    def shard_positions(self, shard: int) -> np.ndarray:
        """``(n, 2)`` position block of one shard (a live view; do not mutate)."""
        return self._positions[shard][: self._counts[shard]]

    def occupancies(self) -> List[int]:
        """Object count per shard (shard-balance diagnostics)."""
        return list(self._counts)

    def shard_link_block(self, shard: int, overlay) -> Tuple[np.ndarray, np.ndarray]:
        """Long-link SoA block of one shard, cached against its epoch.

        Returns ``(ids, endpoints)``: the shard's object ids and an aligned
        ``(n, k)`` int64 array of their long-link endpoint ids (-1 where a
        link slot is unset).  Materialised lazily from the overlay's nodes
        and reused while the shard epoch is unchanged — the same validity
        domain as the routing tables, so consumers (bulk analytics,
        shard-range routing workers) never see links that churn already
        invalidated.
        """
        cached = self._link_blocks.get(shard)
        epoch = self._epochs[shard]
        if cached is not None and cached[0] == epoch:
            return cached[1], cached[2]
        ids = self.shard_ids(shard).copy()
        k = overlay.config.num_long_links
        endpoints = np.full((len(ids), max(k, 1)), -1, dtype=np.int64)
        nodes = overlay._nodes
        for row, object_id in enumerate(ids.tolist()):
            for index, link in enumerate(nodes[object_id].long_links):
                endpoints[row, index] = link.neighbor
        self._link_blocks[shard] = (epoch, ids, endpoints)
        return ids, endpoints

    # ------------------------------------------------------------------
    # range partitioning (parallel sweeps)
    # ------------------------------------------------------------------
    def shard_ranges(self, parts: int) -> List[Tuple[int, int]]:
        """Split the shard index space into ≤ ``parts`` balanced ranges.

        Ranges are contiguous ``[lo, hi)`` intervals of the Morton curve,
        balanced by current object count, so each worker of a parallel
        sweep receives a spatially connected region with roughly equal
        population.  Empty trailing ranges are dropped.
        """
        if parts < 1:
            raise ValueError(f"parts must be >= 1, got {parts}")
        total = len(self._locators)
        if total == 0 or parts == 1 or self._num_shards == 1:
            return [(0, self._num_shards)]
        target = total / parts
        ranges: List[Tuple[int, int]] = []
        lo = 0
        acc = 0
        for shard in range(self._num_shards):
            acc += self._counts[shard]
            if acc >= target and len(ranges) < parts - 1:
                ranges.append((lo, shard + 1))
                lo = shard + 1
                acc = 0
        if lo < self._num_shards:
            ranges.append((lo, self._num_shards))
        return [r for r in ranges if self._range_count(r) > 0] or [(0, self._num_shards)]

    def _range_count(self, shard_range: Tuple[int, int]) -> int:
        lo, hi = shard_range
        return sum(self._counts[lo:hi])

    def ids_in_range(self, lo: int, hi: int) -> np.ndarray:
        """Concatenated id blocks of shards ``[lo, hi)``."""
        blocks = [self.shard_ids(s) for s in range(lo, hi) if self._counts[s]]
        if not blocks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(blocks)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        occupied = sum(1 for c in self._counts if c)
        return (
            f"ShardedNodeStore(level={self._level}, shards={self._num_shards}, "
            f"occupied={occupied}, objects={len(self._locators)})"
        )

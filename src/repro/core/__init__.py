"""Core VoroNet overlay — the paper's primary contribution.

The main entry point is :class:`repro.core.overlay.VoroNet`; the other
modules implement its building blocks (configuration, per-object state,
neighbour views, routing, long-range links, maintenance, queries).
"""

from repro.core.config import VoroNetConfig
from repro.core.errors import (
    DuplicateObjectError,
    EmptyOverlayError,
    ObjectNotFoundError,
    OverlayFullError,
    RoutingError,
    VoroNetError,
)
from repro.core.long_range import (
    choose_long_range_target,
    choose_long_range_target_array,
    choose_long_range_targets,
)
from repro.core.neighbors import NeighborView
from repro.core.node import BackLink, LongLink, ObjectNode
from repro.core.overlay import VoroNet
from repro.core.queries import (
    QueryResult,
    point_query,
    radius_query,
    range_query,
    segment_query,
)
from repro.core.routing import (
    RouteResult,
    greedy_route,
    route_to_object,
    route_with_stopping_rule,
)
from repro.core.shards import MAX_SHARD_LEVEL, ShardedNodeStore, morton_shard_codes
from repro.core.stats import OperationStats, OverlayStats

__all__ = [
    "VoroNet",
    "VoroNetConfig",
    "VoroNetError",
    "ObjectNotFoundError",
    "DuplicateObjectError",
    "OverlayFullError",
    "EmptyOverlayError",
    "RoutingError",
    "ObjectNode",
    "LongLink",
    "BackLink",
    "NeighborView",
    "RouteResult",
    "greedy_route",
    "route_to_object",
    "route_with_stopping_rule",
    "choose_long_range_target",
    "choose_long_range_targets",
    "choose_long_range_target_array",
    "QueryResult",
    "point_query",
    "range_query",
    "radius_query",
    "segment_query",
    "OperationStats",
    "OverlayStats",
    "ShardedNodeStore",
    "morton_shard_codes",
    "MAX_SHARD_LEVEL",
]

"""The VoroNet overlay — the paper's primary contribution.

:class:`VoroNet` maintains a set of application objects placed in the unit
square, organised by the Voronoi tessellation of their positions and
augmented with Kleinberg-style long-range links.  It offers the operations
of Section 3:

* :meth:`VoroNet.insert` — object publication (greedy routing to the region
  owner, local region carving, close-neighbour discovery, long-link
  establishment),
* :meth:`VoroNet.remove` — departure (region hand-back, long-link
  delegation through the back-long-range registrations),
* :meth:`VoroNet.route` / :meth:`VoroNet.lookup` — greedy routing to an
  object or to an arbitrary point of the attribute space,
* range / radius queries (via :mod:`repro.core.queries`), the richer query
  mechanisms sketched in the paper's perspectives.

This class is the *oracle-mode* implementation: a single process holds the
shared Delaunay kernel standing in for each object's local, topologically
consistent Voronoi computation, which is the abstraction level the paper's
own simulator works at.  The message-level distributed execution, where
every object acts only on its local view, lives in
:mod:`repro.simulation.protocol` and is validated against this class in the
integration tests.

Epoch / invalidation contract
-----------------------------
Greedy forwarding is served from *flat routing tables*: per object and per
variant (with long links / Delaunay-only), a candidate-id array aligned
with a ``(k, 2)`` position array, equal at all times to the freshly
assembled :attr:`NeighborView.routing_neighbors` of that object.  Tables
are built lazily by :meth:`VoroNet.routing_table` and invalidated by
**per-shard epochs**: the substrate is a Morton-range
:class:`~repro.core.shards.ShardedNodeStore`, every cached entry records
the epoch of its object's shard at build time, and a mutation bumps only
the shards of the objects whose forwarding candidates it changed —
:meth:`insert`, :meth:`remove`, long-link establishment/churn
(:meth:`reset_long_links`) and the maintenance procedures
(close-neighbour registration, back-link hand-over, long-link
re-delegation) all pass their affected-id sets to
:meth:`invalidate_routing_tables`, so churn rebuild work scales with
shard occupancy instead of overlay size.  Overlay-wide events
(:meth:`bulk_load`, crash injection, external view surgery) call
:meth:`invalidate_routing_tables` with no arguments, which bumps every
shard; :attr:`VoroNet.topology_epoch` remains a monotone generation
counter of invalidation events (bumped exactly once per call) for
observers that only need "did anything change".  Code that mutates
:class:`~repro.core.node.ObjectNode` view state outside those entry points
MUST call :meth:`invalidate_routing_tables` afterwards — with the touched
object ids when it knows them, bare otherwise — or cached tables go
stale; the shared kernel, :class:`LocateGrid` and the sharded store are
kept exactly in sync by the same entry points.  Cache hits never change
results — with ``use_routing_cache`` disabled the same answers come from
per-hop view assembly, which is what the parity tests assert, and
``shard_level=0`` (one shard) reproduces the historical global-epoch
behaviour exactly.
"""

from __future__ import annotations

import itertools
import math
import numbers
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.config import VoroNetConfig
from repro.core.errors import (
    DuplicateObjectError,
    EmptyOverlayError,
    ObjectNotFoundError,
    OverlayFullError,
)
from repro.core.long_range import choose_long_range_target, choose_long_range_target_array
from repro.core.maintenance import bulk_integrate_objects, detach_object, integrate_new_object
from repro.core.neighbors import NeighborView
from repro.core.node import ObjectNode
from repro.core.routing import (RouteResult, greedy_route, missed_route,
                                route_to_object)
from repro.core.shards import ShardedNodeStore
from repro.core.stats import OverlayStats
from repro.geometry.bounding import UNIT_SQUARE, BoundingBox
from repro.geometry.delaunay import DelaunayTriangulation, DuplicatePointError
from repro.geometry.locate_grid import LocateGrid
from repro.geometry.point import Point, distance
from repro.geometry.predicates import point_in_polygon
from repro.geometry.voronoi import VoronoiCell, voronoi_cell
from repro.utils.rng import RandomSource

__all__ = ["VoroNet"]


class VoroNet:
    """An object-to-object overlay based on Voronoi tessellations.

    Parameters
    ----------
    config:
        Full configuration object.  Mutually exclusive with the keyword
        shortcuts below.
    n_max, num_long_links, seed:
        Shortcuts to build a default configuration without constructing a
        :class:`~repro.core.config.VoroNetConfig` explicitly.

    Examples
    --------
    >>> overlay = VoroNet(n_max=1000, seed=7)
    >>> a = overlay.insert((0.2, 0.3))
    >>> b = overlay.insert((0.8, 0.7))
    >>> overlay.route(a, b).owner == b
    True
    """

    def __init__(self, config: Optional[VoroNetConfig] = None, *,
                 n_max: Optional[int] = None,
                 num_long_links: Optional[int] = None,
                 seed: Optional[int] = None) -> None:
        if config is None:
            config = VoroNetConfig(
                n_max=n_max if n_max is not None else VoroNetConfig().n_max,
                num_long_links=(num_long_links if num_long_links is not None
                                else VoroNetConfig().num_long_links),
                seed=seed,
            )
        elif n_max is not None or num_long_links is not None or seed is not None:
            raise ValueError("pass either a config object or keyword shortcuts, not both")
        self._config = config
        self._rng = RandomSource(config.seed)
        self._triangulation = DelaunayTriangulation()
        self._locate_index = LocateGrid()
        self._nodes: Dict[int, ObjectNode] = {}
        self._next_id = 0
        self._join_counter = itertools.count()
        self._stats = OverlayStats()
        # Morton-sharded struct-of-arrays substrate: per-shard id/position
        # blocks plus the per-shard epoch list that scopes routing-table
        # invalidation (see the module docstring).
        self._store = ShardedNodeStore(config.effective_shard_level)
        # Epoch-invalidated flat routing tables (see the module docstring):
        # one dict per variant (with long links / Delaunay-only), each
        # object_id → [shard epoch at build, candidate ids | None,
        # (k, 2) positions | None, flat (id, x, y) scan block, shard index].
        # Two bare-int-keyed dicts instead of one tuple-keyed dict (the hot
        # loop probes once per forwarding hop), and the numpy arrays are
        # materialised lazily so join-heavy churn — which invalidates its
        # shard on every insert — never pays for arrays it immediately
        # throws away.
        self._topology_epoch = 0
        self._routing_tables: Dict[bool, Dict[int, list]] = {True: {}, False: {}}

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def config(self) -> VoroNetConfig:
        """The overlay's (immutable) configuration."""
        return self._config

    @property
    def stats(self) -> OverlayStats:
        """Aggregated operation statistics (joins, leaves, routes, queries)."""
        return self._stats

    @property
    def rng(self) -> RandomSource:
        """The overlay's internal random source (long-link targets, defaults)."""
        return self._rng

    @property
    def triangulation(self) -> DelaunayTriangulation:
        """The shared Delaunay kernel (read-only use recommended)."""
        return self._triangulation

    @property
    def locate_index(self) -> LocateGrid:
        """The grid-bucket locate index (read-only use recommended).

        Always kept in sync with the membership; whether it *seeds* point
        location and default entry points is governed by
        :attr:`VoroNetConfig.use_locate_index`.
        """
        return self._locate_index

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, object_id: int) -> bool:
        return object_id in self._nodes

    def object_ids(self) -> List[int]:
        """Ids of every object currently published in the overlay."""
        return list(self._nodes.keys())

    def node(self, object_id: int) -> ObjectNode:
        """The per-object state of ``object_id``."""
        try:
            return self._nodes[object_id]
        except KeyError:
            raise ObjectNotFoundError(object_id) from None

    def position_of(self, object_id: int) -> Point:
        """Coordinates of an object in the attribute space."""
        return self.node(object_id).position

    def positions(self) -> Dict[int, Point]:
        """Mapping of object id → position for every object."""
        return {oid: node.position for oid, node in self._nodes.items()}

    # ------------------------------------------------------------------
    # neighbour views
    # ------------------------------------------------------------------
    def voronoi_neighbors(self, object_id: int) -> List[int]:
        """The Voronoi-neighbour set ``vn(o)`` of an object."""
        if object_id not in self._nodes:
            raise ObjectNotFoundError(object_id)
        return self._triangulation.neighbors(object_id)

    def neighbor_view(self, object_id: int) -> NeighborView:
        """The full view (vn, cn, LRn, BLRn) of an object."""
        node = self.node(object_id)
        return NeighborView(
            object_id=object_id,
            voronoi=frozenset(self.voronoi_neighbors(object_id)),
            close=frozenset(node.close_neighbors),
            long_range=frozenset(node.long_link_neighbors()),
            back_long_range=frozenset(node.back_link_sources()),
        )

    @property
    def topology_epoch(self) -> int:
        """Monotone generation counter of view-relevant topology changes.

        Bumped exactly once by every :meth:`invalidate_routing_tables`
        call — insert/remove/bulk load, long-link churn and the
        maintenance procedures all flow through it — so "did anything
        change" observers keep working.  Cache *validity* is finer: each
        routing entry is checked against the epoch of its object's shard
        (:attr:`shard_store`), which targeted invalidation bumps only for
        the touched shards.
        """
        return self._topology_epoch

    @property
    def shard_store(self) -> ShardedNodeStore:
        """The Morton-sharded id/position store and its per-shard epochs."""
        return self._store

    def invalidate_routing_tables(self,
                                  object_ids: Optional[Iterable[int]] = None) -> None:
        """Invalidate cached routing tables, lazily, by bumping shard epochs.

        With ``object_ids`` given, only the shards holding those objects
        are bumped — the targeted form every churn-local mutation path
        uses, which is what keeps rebuild work proportional to shard
        occupancy.  Without arguments every shard is bumped (overlay-wide
        invalidation).  Either way the :attr:`topology_epoch` generation
        counter advances exactly once.

        The overlay's own mutation entry points call this; external code
        that mutates per-object view state directly (tests, protocol
        bridges, fault injectors) must call it too, per the module-level
        contract — with the affected ids when it knows them, bare when the
        damage is overlay-wide or unknown.
        """
        self._topology_epoch += 1
        if object_ids is None:
            self._store.bump_all()
        else:
            self._store.bump_object_ids(object_ids)

    def routing_table(self, object_id: int,
                      use_long_links: bool = True) -> Tuple[np.ndarray, np.ndarray]:
        """Flat greedy-forwarding table of one object.

        Returns ``(ids, positions)``: an int64 array of the candidate
        neighbour ids (``vn ∪ cn ∪ LRn`` minus self, or without ``LRn`` for
        the Delaunay-only variant, sorted for determinism) and the aligned
        ``(k, 2)`` float64 position array.  Cached against the epoch of
        the object's shard when the configuration enables the routing
        cache; always equal to a freshly assembled
        :attr:`~repro.core.neighbors.NeighborView.routing_neighbors`.
        """
        return self._entry_arrays(self._routing_entry(object_id, use_long_links))

    @staticmethod
    def _entry_arrays(entry: list) -> Tuple[np.ndarray, np.ndarray]:
        """Id/position arrays of a routing entry, materialised on demand.

        Arrays are built lazily into the entry itself so join-heavy churn
        (which invalidates on every insert) never pays for numpy arrays it
        immediately throws away; the hot loop passes the entry it already
        holds, avoiding a second cache resolution.
        """
        if entry[1] is None:
            block = entry[3]
            entry[1] = np.asarray([cid for cid, _x, _y in block],
                                  dtype=np.int64)
            entry[2] = np.asarray([(x, y) for _cid, x, y in block],
                                  dtype=np.float64).reshape(len(block), 2)
        return entry[1], entry[2]

    def _routing_block(self, object_id: int,
                       use_long_links: bool) -> List[Tuple[int, float, float]]:
        """Flat ``(id, x, y)`` scan block of one object's routing table.

        The list form of :meth:`routing_table`, cached in the same entry;
        the greedy hot loop scans it inline for the O(1)-size views of the
        paper and switches to the numpy arrays past a size threshold.  The
        cache-hit path is deliberately flat — one dict probe, one
        shard-epoch compare — because it runs once per forwarding hop.
        """
        entry = self._routing_tables[use_long_links].get(object_id)
        if entry is not None and entry[0] == self._store.epochs[entry[4]]:
            return entry[3]
        return self._routing_entry(object_id, use_long_links)[3]

    def _routing_entry(self, object_id: int, use_long_links: bool) -> list:
        entry = self._routing_tables[use_long_links].get(object_id)
        epochs = self._store.epochs
        if entry is not None and entry[0] == epochs[entry[4]]:
            return entry
        self._stats.routing_table_rebuilds += 1
        node = self.node(object_id)
        candidates = set(self._triangulation.neighbors(object_id))
        candidates.update(node.close_neighbors)
        if use_long_links:
            candidates.update(node.long_link_neighbors())
        candidates.discard(object_id)
        nodes = self._nodes
        try:
            block = [(cid,) + nodes[cid].position for cid in sorted(candidates)]
        except KeyError as exc:
            # A view referencing a departed object (e.g. crash damage before
            # repair) fails the same way the per-hop assembly path does.
            raise ObjectNotFoundError(exc.args[0]) from None
        shard = self._store.shard_of(object_id)
        entry = [epochs[shard], None, None, block, shard]
        if self._config.use_routing_cache:
            self._routing_tables[use_long_links][object_id] = entry
        return entry

    def degree_histogram(self) -> Dict[int, int]:
        """Histogram of Voronoi out-degrees ``|vn(o)|`` (the Figure 5 metric)."""
        histogram: Dict[int, int] = {}
        for object_id in self._nodes:
            degree = len(self.voronoi_neighbors(object_id))
            histogram[degree] = histogram.get(degree, 0) + 1
        return histogram

    def view_sizes(self) -> Dict[int, int]:
        """Total view size of every object (the O(1) quantity of Section 4.1)."""
        return {oid: self.neighbor_view(oid).size for oid in self._nodes}

    def voronoi_cell(self, object_id: int,
                     box: BoundingBox = UNIT_SQUARE) -> VoronoiCell:
        """The (clipped) Voronoi region of an object."""
        if object_id not in self._nodes:
            raise ObjectNotFoundError(object_id)
        return voronoi_cell(self._triangulation, object_id, box)

    # ------------------------------------------------------------------
    # ownership / location
    # ------------------------------------------------------------------
    def owner_of(self, point: Point, hint: Optional[int] = None) -> int:
        """The object whose Voronoi region contains ``point``.

        When no ``hint`` is given and the locate index is enabled, the
        kernel descent is seeded with a near-target vertex from the grid,
        making the location effectively constant time.  The result is the
        exact owner either way.
        """
        if not self._nodes:
            raise EmptyOverlayError("the overlay holds no objects")
        if hint is None and self._config.use_locate_index:
            hint = self._locate_index.hint(point)
        return self._triangulation.nearest_vertex(point, hint=hint)

    def query_entry_point(self, point: Point) -> int:
        """The object a request targeting ``point`` enters the overlay at.

        With the locate index enabled this is a nearby object (constant
        expected routing work); otherwise a uniformly random one, modelling
        a request arriving at an arbitrary peer as in the paper.
        """
        if not self._nodes:
            raise EmptyOverlayError("the overlay holds no objects")
        if self._config.use_locate_index:
            hint = self._locate_index.hint(point)
            if hint is not None:
                return hint
        return self._sample_object_id()

    def objects_within(self, point: Point, radius: float) -> List[int]:
        """Ids of every object within ``radius`` of ``point`` (exact, grid-backed)."""
        return self._locate_index.within(point, radius)

    def distance_to_region(self, object_id: int, point: Point) -> float:
        """Distance from ``point`` to the Voronoi region of ``object_id``.

        This is the ``DistanceToRegion`` primitive of Section 4.2.3; it
        returns 0 when the point already lies inside the region.
        """
        if object_id not in self._nodes:
            raise ObjectNotFoundError(object_id)
        if len(self._nodes) == 1:
            return 0.0
        if self.owner_of(point, hint=object_id) == object_id:
            return 0.0
        margin = 4.0
        cell = voronoi_cell(self._triangulation, object_id,
                            UNIT_SQUARE.expanded(margin))
        polygon = cell.polygon
        if len(polygon) < 2:
            return distance(self.position_of(object_id), point)
        return _distance_to_polygon(point, polygon)

    # ------------------------------------------------------------------
    # object publication (join)
    # ------------------------------------------------------------------
    def insert(self, position: Point, object_id: Optional[int] = None, *,
               introducer: Optional[int] = None,
               hinted: bool = False,
               host: Optional[str] = None) -> int:
        """Publish a new object at ``position`` and return its id.

        The join follows Section 3.3: greedy routing from the ``introducer``
        (any already-published object; a random one when omitted) locates
        the owner of the region containing ``position``; the owner carves
        out the new region and hands over the relevant state; the new object
        then discovers its close neighbours and establishes its long-range
        links by routing to freshly drawn target points.

        With ``hinted=True`` (and the locate index enabled) the default
        introducer is taken from the locate index instead of drawn at
        random, so the join's routing phase is O(1) expected hops.  The
        resulting structure is identical — only the reported join routing
        cost changes — but the default stays ``False`` so measured join
        costs keep reflecting the paper's random-introducer protocol.

        Raises
        ------
        OverlayFullError
            When the overlay already holds ``n_max`` objects and overflow is
            not allowed.
        DuplicateObjectError
            When an object already sits at exactly the same coordinates or
            the requested id is in use.
        """
        if len(self._nodes) >= self._config.n_max and not self._config.allow_overflow:
            raise OverlayFullError(self._config.n_max)
        position = (float(position[0]), float(position[1]))
        if not UNIT_SQUARE.contains(position):
            raise ValueError(f"object position {position} outside the unit square")
        if object_id is None:
            object_id = self._next_id
        elif object_id in self._nodes or object_id < 0:
            raise DuplicateObjectError(f"object id {object_id} is invalid or in use")

        route_hops = 0
        messages = 0
        if self._nodes:
            if introducer is not None:
                start = introducer
                if start not in self._nodes:
                    raise ObjectNotFoundError(start)
            elif hinted:
                start = self.query_entry_point(position)
            else:
                # Section 3.3's default: the join routes from a uniformly
                # random introducer, so measured join costs reflect the
                # paper's protocol.  Batch construction that does not need
                # per-join costs should use bulk_load instead.
                start = self._sample_object_id()
            route = greedy_route(self, start, position)
            route_hops = route.hops
            messages += route.messages
            hint = route.owner
        else:
            hint = None

        try:
            self._triangulation.insert(position, vertex_id=object_id, hint=hint)
        except DuplicatePointError as exc:
            raise DuplicateObjectError(
                f"an object already sits at {position} (id {exc.existing_vertex})"
            ) from exc
        node = ObjectNode(
            object_id=object_id,
            position=position,
            host=host,
            join_order=next(self._join_counter),
        )
        self._nodes[object_id] = node
        # Commit the id allocation only now that the node is published: a
        # failed insert must never burn (and permanently skip) an auto id.
        self._next_id = max(self._next_id, object_id + 1)
        self._locate_index.insert(object_id, position)
        self._store.insert(object_id, position)
        # The carve changed adjacency only inside the new region's star:
        # the new object and its Voronoi neighbours (every destroyed or
        # created Delaunay edge has both endpoints there).
        self.invalidate_routing_tables(
            [object_id, *self._triangulation.neighbors(object_id)])
        messages += integrate_new_object(self, object_id)

        # Long-range links: drawn and resolved by routing from the new object.
        link_messages = self._establish_long_links(object_id)
        messages += link_messages

        self._stats.joins.record(route_hops, messages)
        return object_id

    def _establish_long_links(self, object_id: int) -> int:
        """Draw and resolve the ``num_long_links`` long links of an object."""
        node = self.node(object_id)
        d_min = self._config.effective_d_min
        messages = 0
        for index in range(self._config.num_long_links):
            target = choose_long_range_target(node.position, d_min, self._rng)
            if len(self._nodes) == 1:
                endpoint = object_id
                hops = 0
            else:
                route = greedy_route(self, object_id, target)
                endpoint = route.owner
                hops = route.hops
            node.set_long_link(index, target, endpoint)
            # Each installed link changes this object's own forwarding
            # candidates (and only its own: back registrations are not
            # routed on), and the next link is resolved by routing *from*
            # this object — invalidate before that route runs.
            self.invalidate_routing_tables([object_id])
            if self._config.maintain_back_links:
                # Register the reverse pointer even when the owner is the
                # object itself: a later joiner closer to the target must be
                # able to steal the registration and re-point the link.
                self.node(endpoint).add_back_link(object_id, index, target)
                if endpoint != object_id:
                    messages += 1
            messages += hops
            self._stats.long_link_searches.record(hops, hops + 1)
        return messages

    def reset_long_links(self, object_id: int) -> int:
        """Redraw and re-resolve every long link of one object (link churn).

        Deregisters the object's current links at their endpoints, draws
        fresh Choose-LRT targets and resolves them by greedy routing, as a
        re-publication of the links would.  Returns the message cost; used
        by churn workloads and the cache-invalidation stress tests.
        """
        node = self.node(object_id)
        messages = 0
        if self._config.maintain_back_links:
            for index, link in enumerate(node.long_links):
                # Self-pointing links also carry a (local) back
                # registration — deregister those too, message-free.
                if link.neighbor in self._nodes:
                    self._nodes[link.neighbor].remove_back_link(object_id, index)
                    if link.neighbor != object_id:
                        messages += 1
        node.long_links.clear()
        self.invalidate_routing_tables([object_id])
        return messages + self._establish_long_links(object_id)

    def _sample_object_id(self) -> int:
        """A uniformly random already-published object id (the introducer)."""
        ids = list(self._nodes.keys())
        return ids[self._rng.integer(0, len(ids))]

    # ------------------------------------------------------------------
    # departure (leave)
    # ------------------------------------------------------------------
    def remove(self, object_id: int) -> None:
        """Withdraw an object from the overlay (Section 3.3's leave).

        Long links hosted at the departing object are delegated to the
        Voronoi neighbour now owning their target point, the object's own
        links are deregistered, close neighbours are notified, and the
        region is handed back to the neighbours.
        """
        if object_id not in self._nodes:
            raise ObjectNotFoundError(object_id)
        # Captured before the kernel removal: the departing region's star
        # is the only place adjacency changes, so these ex-neighbours (who
        # become adjacent to each other as the region is handed back) are
        # the whole invalidation set of the removal itself; detach_object
        # bumps the maintenance-affected ids (close drops, delegated link
        # sources/holders) separately.
        ex_neighbors = self._triangulation.neighbors(object_id)
        messages = detach_object(self, object_id)
        self._triangulation.remove(object_id)
        del self._nodes[object_id]
        self._locate_index.discard(object_id)
        self._store.discard(object_id)
        self._routing_tables[True].pop(object_id, None)
        self._routing_tables[False].pop(object_id, None)
        self.invalidate_routing_tables(ex_neighbors)
        self._stats.leaves.record(0, messages)

    # ------------------------------------------------------------------
    # routing and lookups
    # ------------------------------------------------------------------
    def route(self, source: int, target: Union[int, Point], *,
              use_long_links: bool = True) -> RouteResult:
        """Route a message from ``source`` to an object id or a point.

        Any integral ``target`` — Python ``int`` or :class:`numbers.Integral`
        subclass such as a numpy integer — is treated as an object id; a
        length-2 sequence is treated as a point of the attribute space.
        """
        if isinstance(target, numbers.Integral) and not isinstance(target, bool):
            result = route_to_object(self, source, int(target),
                                     use_long_links=use_long_links)
        else:
            result = greedy_route(self, source, target,  # type: ignore[arg-type]
                                  use_long_links=use_long_links)
        self._stats.routes.record(result.hops, result.messages)
        return result

    def lookup(self, point: Point, start: Optional[int] = None) -> RouteResult:
        """Find the object responsible for ``point`` by greedy routing.

        ``start`` defaults to the locate-index entry point when the index is
        enabled (constant expected hops), otherwise to a random object,
        modelling a request entering the overlay at an arbitrary peer.  The
        returned owner is exact in both cases.
        """
        if not self._nodes:
            raise EmptyOverlayError("the overlay holds no objects")
        if start is None:
            start = self.query_entry_point(point)
        result = greedy_route(self, start, point)
        self._stats.queries.record(result.hops, result.messages)
        return result

    def route_many(self, pairs: Iterable[Tuple[int, Union[int, Point]]], *,
                   use_long_links: bool = True,
                   missing: str = "raise") -> List[RouteResult]:
        """Route a batch of ``(source, target)`` messages.

        The batched form used by the experiment runner for route-length
        sweeps and by the serving layer's traffic drivers; results are
        identical to calling :meth:`route` per pair.

        ``missing`` selects what happens when a pair references an object
        that has departed (a schedule sampled before a remove, or churn
        interleaved with the batch):

        * ``"raise"`` (default) — propagate :class:`ObjectNotFoundError`,
          the historical sweep behaviour where a departed endpoint means a
          broken experiment.
        * ``"miss"`` — answer that pair with the defined miss result of
          :func:`~repro.core.routing.missed_route` (``success=False``,
          ``owner=MISS_OWNER``) and keep serving the rest of the batch,
          the behaviour sustained traffic over a churning overlay needs.
        """
        if missing not in ("raise", "miss"):
            raise ValueError(
                f'missing must be "raise" or "miss", got {missing!r}')
        if missing == "raise":
            return [self.route(source, target, use_long_links=use_long_links)
                    for source, target in pairs]
        results: List[RouteResult] = []
        for source, target in pairs:
            target_is_id = (isinstance(target, numbers.Integral)
                            and not isinstance(target, bool))
            if (int(source) not in self
                    or (target_is_id and int(target) not in self)):
                results.append(missed_route(source, target))
                self._stats.query_misses += 1
                continue
            results.append(self.route(source, target,
                                      use_long_links=use_long_links))
        return results

    def lookup_many(self, points: Iterable[Point],
                    start: Optional[int] = None) -> List[RouteResult]:
        """Resolve a batch of point lookups (see :meth:`lookup`)."""
        return [self.lookup(point, start=start) for point in points]

    # ------------------------------------------------------------------
    # bulk helpers and exports
    # ------------------------------------------------------------------
    def insert_many(self, positions: Iterable[Point]) -> List[int]:
        """Publish many objects in sequence; returns their ids in order.

        Every object joins through the full routed protocol (random or
        grid-hinted introducer, greedy route, routed long links).  For
        building large overlays from a known batch of positions,
        :meth:`bulk_load` produces the same structure orders of magnitude
        faster.
        """
        return [self.insert(position) for position in positions]

    def bulk_load(self, positions: Iterable[Point]) -> List[int]:
        """Publish a batch of objects through the bulk-construction fast path.

        Instead of ``N`` independent routed joins, the batch is:

        1. inserted into the Delaunay kernel in one spatially sorted pass
           with last-insert hints (each insertion walks O(1) triangles),
        2. attached as overlay nodes and indexed in the locate grid,
        3. given its close neighbours by exact grid radius queries (no
           per-object neighbourhood exploration),
        4. given its long links from one vectorised Choose-LRT draw
           (:func:`~repro.core.long_range.choose_long_range_target_array`),
           each endpoint resolved by hinted kernel descent instead of a
           greedy overlay route.

        The resulting Voronoi adjacency and close-neighbour sets are
        identical to sequential insertion of the same positions, and long
        links follow the same distribution (drawn from the overlay's RNG in
        a different order).  Loading into a non-empty overlay is supported:
        back-long-range registrations whose target now falls closer to a
        new object are handed over exactly as a routed join would.

        Ids are assigned in input order and returned in input order.

        Raises
        ------
        OverlayFullError
            When the batch would exceed ``n_max`` and overflow is not
            allowed (checked up front; nothing is inserted).
        DuplicateObjectError
            On a position duplicating an existing object or another batch
            entry (checked up front; nothing is inserted).
        """
        batch: List[Point] = []
        for position in positions:
            point = (float(position[0]), float(position[1]))
            if not UNIT_SQUARE.contains(point):
                raise ValueError(f"object position {point} outside the unit square")
            batch.append(point)
        if not batch:
            return []
        if (len(self._nodes) + len(batch) > self._config.n_max
                and not self._config.allow_overflow):
            raise OverlayFullError(self._config.n_max)

        ids = list(range(self._next_id, self._next_id + len(batch)))
        try:
            # bulk_insert validates the whole batch (against existing
            # vertices and within itself) before mutating anything.
            self._triangulation.bulk_insert(batch, vertex_ids=ids)
        except DuplicatePointError as exc:
            # exc.existing_vertex is a published object for a clash with the
            # overlay and the first occurrence's prospective id for an
            # in-batch duplicate.
            raise DuplicateObjectError(
                f"duplicate position {exc.point} "
                f"(conflicts with object id {exc.existing_vertex})"
            ) from exc
        for object_id, point in zip(ids, batch):
            self._nodes[object_id] = ObjectNode(
                object_id=object_id,
                position=point,
                join_order=next(self._join_counter),
            )
        self._locate_index.bulk_insert(zip(ids, batch))
        self._store.bulk_insert(ids, batch)
        self._next_id = ids[-1] + 1
        # A batch lands everywhere at once; overlay-wide invalidation is
        # the honest scope (and a no-op cost: tables are built lazily).
        self.invalidate_routing_tables()

        bulk_integrate_objects(self, ids)
        self._establish_long_links_bulk(ids, batch)

        # Join accounting: zero routing hops (the whole point of the fast
        # path); messages are what the distributed attach would minimally
        # cost — region updates, close declarations, link registrations.
        degrees = self._triangulation.degree_map()
        for object_id in ids:
            node = self._nodes[object_id]
            attach_messages = (
                degrees[object_id]
                + len(node.close_neighbors)
                + len(node.long_links)
            )
            self._stats.joins.record(0, attach_messages)
        return ids

    def _establish_long_links_bulk(self, ids: Sequence[int],
                                   batch: Sequence[Point]) -> None:
        """Vectorised long-link establishment for a bulk-loaded batch."""
        k = self._config.num_long_links
        if k == 0 or not ids:
            return
        targets = choose_long_range_target_array(
            np.asarray(batch, dtype=np.float64),
            self._config.effective_d_min, k, self._rng)
        locate = self._locate_index
        # One batched kernel descent over all n·k targets: grid hints seed
        # every walk, the shared neighbour-block cache stays warm across the
        # whole batch, and endpoints are identical to per-target calls.
        flat = targets.reshape(-1, 2)
        flat_targets = [(float(x), float(y)) for x, y in flat]
        endpoints = self._triangulation.nearest_vertices(
            flat_targets, hints=locate.hints(flat_targets))
        for i, object_id in enumerate(ids):
            node = self._nodes[object_id]
            for index in range(k):
                target = flat_targets[i * k + index]
                endpoint = endpoints[i * k + index]
                node.set_long_link(index, target, endpoint)
                if self._config.maintain_back_links:
                    self._nodes[endpoint].add_back_link(object_id, index, target)
                self._stats.long_link_searches.record(0, 1)
        self.invalidate_routing_tables()

    def random_object_id(self) -> int:
        """A uniformly random published object id."""
        if not self._nodes:
            raise EmptyOverlayError("the overlay holds no objects")
        return self._sample_object_id()

    def to_networkx(self):
        """Export the overlay as a :class:`networkx.DiGraph`.

        Nodes carry their position (``pos``); edges carry their kind
        (``voronoi``, ``close`` or ``long``).  Voronoi and close edges are
        emitted in both directions (they are symmetric relations).
        """
        import networkx as nx

        graph = nx.DiGraph()
        for object_id, node in self._nodes.items():
            graph.add_node(object_id, pos=node.position)
        for object_id, node in self._nodes.items():
            for neighbor in self.voronoi_neighbors(object_id):
                graph.add_edge(object_id, neighbor, kind="voronoi")
            for neighbor in node.close_neighbors:
                graph.add_edge(object_id, neighbor, kind="close")
            for link in node.long_links:
                if link.neighbor != object_id:
                    graph.add_edge(object_id, link.neighbor, kind="long")
        return graph

    def check_consistency(self) -> List[str]:
        """Run the cross-object invariant checks; returns a list of problems."""
        from repro.core.maintenance import view_consistency_report

        problems = view_consistency_report(self)
        try:
            self._triangulation.validate()
        except Exception as exc:  # pragma: no cover - defensive
            problems.append(f"triangulation invalid: {exc}")
        problems.extend(self._store_consistency_report())
        return problems

    def _store_consistency_report(self) -> List[str]:
        """Check the sharded store mirrors the node membership exactly."""
        problems: List[str] = []
        store = self._store
        if len(store) != len(self._nodes):
            problems.append(
                f"shard store holds {len(store)} objects, overlay {len(self._nodes)}")
        for object_id, node in self._nodes.items():
            if object_id not in store:
                problems.append(f"{object_id}: missing from the shard store")
                continue
            expected = store.shard_of_point(node.position[0], node.position[1])
            if store.shard_of(object_id) != expected:
                problems.append(
                    f"{object_id}: stored in shard {store.shard_of(object_id)}, "
                    f"position maps to {expected}")
        return problems

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"VoroNet(objects={len(self._nodes)}, n_max={self._config.n_max}, "
            f"long_links={self._config.num_long_links})"
        )


def _distance_to_polygon(point: Point, polygon: Sequence[Point]) -> float:
    """Distance from a point to a polygon (0 if inside or on the boundary).

    Boundary inclusion matters: ``DistanceToRegion`` must report 0 for a
    point the object owns, and points on a shared Voronoi edge are owned by
    both incident objects.  A bare ray cast calls such points outside and
    returns a small positive distance, perturbing the Algorithm-5 stopping
    rule; :func:`repro.geometry.predicates.point_in_polygon` classifies
    them exactly.
    """
    if point_in_polygon(point, polygon, include_boundary=True):
        return 0.0
    best = math.inf
    n = len(polygon)
    for i in range(n):
        a = polygon[i]
        b = polygon[(i + 1) % n]
        best = min(best, _distance_to_segment(point, a, b))
    return best


def _distance_to_segment(point: Point, a: Point, b: Point) -> float:
    ax, ay = a
    bx, by = b
    px, py = point
    dx, dy = bx - ax, by - ay
    length_sq = dx * dx + dy * dy
    if length_sq == 0.0:
        return math.hypot(px - ax, py - ay)
    t = max(0.0, min(1.0, ((px - ax) * dx + (py - ay) * dy) / length_sq))
    cx, cy = ax + t * dx, ay + t * dy
    return math.hypot(px - cx, py - cy)

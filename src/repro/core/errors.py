"""Exception hierarchy of the VoroNet core."""

from __future__ import annotations

__all__ = [
    "VoroNetError",
    "ObjectNotFoundError",
    "DuplicateObjectError",
    "OverlayFullError",
    "EmptyOverlayError",
    "RoutingError",
]


class VoroNetError(Exception):
    """Base class for every error raised by the overlay."""


class ObjectNotFoundError(VoroNetError, KeyError):
    """Raised when an operation references an object id not in the overlay."""

    def __init__(self, object_id: int) -> None:
        super().__init__(f"object {object_id} is not in the overlay")
        self.object_id = object_id


class DuplicateObjectError(VoroNetError, ValueError):
    """Raised when inserting an object whose id or position already exists."""


class OverlayFullError(VoroNetError, RuntimeError):
    """Raised when inserting beyond the configured ``n_max``.

    The paper's routing bound is only guaranteed up to ``N_max`` (the value
    ``d_min`` was derived from); exceeding it silently would invalidate the
    poly-logarithmic guarantee, so the overlay refuses by default.  The
    configuration flag ``allow_overflow`` relaxes this for experiments on
    the dynamic-``N_max`` perspective discussed in the paper's conclusion.
    """

    def __init__(self, n_max: int) -> None:
        super().__init__(
            f"overlay already holds n_max={n_max} objects; "
            "increase n_max or enable allow_overflow"
        )
        self.n_max = n_max


class EmptyOverlayError(VoroNetError, RuntimeError):
    """Raised when routing or querying an overlay with no objects."""


class RoutingError(VoroNetError, RuntimeError):
    """Raised when greedy routing fails to make progress (should not happen)."""

"""Greedy routing over the VoroNet neighbour views.

Routing (Section 3.2 and 4.2.3) is deliberately simple: the object holding
a message for target point ``P`` forwards it to whichever of its neighbours
— Voronoi, close, or long-range — is closest to ``P`` in Euclidean
distance, stopping when no neighbour improves on the current object.
Because the Voronoi neighbours alone already guarantee that greedy descent
reaches the object whose region contains ``P``, the algorithm always
terminates at the correct owner; the long links are pure acceleration and
give the ``O(log² N_max)`` expected hop count of Lemma 5.

Two termination rules are provided:

* :func:`greedy_route` runs until no neighbour is closer — the rule used to
  measure route lengths in the paper's evaluation (Figures 6–8);
* :func:`route_with_stopping_rule` implements the weaker stopping condition
  of Algorithm 5 (``d(z, Target) ≤ 1/3 · d(Target, Current)`` or
  ``d(Target, Current) ≤ d_min``), the form used by object insertion,
  long-link establishment and query handling, which Lemma 4 proves is
  enough to finish the operation locally.
"""

from __future__ import annotations

import numbers
from dataclasses import dataclass
from typing import List, Optional, TYPE_CHECKING

from repro.core.errors import EmptyOverlayError, ObjectNotFoundError, RoutingError
from repro.geometry.point import Point, distance, distance_sq

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.overlay import VoroNet

__all__ = ["RouteResult", "greedy_route", "missed_route", "route_to_object",
           "route_with_stopping_rule"]


@dataclass
class RouteResult:
    """Outcome of one routed message.

    Attributes
    ----------
    source:
        Object the route started from.
    target:
        The target point of the message.
    owner:
        Object at which routing terminated (the owner of the Voronoi region
        containing ``target`` when routing to a point; the destination
        object itself when routing to an object).
    hops:
        Number of forwarding steps taken (0 when source already terminal).
    success:
        Whether routing terminated normally (always True for well-formed
        overlays; kept for baseline comparisons where greedy can fail).
    path:
        The sequence of object ids visited, including source and owner —
        only recorded when the overlay is configured with ``track_paths``.
    final_distance:
        Euclidean distance between ``owner`` and ``target``.
    """

    source: int
    target: Point
    owner: int
    hops: int
    success: bool = True
    path: Optional[List[int]] = None
    final_distance: float = 0.0

    @property
    def messages(self) -> int:
        """Number of point-to-point messages the route costs (one per hop)."""
        return self.hops


#: Owner id reported by a :func:`missed_route` result — no object ever
#: holds a negative id, so a miss can never be mistaken for a real owner.
MISS_OWNER = -1


def missed_route(source: int, target) -> RouteResult:
    """The defined outcome of a query whose endpoint has departed.

    Sustained traffic over a churning overlay races query batches against
    remove/insert updates: a schedule sampled up front may reference an
    object that is gone by the time its query is served.  Production
    serving must answer such a query with a *miss*, not tear down the whole
    batch, so :meth:`VoroNet.route_many(missing="miss")
    <repro.core.overlay.VoroNet.route_many>` maps departed endpoints onto
    this sentinel result: ``success=False``, ``owner=MISS_OWNER``, zero
    hops and infinite final distance.  A point target is echoed back; a
    departed object id has no known coordinates, reported as NaNs.
    """
    if isinstance(target, numbers.Integral):
        point: Point = (float("nan"), float("nan"))
    else:
        point = (float(target[0]), float(target[1]))
    return RouteResult(source=int(source), target=point, owner=MISS_OWNER,
                       hops=0, success=False, path=None,
                       final_distance=float("inf"))


#: Block size beyond which the cached greedy step uses the numpy argmin
#: instead of the inline scan.  The paper's views are O(1) (≈ 6 Voronoi +
#: close + k long links), where ufunc dispatch overhead dwarfs the work;
#: dense close-neighbour cliques and large k cross over.
_VECTOR_ARGMIN_THRESHOLD = 48


def _vector_step(overlay: "VoroNet", current: int, tx: float, ty: float,
                 use_long_links: bool, best_d: float) -> tuple:
    """Vectorised argmin over the cached ``(k, 2)`` position block."""
    ids, positions = overlay.routing_table(current, use_long_links)
    dx = positions[:, 0] - tx
    dy = positions[:, 1] - ty
    distances = dx * dx + dy * dy
    index = distances.argmin()
    d = distances[index]
    if d < best_d:
        return int(ids[index]), float(d)
    return None, best_d


def _cached_step(overlay: "VoroNet", current: int, tx: float, ty: float,
                 use_long_links: bool, best_d: float
                 ) -> tuple:
    """One greedy step over the epoch-cached routing table of ``current``.

    Returns ``(next_id, next_d)`` — the candidate strictly closer to the
    target than ``best_d`` (squared) and its squared distance, or
    ``(None, best_d)`` at a local minimum.  Small blocks are scanned
    inline; large ones go through the vectorised argmin over the cached
    ``(k, 2)`` position array.
    """
    block = overlay._routing_block(current, use_long_links)
    if len(block) >= _VECTOR_ARGMIN_THRESHOLD:
        return _vector_step(overlay, current, tx, ty, use_long_links, best_d)
    best = None
    for cid, x, y in block:
        dx = x - tx
        dy = y - ty
        d = dx * dx + dy * dy
        if d < best_d:
            best, best_d = cid, d
    return best, best_d


def _greedy_step(overlay: "VoroNet", current: int, target: Point,
                 use_long_links: bool) -> Optional[int]:
    """Neighbour of ``current`` strictly closer to ``target``, or ``None``.

    With the routing cache enabled (the default) the step is one argmin
    over the object's epoch-cached flat routing table; otherwise the view
    is assembled per hop as the paper's message-level protocol would,
    scanning the same candidate set.  Both paths forward only on a
    *strictly* smaller distance, so they terminate at the same owner.
    """
    best_d = distance_sq(overlay.position_of(current), target)
    if overlay.config.use_routing_cache:
        return _cached_step(overlay, current, target[0], target[1],
                            use_long_links, best_d)[0]
    best = None
    view = overlay.neighbor_view(current)
    candidates = view.routing_neighbors if use_long_links else (
        set(view.voronoi) | set(view.close)
    )
    # Sorted scan, like the cached tables: on exact distance ties both
    # paths forward to the lowest-id minimal candidate, keeping the
    # cache-on/cache-off parity contract exact (not just almost-surely).
    for neighbor in sorted(candidates):
        d = distance_sq(overlay.position_of(neighbor), target)
        if d < best_d:
            best, best_d = neighbor, d
    return best


def greedy_route(overlay: "VoroNet", source: int, target: Point, *,
                 use_long_links: bool = True,
                 max_hops: Optional[int] = None) -> RouteResult:
    """Route greedily from ``source`` towards ``target`` until a local minimum.

    The local minimum of the greedy potential is, by the Delaunay property,
    the object whose Voronoi region contains ``target``.

    Parameters
    ----------
    overlay:
        The overlay to route on.
    source:
        Starting object id.
    target:
        Target point (any point of the plane; objects' positions included).
    use_long_links:
        When False only Voronoi and close neighbours are used — the
        "Delaunay-only" baseline of the ablation benchmarks.
    max_hops:
        Safety cap; defaults to the overlay size plus a margin.  Exceeding
        it raises :class:`RoutingError` since greedy progress is strictly
        monotone and can never revisit an object.
    """
    if len(overlay) == 0:
        raise EmptyOverlayError("cannot route on an empty overlay")
    if source not in overlay:
        raise ObjectNotFoundError(source)
    if max_hops is not None and max_hops <= 0:
        raise ValueError(f"max_hops must be positive, got {max_hops}")
    target = (float(target[0]), float(target[1]))
    limit = max_hops if max_hops is not None else len(overlay) + 16
    record = overlay.config.track_paths
    path = [source] if record else None
    current = source
    hops = 0
    if overlay.config.use_routing_cache:
        # Hot loop over the epoch-cached tables: the squared distance of the
        # chosen candidate is carried into the next hop and the block scan
        # is inlined, so each hop costs one dict probe plus one pass over an
        # O(1)-size block — no per-hop view assembly, no re-measuring of the
        # current object, no per-hop function calls.
        tx, ty = target
        cx, cy = overlay.position_of(current)
        current_d = (cx - tx) * (cx - tx) + (cy - ty) * (cy - ty)
        # The per-shard epoch list is hoisted once (it is mutated in
        # place, never replaced, so the reference stays live), and each
        # entry carries its shard index at build time: the per-hop cache
        # probe is one dict.get, one list index and one int compare, with
        # no method-call or key-tuple overhead.
        tables = overlay._routing_tables[use_long_links]
        epochs = overlay._store.epochs
        build_entry = overlay._routing_entry
        while True:
            entry = tables.get(current)
            if entry is None or entry[0] != epochs[entry[4]]:
                entry = build_entry(current, use_long_links)
            block = entry[3]
            nxt = None
            if len(block) >= _VECTOR_ARGMIN_THRESHOLD:
                # Vectorised argmin straight off the entry the loop already
                # holds — no second cache resolution.
                ids, positions = overlay._entry_arrays(entry)
                dx = positions[:, 0] - tx
                dy = positions[:, 1] - ty
                distances = dx * dx + dy * dy
                index = distances.argmin()
                d = distances[index]
                if d < current_d:
                    current_d = float(d)
                    nxt = int(ids[index])
            else:
                for cid, x, y in block:
                    dx = x - tx
                    dy = y - ty
                    d = dx * dx + dy * dy
                    if d < current_d:
                        current_d = d
                        nxt = cid
            if nxt is None:
                break
            current = nxt
            hops += 1
            if record:
                path.append(current)
            if hops > limit:
                raise RoutingError(
                    f"greedy route from {source} to {target} exceeded {limit} hops"
                )
    else:
        while True:
            nxt = _greedy_step(overlay, current, target, use_long_links)
            if nxt is None:
                break
            current = nxt
            hops += 1
            if record:
                path.append(current)
            if hops > limit:
                raise RoutingError(
                    f"greedy route from {source} to {target} exceeded {limit} hops"
                )
    return RouteResult(
        source=source,
        target=target,
        owner=current,
        hops=hops,
        success=True,
        path=path,
        final_distance=distance(overlay.position_of(current), target),
    )


def route_to_object(overlay: "VoroNet", source: int, destination: int, *,
                    use_long_links: bool = True,
                    max_hops: Optional[int] = None) -> RouteResult:
    """Route from one object to another (the Figure 6/8 measurement).

    Routing to an object's own coordinates always terminates exactly at that
    object, since it is the unique closest object to its own position.
    """
    if destination not in overlay:
        raise ObjectNotFoundError(destination)
    result = greedy_route(
        overlay, source, overlay.position_of(destination),
        use_long_links=use_long_links, max_hops=max_hops,
    )
    result.success = result.owner == destination
    return result


def route_with_stopping_rule(overlay: "VoroNet", source: int, target: Point, *,
                             max_hops: Optional[int] = None) -> RouteResult:
    """Greedy routing with the Algorithm 5 stopping condition.

    Forwarding stops as soon as the current object ``y`` satisfies
    ``d(z, Target) ≤ 1/3 · d(Target, y)`` where ``z`` is the point of
    ``y``'s Voronoi region closest to the target, or when the current object
    is within ``d_min`` of the target.  Lemma 4 shows the target's region
    can then be carved out locally at ``y``; Lemma 5 bounds the number of
    forwarding steps by ``O(ln² N_max)``.
    """
    if len(overlay) == 0:
        raise EmptyOverlayError("cannot route on an empty overlay")
    if source not in overlay:
        raise ObjectNotFoundError(source)
    if max_hops is not None and max_hops <= 0:
        raise ValueError(f"max_hops must be positive, got {max_hops}")
    target = (float(target[0]), float(target[1]))
    d_min = overlay.config.effective_d_min
    limit = max_hops if max_hops is not None else len(overlay) + 16
    record = overlay.config.track_paths
    path = [source] if record else None
    current = source
    hops = 0
    while True:
        current_distance = distance(overlay.position_of(current), target)
        if current_distance <= d_min:
            break
        z_distance = overlay.distance_to_region(current, target)
        if z_distance <= current_distance / 3.0:
            break
        nxt = _greedy_step(overlay, current, target, use_long_links=True)
        if nxt is None:
            break
        current = nxt
        hops += 1
        if record:
            path.append(current)
        if hops > limit:
            raise RoutingError(
                f"stopping-rule route from {source} to {target} exceeded {limit} hops"
            )
    return RouteResult(
        source=source,
        target=target,
        owner=current,
        hops=hops,
        success=True,
        path=path,
        final_distance=distance(overlay.position_of(current), target),
    )

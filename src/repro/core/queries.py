"""Query mechanisms on top of the overlay.

The paper leaves the precise query language out of scope but motivates the
design with range search and sketches, in its perspectives, how the Voronoi
structure supports them: a range query is routed greedily to the query
region and then *spread* along Voronoi neighbours whose regions intersect
it, so the cost is "routing + size of the answer neighbourhood" rather than
a network-wide flood.  This module implements those mechanisms:

* :func:`point_query` — exact location of the object owning a point,
* :func:`range_query` — all objects inside an axis-aligned rectangle
  (a range predicate on both attributes; a one-attribute range is a
  degenerate rectangle spanning the other axis),
* :func:`segment_query` — the paper's "segment in the unit square"
  formulation: every object whose region the segment crosses,
* :func:`radius_query` — all objects within a disk.

Every query returns a :class:`QueryResult` carrying the matches plus the
hop/message cost split into the routing phase and the spreading phase.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Set, TYPE_CHECKING

from repro.core.errors import EmptyOverlayError
from repro.core.routing import RouteResult, greedy_route
from repro.geometry.bounding import UNIT_SQUARE, BoundingBox, clip_polygon_to_box
from repro.geometry.point import Point, distance
from repro.geometry.predicates import point_in_polygon

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.overlay import VoroNet

__all__ = [
    "QueryResult",
    "point_query",
    "range_query",
    "radius_query",
    "segment_query",
]

#: Margin used when computing cells for intersection tests: query shapes may
#: touch the border of the unit square, where hull cells need closing.
_CELL_BOX = UNIT_SQUARE.expanded(4.0)


@dataclass
class QueryResult:
    """Outcome of a spatial query.

    Attributes
    ----------
    matches:
        Ids of the objects satisfying the query predicate.
    route:
        The greedy route that brought the query from its entry object to the
        query region.
    visited:
        Ids of every object that participated in the spreading phase (their
        regions intersect the query shape); a superset of ``matches``.
    spread_messages:
        Messages exchanged while spreading the query (one per traversed
        Voronoi edge between participating objects).
    """

    matches: List[int]
    route: RouteResult
    visited: Set[int] = field(default_factory=set)
    spread_messages: int = 0

    @property
    def total_messages(self) -> int:
        """Routing messages plus spreading messages."""
        return self.route.messages + self.spread_messages

    @property
    def total_hops(self) -> int:
        """Alias of :attr:`total_messages` (every message is one hop)."""
        return self.total_messages


def point_query(overlay: "VoroNet", point: Point,
                start: Optional[int] = None) -> QueryResult:
    """Locate the object responsible for ``point`` (exact-match lookup)."""
    route = _route_to(overlay, point, start)
    return QueryResult(matches=[route.owner], route=route, visited={route.owner})


def range_query(overlay: "VoroNet", box: BoundingBox,
                start: Optional[int] = None) -> QueryResult:
    """All objects positioned inside an axis-aligned rectangle.

    The query is routed to the rectangle's centre, then spread across every
    object whose Voronoi region intersects the rectangle.  Because those
    regions tile the rectangle, no matching object can be missed.
    """
    route = _route_to(overlay, box.center, start)

    def intersects(object_id: int) -> bool:
        if box.contains(overlay.position_of(object_id)):
            return True
        polygon = overlay.voronoi_cell(object_id, _CELL_BOX).polygon
        return bool(clip_polygon_to_box(polygon, box))

    visited, spread = _spread(overlay, route.owner, intersects)
    matches = sorted(
        oid for oid in visited if box.contains(overlay.position_of(oid))
    )
    return QueryResult(matches=matches, route=route, visited=visited,
                       spread_messages=spread)


def radius_query(overlay: "VoroNet", center: Point, radius: float,
                 start: Optional[int] = None) -> QueryResult:
    """All objects within ``radius`` of ``center`` (the paper's "radius query")."""
    if radius < 0:
        raise ValueError("radius must be non-negative")
    route = _route_to(overlay, center, start)

    def intersects(object_id: int) -> bool:
        if distance(overlay.position_of(object_id), center) <= radius:
            return True
        polygon = overlay.voronoi_cell(object_id, _CELL_BOX).polygon
        return _polygon_intersects_disk(polygon, center, radius)

    visited, spread = _spread(overlay, route.owner, intersects)
    matches = sorted(
        oid for oid in visited
        if distance(overlay.position_of(oid), center) <= radius
    )
    return QueryResult(matches=matches, route=route, visited=visited,
                       spread_messages=spread)


def segment_query(overlay: "VoroNet", endpoint_a: Point, endpoint_b: Point,
                  start: Optional[int] = None) -> QueryResult:
    """Objects whose Voronoi region is crossed by the segment ``a → b``.

    This is the paper's one-attribute range query: the query "attribute 0
    between ``lo`` and ``hi`` at attribute 1 = ``v``" is exactly the segment
    from ``(lo, v)`` to ``(hi, v)``.  The query is routed to one endpoint
    and forwarded from region to region along the segment.
    """
    route = _route_to(overlay, endpoint_a, start)

    def intersects(object_id: int) -> bool:
        polygon = overlay.voronoi_cell(object_id, _CELL_BOX).polygon
        return _polygon_intersects_segment(polygon, endpoint_a, endpoint_b)

    visited, spread = _spread(overlay, route.owner, intersects)
    matches = sorted(visited)
    return QueryResult(matches=matches, route=route, visited=visited,
                       spread_messages=spread)


# ----------------------------------------------------------------------
# internals
# ----------------------------------------------------------------------
def _route_to(overlay: "VoroNet", point: Point,
              start: Optional[int]) -> RouteResult:
    if len(overlay) == 0:
        raise EmptyOverlayError("cannot query an empty overlay")
    if start is None:
        # Grid-hinted entry when the locate index is enabled, random peer
        # otherwise — the same policy as VoroNet.lookup.
        start = overlay.query_entry_point(point)
    return greedy_route(overlay, start, point)


def _spread(overlay: "VoroNet", seed: int, predicate) -> (Set[int], int):
    """Breadth-first spreading over Voronoi neighbours satisfying ``predicate``.

    The seed object always participates (it owns part of the query shape by
    construction of the routing phase).  Each traversed edge between two
    participating objects counts as one message; edges probed towards
    non-participating neighbours also cost one message each (the neighbour
    must be asked before it can decline), matching a conservative accounting
    of the distributed algorithm.
    """
    visited: Set[int] = {seed}
    frontier = [seed]
    messages = 0
    while frontier:
        current = frontier.pop()
        for neighbor in overlay.voronoi_neighbors(current):
            if neighbor in visited:
                continue
            messages += 1
            if predicate(neighbor):
                visited.add(neighbor)
                frontier.append(neighbor)
    return visited, messages


def _polygon_intersects_disk(polygon: List[Point], center: Point,
                             radius: float) -> bool:
    if not polygon:
        return False
    if point_in_polygon(center, polygon, include_boundary=True):
        return True
    n = len(polygon)
    for i in range(n):
        if _segment_distance(polygon[i], polygon[(i + 1) % n], center) <= radius:
            return True
    return False


def _polygon_intersects_segment(polygon: List[Point], a: Point, b: Point) -> bool:
    if not polygon:
        return False
    if point_in_polygon(a, polygon, include_boundary=True) or \
            point_in_polygon(b, polygon, include_boundary=True):
        return True
    n = len(polygon)
    for i in range(n):
        if _segments_intersect(polygon[i], polygon[(i + 1) % n], a, b):
            return True
    return False


def _segment_distance(a: Point, b: Point, point: Point) -> float:
    ax, ay = a
    bx, by = b
    px, py = point
    dx, dy = bx - ax, by - ay
    length_sq = dx * dx + dy * dy
    if length_sq == 0.0:
        return math.hypot(px - ax, py - ay)
    t = max(0.0, min(1.0, ((px - ax) * dx + (py - ay) * dy) / length_sq))
    return math.hypot(px - (ax + t * dx), py - (ay + t * dy))


def _segments_intersect(p1: Point, p2: Point, q1: Point, q2: Point) -> bool:
    def orient(a: Point, b: Point, c: Point) -> float:
        return (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0])

    d1 = orient(q1, q2, p1)
    d2 = orient(q1, q2, p2)
    d3 = orient(p1, p2, q1)
    d4 = orient(p1, p2, q2)
    if ((d1 > 0) != (d2 > 0) or d1 == 0 or d2 == 0) and \
       ((d3 > 0) != (d4 > 0) or d3 == 0 or d4 == 0):
        # Handle the collinear-overlap cases conservatively.
        if d1 == 0 and d2 == 0 and d3 == 0 and d4 == 0:
            return (min(p1[0], p2[0]) <= max(q1[0], q2[0])
                    and min(q1[0], q2[0]) <= max(p1[0], p2[0])
                    and min(p1[1], p2[1]) <= max(q1[1], q2[1])
                    and min(q1[1], q2[1]) <= max(p1[1], p2[1]))
        return ((d1 > 0) != (d2 > 0)) and ((d3 > 0) != (d4 > 0)) or \
               d1 == 0 or d2 == 0 or d3 == 0 or d4 == 0
    return False

"""Configuration of a VoroNet overlay.

The paper parameterises the protocol by a single global constant, the
maximal number of objects ``N_max``, from which the close-neighbour radius
``d_min`` is derived.  This module packages that plus the experiment knobs
used throughout the evaluation (number of long-range links, ablation
switches) into an immutable configuration object.

Note on ``d_min``
-----------------
Section 4.1 of the paper states ``d_min = 1 / (π N_max)`` but then derives
``π d_min² N_max = 1`` (expected ≤ 1 close neighbour under a uniform
distribution), which requires ``d_min = 1 / sqrt(π N_max)``.  We use the
value consistent with the derivation and expose the discrepancy here so it
is documented where the constant is defined.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional

__all__ = ["VoroNetConfig", "DEFAULT_N_MAX", "DEFAULT_SHARD_OCCUPANCY"]

#: Default maximum overlay size used when the caller does not specify one.
DEFAULT_N_MAX = 100_000

#: Target number of objects per Morton shard when the shard level is
#: derived from ``n_max`` (see ``VoroNetConfig.effective_shard_level``).
DEFAULT_SHARD_OCCUPANCY = 512

#: Deepest supported shard level (kept in sync with repro.core.shards;
#: duplicated here to avoid an import cycle at config time).
_MAX_SHARD_LEVEL = 8


@dataclass(frozen=True)
class VoroNetConfig:
    """Immutable parameters of one VoroNet overlay.

    Attributes
    ----------
    n_max:
        Maximum number of objects the overlay is dimensioned for.  Routing
        is guaranteed poly-logarithmic in this value; ``d_min`` derives from
        it.
    num_long_links:
        Number of Kleinberg-style long-range links per object (the paper's
        Figure 8 sweeps 1–10; the default, 1, is the basic setting used in
        the analysis).
    d_min:
        Close-neighbour radius.  When ``None`` (default) it is derived as
        ``1 / sqrt(π · n_max)``, the value that keeps the expected number of
        close neighbours at one for near-uniform distributions.
    maintain_close_neighbors:
        Ablation switch: when False the overlay keeps no ``cn(o)`` sets.
        Disabling them voids the routing-termination guarantee for highly
        clustered data (benchmark ABL1 demonstrates exactly this).
    maintain_back_links:
        Ablation switch for the ``BLRn(o)`` reverse pointers; disabling them
        leaves dangling long links after departures.
    allow_overflow:
        Permit joining more than ``n_max`` objects (the routing bound then
        no longer applies; used by the dynamic-``N_max`` experiments).
    use_locate_index:
        Seed point location (``owner_of``) and the default entry points of
        lookups and queries from the overlay's grid-bucket locate index
        (:class:`~repro.geometry.locate_grid.LocateGrid`).  Results are
        unaffected (the index only provides *hints*, and joins always route
        from their introducer regardless); lookup/query hop counts shrink
        because requests enter near their target.  Disable to model every
        request entering the overlay at a uniformly random peer.
    use_routing_cache:
        Serve greedy forwarding from the overlay's epoch-invalidated flat
        routing tables (see the :mod:`repro.core.overlay` module docstring
        for the invalidation contract).  Results are identical with the
        cache on or off — only the per-hop constant factor changes; the
        switch exists so parity tests and benchmarks can compare the two
        paths on the same overlay structure.
    use_node_routing_cache:
        Protocol-mode analogue of ``use_routing_cache``: each
        :class:`~repro.simulation.protocol.ProtocolNode` serves greedy
        forwarding from a flat candidate block cached against its local
        view epoch (bumped by every view-mutating message handler) instead
        of assembling a candidate dict per hop.  Answers and hop counts are
        identical either way; disable to keep the per-hop assembly baseline
        for parity tests.
    shard_level:
        Morton prefix depth of the sharded node store: the unit square is
        split into ``4 ** shard_level`` Z-order shards, each carrying its
        own routing-table epoch, so churn only invalidates tables in the
        touched shards.  ``0`` is the flat-store baseline (one shard, one
        epoch — the pre-shard behaviour); ``None`` (default) derives the
        level from ``n_max`` and ``shard_occupancy``.
    shard_occupancy:
        Target objects per shard used when deriving ``shard_level`` from
        ``n_max``.  Smaller shards mean finer invalidation (less rebuild
        work per churn event) but more epoch bookkeeping per overlay-wide
        invalidation; 512 keeps both costs negligible from 10³ to 10⁷.
    track_paths:
        Record full routing paths in :class:`~repro.core.routing.RouteResult`
        objects (memory-heavier; useful for debugging and examples).
    seed:
        Seed for the overlay's internal random source (long-link target
        selection).  ``None`` gives a non-deterministic overlay.
    """

    n_max: int = DEFAULT_N_MAX
    num_long_links: int = 1
    d_min: Optional[float] = None
    maintain_close_neighbors: bool = True
    maintain_back_links: bool = True
    allow_overflow: bool = False
    use_locate_index: bool = True
    use_routing_cache: bool = True
    use_node_routing_cache: bool = True
    shard_level: Optional[int] = None
    shard_occupancy: int = DEFAULT_SHARD_OCCUPANCY
    track_paths: bool = False
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n_max < 1:
            raise ValueError(f"n_max must be >= 1, got {self.n_max}")
        if self.num_long_links < 0:
            raise ValueError(
                f"num_long_links must be >= 0, got {self.num_long_links}"
            )
        if self.d_min is not None and not 0.0 < self.d_min < math.sqrt(2.0):
            raise ValueError(
                f"d_min must lie in (0, sqrt(2)), got {self.d_min}"
            )
        if self.shard_level is not None and not 0 <= self.shard_level <= _MAX_SHARD_LEVEL:
            raise ValueError(
                f"shard_level must lie in [0, {_MAX_SHARD_LEVEL}], got {self.shard_level}"
            )
        if self.shard_occupancy < 1:
            raise ValueError(
                f"shard_occupancy must be >= 1, got {self.shard_occupancy}"
            )

    @property
    def effective_d_min(self) -> float:
        """The close-neighbour radius actually used by the overlay."""
        if self.d_min is not None:
            return self.d_min
        return 1.0 / math.sqrt(math.pi * self.n_max)

    @property
    def effective_shard_level(self) -> int:
        """The Morton shard level actually used by the overlay's node store.

        Explicit ``shard_level`` wins; otherwise the smallest level whose
        ``4 ** level`` shards keep the *dimensioned* population
        (``n_max``) at or under ``shard_occupancy`` objects per shard.
        Small overlays (``n_max <= shard_occupancy``) derive level 0 — a
        single shard, behaviourally identical to the pre-shard global
        epoch — so sharding never perturbs unit-scale experiments.
        """
        if self.shard_level is not None:
            return self.shard_level
        target_shards = self.n_max // self.shard_occupancy
        level = 0
        while (1 << (2 * level)) < target_shards and level < _MAX_SHARD_LEVEL:
            level += 1
        return level

    @property
    def long_link_normalization(self) -> float:
        """Normalisation constant ``K = 2π ln(√2 / d_min)`` of Lemma 2.

        The probability that a long-link target falls in a surface element
        ``dS`` at distance ``d`` is ``dS / (K d²)``.
        """
        return 2.0 * math.pi * math.log(math.sqrt(2.0) / self.effective_d_min)

    def expected_route_bound(self, alpha: float = 1.0) -> float:
        """The paper's ``O(ln² N_max)`` routing bound, up to the constant ``alpha``."""
        return alpha * math.log(self.n_max) ** 2

    def with_updates(self, **changes) -> "VoroNetConfig":
        """A copy of the configuration with the given fields replaced."""
        return replace(self, **changes)

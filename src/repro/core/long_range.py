"""Long-range link selection — the generalised Kleinberg mechanism.

Algorithm 3 (`Choose-LRT`) draws a long-link *target point* around an
object ``x``:

* ``a`` uniform in ``[ln d_min, ln sqrt(2)]``,
* ``θ`` uniform in ``[0, 2π)``,
* target ``LRt = x + e^a (cos θ, sin θ)``.

Lemma 2 shows the induced density of the target over the plane is
``1 / (K d²)`` with ``K = 2π ln(√2 / d_min)`` — the two-dimensional
harmonic distribution Kleinberg proved optimal for navigability, but
defined over continuous space so it applies to *any* object distribution.
The actual long-range neighbour ``LRn`` is whichever object currently owns
the Voronoi region containing the target point; ownership is re-delegated
by the maintenance procedures as objects join and leave.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from repro.geometry.point import Point
from repro.utils.rng import RandomSource

__all__ = [
    "choose_long_range_target",
    "choose_long_range_targets",
    "choose_long_range_target_array",
    "link_length_density",
    "target_area_density",
    "expected_link_count_in_disk",
]

_SQRT2 = math.sqrt(2.0)


def choose_long_range_target(position: Point, d_min: float,
                             rng: RandomSource) -> Point:
    """Draw one long-link target point for an object at ``position``.

    The target may fall outside the unit square; per the paper the link is
    then simply attached to the closest object (the owner of the region the
    target falls into once clipped by the tessellation).

    Parameters
    ----------
    position:
        Coordinates of the object choosing the link.
    d_min:
        Minimum link length (the overlay's close-neighbour radius); below
        this distance the close-neighbour set already provides connectivity.
    rng:
        Random source.
    """
    if not 0.0 < d_min < _SQRT2:
        raise ValueError(f"d_min must lie in (0, sqrt(2)), got {d_min}")
    a = rng.uniform(math.log(d_min), math.log(_SQRT2))
    theta = rng.uniform(0.0, 2.0 * math.pi)
    radius = math.exp(a)
    return (
        position[0] + radius * math.cos(theta),
        position[1] + radius * math.sin(theta),
    )


def choose_long_range_targets(position: Point, d_min: float, count: int,
                              rng: RandomSource) -> List[Point]:
    """Draw ``count`` independent long-link targets (vectorised).

    Used when objects keep several long links (the Figure 8 experiment);
    every link is drawn with the same distribution, as in the paper.
    """
    if count <= 0:
        return []
    if not 0.0 < d_min < _SQRT2:
        raise ValueError(f"d_min must lie in (0, sqrt(2)), got {d_min}")
    generator = rng.generator
    a = generator.uniform(math.log(d_min), math.log(_SQRT2), size=count)
    theta = generator.uniform(0.0, 2.0 * math.pi, size=count)
    radius = np.exp(a)
    xs = position[0] + radius * np.cos(theta)
    ys = position[1] + radius * np.sin(theta)
    return [(float(x), float(y)) for x, y in zip(xs, ys)]


def choose_long_range_target_array(positions: np.ndarray, d_min: float,
                                   count: int, rng: RandomSource) -> np.ndarray:
    """Draw ``count`` long-link targets for *every* position in one batch.

    The fully vectorised form of Choose-LRT used by
    :meth:`~repro.core.overlay.VoroNet.bulk_load`: all ``n × count`` draws
    come from two :class:`numpy.random.Generator` calls instead of
    ``2 n count`` scalar draws.  Each per-object, per-link draw follows the
    same distribution as :func:`choose_long_range_target`.

    Parameters
    ----------
    positions:
        ``(n, 2)`` array of object coordinates.
    d_min / count / rng:
        As in :func:`choose_long_range_targets`.

    Returns
    -------
    ``(n, count, 2)`` array of target points (possibly outside the unit
    square, as in the scalar sampler).
    """
    positions = np.asarray(positions, dtype=np.float64)
    if positions.ndim != 2 or positions.shape[1] != 2:
        raise ValueError(f"expected (n, 2) positions, got shape {positions.shape}")
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if not 0.0 < d_min < _SQRT2:
        raise ValueError(f"d_min must lie in (0, sqrt(2)), got {d_min}")
    n = positions.shape[0]
    if n == 0 or count == 0:
        return np.empty((n, count, 2), dtype=np.float64)
    generator = rng.generator
    a = generator.uniform(math.log(d_min), math.log(_SQRT2), size=(n, count))
    theta = generator.uniform(0.0, 2.0 * math.pi, size=(n, count))
    radius = np.exp(a)
    offsets = np.stack((radius * np.cos(theta), radius * np.sin(theta)), axis=-1)
    return positions[:, None, :] + offsets


def link_length_density(length: float, d_min: float) -> float:
    """Probability density of the link *length* ``d(x, LRt)``.

    From equation (1) of the paper: lengths are log-uniform on
    ``[d_min, sqrt(2)]`` so the density is ``1 / (ln(sqrt(2)/d_min) · r)``.
    Zero outside the support.
    """
    if length < d_min or length > _SQRT2:
        return 0.0
    return 1.0 / (math.log(_SQRT2 / d_min) * length)


def target_area_density(distance_value: float, d_min: float) -> float:
    """Spatial density ``1 / (K d²)`` of Lemma 2 (per unit area)."""
    if distance_value < d_min or distance_value > _SQRT2:
        return 0.0
    normalisation = 2.0 * math.pi * math.log(_SQRT2 / d_min)
    return 1.0 / (normalisation * distance_value ** 2)


def expected_link_count_in_disk(distance_value: float, fraction: float,
                                d_min: float) -> float:
    """Lower bound of Lemma 3 on the probability of hitting a remote disk.

    The probability that the target of one long link lands inside a disk of
    radius ``fraction · r`` centred at distance ``r = distance_value`` from
    the chooser is at least ``π f² / (K (1 + f)²)`` — independent of ``r``.
    """
    del distance_value  # the bound is distance-independent, kept for clarity
    normalisation = 2.0 * math.pi * math.log(_SQRT2 / d_min)
    return math.pi * fraction ** 2 / (normalisation * (1.0 + fraction) ** 2)


def empirical_length_histogram(samples: List[Tuple[Point, Point]],
                               bins: int = 32) -> Tuple[np.ndarray, np.ndarray]:
    """Histogram of realised link lengths (source, target) pairs.

    Returns ``(bin_edges, counts)``; used by tests to check the sampler
    against :func:`link_length_density`.
    """
    lengths = np.array([
        math.hypot(target[0] - source[0], target[1] - source[1])
        for source, target in samples
    ])
    counts, edges = np.histogram(lengths, bins=bins)
    return edges, counts

"""Lightweight operation statistics collected by the overlay.

Every join, leave, route and query performed through
:class:`repro.core.overlay.VoroNet` updates these counters, so experiments
can report the *cost* of overlay maintenance (hops spent routing joins,
messages the distributed protocol would exchange) without re-instrumenting
call sites.  The message counts follow the accounting of Section 4.2: one
message per greedy forwarding step, one per neighbour notified during
``AddVoronoiRegion`` / ``RemoveVoronoiRegion``, and one per long-link
re-delegation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["OperationStats", "OverlayStats"]


@dataclass
class OperationStats:
    """Aggregated statistics for one operation type (join, leave, route, ...)."""

    count: int = 0
    total_hops: int = 0
    total_messages: int = 0
    max_hops: int = 0
    max_messages: int = 0

    def record(self, hops: int, messages: int) -> None:
        """Record one operation with its hop and message cost."""
        self.count += 1
        self.total_hops += hops
        self.total_messages += messages
        self.max_hops = max(self.max_hops, hops)
        self.max_messages = max(self.max_messages, messages)

    @property
    def mean_hops(self) -> float:
        """Mean number of routing hops per operation (0 when unused)."""
        return self.total_hops / self.count if self.count else 0.0

    @property
    def mean_messages(self) -> float:
        """Mean number of protocol messages per operation (0 when unused)."""
        return self.total_messages / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict summary (handy for benchmark result tables)."""
        return {
            "count": self.count,
            "mean_hops": self.mean_hops,
            "max_hops": self.max_hops,
            "mean_messages": self.mean_messages,
            "max_messages": self.max_messages,
        }


@dataclass
class OverlayStats:
    """All per-overlay statistics, grouped by operation type.

    ``routing_table_rebuilds`` counts how many per-object flat routing
    tables were (re)built after a topology-epoch bump — the measurable
    baseline for the ROADMAP's per-shard-epoch follow-up: a global epoch
    invalidates every table on any churn, and this counter is exactly the
    rebuild work that coarse invalidation causes.

    ``operation_timeouts`` / ``operation_retries`` count watchdog expiries
    and the retries they triggered on multi-message operations (join,
    close discovery, long-link search) — the protocol-hardening vocabulary
    shared with the message-level simulator's metrics registry.  Both stay
    zero in fault-free runs.

    ``query_misses`` counts batch queries answered with the defined miss
    result because an endpoint departed before the query was served
    (``route_many(missing="miss")`` under traffic-time churn).
    """

    joins: OperationStats = field(default_factory=OperationStats)
    leaves: OperationStats = field(default_factory=OperationStats)
    routes: OperationStats = field(default_factory=OperationStats)
    queries: OperationStats = field(default_factory=OperationStats)
    long_link_searches: OperationStats = field(default_factory=OperationStats)
    routing_table_rebuilds: int = 0
    operation_timeouts: int = 0
    operation_retries: int = 0
    query_misses: int = 0

    def reset(self) -> None:
        """Zero every counter (e.g. between benchmark phases)."""
        self.joins = OperationStats()
        self.leaves = OperationStats()
        self.routes = OperationStats()
        self.queries = OperationStats()
        self.long_link_searches = OperationStats()
        self.routing_table_rebuilds = 0
        self.operation_timeouts = 0
        self.operation_retries = 0
        self.query_misses = 0

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict summary: per-operation stat dicts plus flat counters.

        Values are per-operation dicts for the operation groups and a bare
        int for ``routing_table_rebuilds``.
        """
        return {
            "joins": self.joins.as_dict(),
            "leaves": self.leaves.as_dict(),
            "routes": self.routes.as_dict(),
            "queries": self.queries.as_dict(),
            "long_link_searches": self.long_link_searches.as_dict(),
            "routing_table_rebuilds": self.routing_table_rebuilds,
            "operation_timeouts": self.operation_timeouts,
            "operation_retries": self.operation_retries,
            "query_misses": self.query_misses,
        }

    def describe(self) -> List[str]:
        """Human-readable one-line-per-operation summary."""
        lines = []
        for name, stats in self.as_dict().items():
            if not isinstance(stats, dict):
                lines.append(f"{name:>19}: {stats}")
                continue
            lines.append(
                f"{name:>19}: count={stats['count']:<8.0f}"
                f" mean_hops={stats['mean_hops']:<7.2f}"
                f" mean_messages={stats['mean_messages']:<8.2f}"
            )
        return lines

"""Overlay maintenance: the local work around ``AddVoronoiRegion`` and
``RemoveVoronoiRegion``.

These functions implement Section 4.2's local procedures in the library's
oracle execution mode: the shared Delaunay kernel plays the role of each
object's topologically consistent local Voronoi computation (Sugihara–Iri
in the paper), while this module performs the *protocol-visible* state
changes — close-neighbour discovery, back-long-range hand-over, long-link
re-delegation — and accounts for the messages the distributed version
would exchange, so maintenance-cost experiments (ABL3) can report them.

Message accounting follows the paper:

* one message per Voronoi neighbour informed of its new region boundaries,
* one message per close neighbour declared / notified of a departure,
* one message per long link re-delegated (plus one to its source),
* the routing phase of a join is counted separately by the overlay.
"""

from __future__ import annotations

from typing import List, TYPE_CHECKING

from repro.core.neighbors import compute_close_neighbors, register_close_neighbors
from repro.core.node import BackLink
from repro.geometry.point import distance

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.overlay import VoroNet

__all__ = ["integrate_new_object", "bulk_integrate_objects", "detach_object"]


def integrate_new_object(overlay: "VoroNet", object_id: int) -> int:
    """Complete the insertion of ``object_id`` after its region was carved.

    Performs the non-routing part of ``AddVoronoiRegion`` executed by the
    region owner in the paper:

    1. every new Voronoi neighbour is informed of its updated region
       boundaries (the kernel already updated the tessellation);
    2. the close-neighbour set ``cn(object_id)`` is discovered through the
       Voronoi neighbours (Lemma 1) and registered symmetrically;
    3. back-long-range registrations whose target point now falls closer to
       the new object than to their previous holder are handed over, and the
       corresponding long links re-pointed at the new object.

    Returns the number of messages the distributed protocol would exchange.
    """
    node = overlay.node(object_id)
    voronoi_neighbors = overlay.voronoi_neighbors(object_id)
    messages = len(voronoi_neighbors)  # region-update notifications
    # Ids whose forwarding candidates this attach changes: the new object
    # itself plus every long-link source re-pointed at it.  Close
    # registrations bump their own shards inside register_close_neighbors;
    # back-registration moves alone change no routing candidates (BLRn is
    # not routed on).
    affected: List[int] = [object_id]

    # Close neighbours (skipped entirely under the ABL1 ablation).
    if overlay.config.maintain_close_neighbors:
        close = compute_close_neighbors(overlay, object_id)
        messages += register_close_neighbors(overlay, object_id, close)

    # Back-long-range hand-over: only the new Voronoi neighbours can lose
    # ownership of a long-link target to the new object, because the new
    # region is carved exclusively out of theirs.
    if overlay.config.maintain_back_links:
        position = node.position
        for neighbor_id in voronoi_neighbors:
            neighbor = overlay.node(neighbor_id)
            if not neighbor.back_links:
                continue
            stolen: List[BackLink] = []
            for back_link in neighbor.back_links:
                if distance(position, back_link.target) < distance(
                        neighbor.position, back_link.target):
                    stolen.append(back_link)
            for back_link in stolen:
                neighbor.remove_back_link(back_link.source, back_link.link_index)
                node.add_back_link(back_link.source, back_link.link_index,
                                   back_link.target)
                source = overlay.node(back_link.source)
                source.retarget_long_link(back_link.link_index, object_id)
                affected.append(back_link.source)
                messages += 2  # hand-over to the new holder + notify the source
    overlay.invalidate_routing_tables(affected)
    return messages


def bulk_integrate_objects(overlay: "VoroNet", object_ids: List[int]) -> int:
    """Attach a bulk-loaded batch: close neighbours and back-link hand-over.

    The batch is already in the Delaunay kernel and the locate index when
    this runs, so instead of per-object neighbourhood exploration:

    * close neighbours come from exact grid radius queries (symmetric
      registration; re-registering an existing pair is a set no-op), which
      produces exactly the ``cn`` sets Lemma 1's routed discovery would;
    * back-long-range registrations held by *pre-existing* objects are
      re-checked against the updated tessellation and handed to the new
      owner of their target point where ownership changed — the batched
      equivalent of the per-join hand-over in :func:`integrate_new_object`.

    Returns the number of messages the distributed protocol would exchange
    for the close declarations and hand-overs.
    """
    messages = 0
    new_ids = set(object_ids)
    if overlay.config.maintain_close_neighbors:
        d_min = overlay.config.effective_d_min
        for object_id in object_ids:
            node = overlay.node(object_id)
            before = len(node.close_neighbors)
            for candidate in overlay.objects_within(node.position, d_min):
                if candidate == object_id:
                    continue
                node.add_close_neighbor(candidate)
                overlay.node(candidate).add_close_neighbor(object_id)
            messages += len(node.close_neighbors) - before
    if overlay.config.maintain_back_links:
        for object_id in overlay.object_ids():
            if object_id in new_ids:
                continue
            holder = overlay.node(object_id)
            if not holder.back_links:
                continue
            for back_link in list(holder.back_links):
                owner = overlay.owner_of(back_link.target, hint=object_id)
                if owner == object_id:
                    continue
                holder.remove_back_link(back_link.source, back_link.link_index)
                overlay.node(owner).add_back_link(
                    back_link.source, back_link.link_index, back_link.target)
                overlay.node(back_link.source).retarget_long_link(
                    back_link.link_index, owner)
                messages += 2  # hand-over to the new holder + notify the source
    # A batch attach touches close sets and link sources across the whole
    # overlay; the caller (bulk_load) already operates at overlay-wide
    # invalidation scope, so stay with the bare form here.
    overlay.invalidate_routing_tables()
    return messages


def detach_object(overlay: "VoroNet", object_id: int) -> int:
    """Perform the protocol-visible work of ``RemoveVoronoiRegion``.

    Must be called *before* the object is removed from the tessellation so
    its Voronoi neighbours are still known.  The steps mirror Section 3.3 /
    4.2.2:

    1. Voronoi neighbours are informed of the new boundaries between them;
    2. close neighbours are told about the departure (and drop the entry);
    3. every long link registered at the departing object (its ``BLRn``) is
       delegated to the Voronoi neighbour now closest to the link's target
       point, and the link's source is re-pointed there (reachable thanks to
       the back link);
    4. the departing object's own long links are deregistered at their
       endpoints.

    Returns the number of messages the distributed protocol would exchange.
    """
    node = overlay.node(object_id)
    voronoi_neighbors = overlay.voronoi_neighbors(object_id)
    messages = len(voronoi_neighbors)  # boundary updates
    # Ids whose forwarding candidates this detach changes: the departing
    # object, every close neighbour that drops it, and every long-link
    # source re-pointed at a delegate.  (Back-registration moves and
    # deregistrations alone change no routing candidates.)  The caller
    # bumps the ex-Voronoi-neighbours after the kernel removal.
    affected: List[int] = [object_id]

    # Close-neighbour notifications.
    for close_id in list(node.close_neighbors):
        if close_id in overlay:
            overlay.node(close_id).discard_close_neighbor(object_id)
            affected.append(close_id)
            messages += 1
    node.close_neighbors.clear()

    # Delegate hosted long links to the neighbour now owning their target.
    if overlay.config.maintain_back_links and node.back_links:
        candidates = [nid for nid in voronoi_neighbors if nid in overlay]
        for back_link in list(node.back_links):
            source_id = back_link.source
            if source_id not in overlay or source_id == object_id:
                continue
            if candidates:
                new_holder_id = min(
                    candidates,
                    key=lambda nid: distance(overlay.position_of(nid), back_link.target),
                )
            elif len(overlay) > 1:
                new_holder_id = min(
                    (oid for oid in overlay.object_ids() if oid != object_id),
                    key=lambda oid: distance(overlay.position_of(oid), back_link.target),
                )
            else:
                continue
            new_holder = overlay.node(new_holder_id)
            new_holder.add_back_link(source_id, back_link.link_index, back_link.target)
            overlay.node(source_id).retarget_long_link(back_link.link_index,
                                                       new_holder_id)
            affected.append(source_id)
            messages += 2  # delegate to the neighbour + notify the source
    node.back_links.clear()

    # Deregister our own long links at their endpoints.
    for index, link in enumerate(node.long_links):
        endpoint = link.neighbor
        if endpoint in overlay and endpoint != object_id:
            overlay.node(endpoint).remove_back_link(object_id, index)
            messages += 1
    overlay.invalidate_routing_tables(affected)
    return messages


def view_consistency_report(overlay: "VoroNet") -> List[str]:
    """Check cross-object view invariants; returns a list of problems.

    Verified invariants (used heavily by the test suite):

    * close-neighbour symmetry, and every recorded close neighbour is really
      within ``d_min``;
    * every long link points at the object owning the region containing its
      target point (i.e. the object closest to the target);
    * every long link has a matching back registration at its endpoint, and
      every back registration has a matching long link at its source.
    """
    problems: List[str] = []
    d_min = overlay.config.effective_d_min
    ids = overlay.object_ids()
    for object_id in ids:
        node = overlay.node(object_id)
        for close_id in node.close_neighbors:
            if close_id not in overlay:
                problems.append(f"{object_id}: stale close neighbour {close_id}")
                continue
            if object_id not in overlay.node(close_id).close_neighbors:
                problems.append(
                    f"close-neighbour relation {object_id} → {close_id} not symmetric")
            if distance(node.position, overlay.position_of(close_id)) > d_min * (1 + 1e-9):
                problems.append(
                    f"{object_id}: close neighbour {close_id} farther than d_min")
        for index, link in enumerate(node.long_links):
            if link.neighbor not in overlay:
                problems.append(
                    f"{object_id}: long link {index} points at departed {link.neighbor}")
                continue
            owner = overlay.owner_of(link.target)
            if owner != link.neighbor:
                problems.append(
                    f"{object_id}: long link {index} points at {link.neighbor} "
                    f"but {owner} owns its target")
            endpoint = overlay.node(link.neighbor)
            if overlay.config.maintain_back_links and link.neighbor != object_id:
                if not any(bl.source == object_id and bl.link_index == index
                           for bl in endpoint.back_links):
                    problems.append(
                        f"{object_id}: long link {index} missing back registration "
                        f"at {link.neighbor}")
        for back_link in node.back_links:
            if back_link.source not in overlay:
                problems.append(
                    f"{object_id}: back link from departed {back_link.source}")
                continue
            source = overlay.node(back_link.source)
            if (back_link.link_index >= len(source.long_links)
                    or source.long_links[back_link.link_index].neighbor != object_id):
                problems.append(
                    f"{object_id}: back link from {back_link.source}#{back_link.link_index} "
                    "does not match the source's long link")
    return problems

"""Neighbour-view assembly and close-neighbour maintenance.

Section 3.1 of the paper gives each object three kinds of neighbours —
Voronoi neighbours, close neighbours and long-range neighbours — plus the
back-long-range registrations.  This module assembles the full view used by
greedy routing and implements the close-neighbour discovery of Lemma 1:
when an object ``p`` joins, every close neighbour of ``p`` (any object
within ``d_min``) is either one of ``p``'s new Voronoi neighbours or a
close neighbour of one of them, so the search needs only the Voronoi
neighbours' local knowledge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Set, TYPE_CHECKING

from repro.geometry.point import Point, distance

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.core.overlay import VoroNet

__all__ = ["NeighborView", "compute_close_neighbors", "register_close_neighbors"]


@dataclass(frozen=True)
class NeighborView:
    """The complete view of one object, as used by greedy routing.

    Attributes
    ----------
    object_id:
        Owner of the view.
    voronoi:
        Voronoi (Delaunay-adjacent) neighbours ``vn(o)``.
    close:
        Close neighbours ``cn(o)`` (objects within ``d_min``).
    long_range:
        Long-range neighbours ``LRn(o)`` — the endpoints, not the targets.
    back_long_range:
        Objects whose long links point at ``o`` (``BLRn(o)``); kept for
        maintenance only and, per the paper, *not* used for routing.
    """

    object_id: int
    voronoi: frozenset = frozenset()
    close: frozenset = frozenset()
    long_range: frozenset = frozenset()
    back_long_range: frozenset = frozenset()

    @property
    def routing_neighbors(self) -> Set[int]:
        """Neighbours eligible for greedy forwarding (vn ∪ cn ∪ LRn, minus self)."""
        combined = set(self.voronoi) | set(self.close) | set(self.long_range)
        combined.discard(self.object_id)
        return combined

    @property
    def all_neighbors(self) -> Set[int]:
        """Every object this view references (including back links)."""
        combined = self.routing_neighbors | set(self.back_long_range)
        combined.discard(self.object_id)
        return combined

    @property
    def size(self) -> int:
        """Total number of view entries (the O(1) quantity of Section 4.1)."""
        return (
            len(self.voronoi)
            + len(self.close)
            + len(self.long_range)
            + len(self.back_long_range)
        )


def compute_close_neighbors(overlay: "VoroNet", object_id: int) -> Set[int]:
    """Close neighbours of ``object_id`` discovered via its Voronoi neighbours.

    Implements the Lemma 1 procedure: candidates are the object's Voronoi
    neighbours plus *their* Voronoi and close neighbours; any candidate
    within ``d_min`` is a close neighbour, and Lemma 1 guarantees none is
    missed.  The overlay's `d_min` comes from its configuration.
    """
    d_min = overlay.config.effective_d_min
    position = overlay.position_of(object_id)
    candidates: Set[int] = set()
    for neighbor in overlay.voronoi_neighbors(object_id):
        candidates.add(neighbor)
        candidates.update(overlay.voronoi_neighbors(neighbor))
        candidates.update(overlay.node(neighbor).close_neighbors)
    candidates.discard(object_id)
    return {
        candidate
        for candidate in candidates
        if distance(position, overlay.position_of(candidate)) <= d_min
    }


def register_close_neighbors(overlay: "VoroNet", object_id: int,
                             close_neighbors: Iterable[int]) -> int:
    """Record the (symmetric) close-neighbour relation on both endpoints.

    Returns the number of notification messages this would cost in the
    distributed protocol (one per declared close neighbour).
    """
    node = overlay.node(object_id)
    declared = list(close_neighbors)
    for neighbor_id in declared:
        node.add_close_neighbor(neighbor_id)
        overlay.node(neighbor_id).add_close_neighbor(object_id)
    # Close neighbours are forwarding candidates on both endpoints: any
    # cached routing table touching this pair is now stale.
    overlay.invalidate_routing_tables([object_id, *declared])
    return len(declared)


def brute_force_close_neighbors(positions: Dict[int, Point], object_id: int,
                                d_min: float) -> Set[int]:
    """Ground-truth close-neighbour set by exhaustive scan (tests only)."""
    origin = positions[object_id]
    return {
        other
        for other, point in positions.items()
        if other != object_id and distance(origin, point) <= d_min
    }

"""Per-object state of the overlay.

Each application object published in VoroNet is represented by an
:class:`ObjectNode` holding the parts of its *view* that are genuinely
per-object state:

* the ``k`` long-range links (target point + current endpoint object),
* the back-long-range registrations (who points a long link at us, and at
  which target point), needed to re-delegate links when we leave,
* the close-neighbour set ``cn(o)`` (objects within ``d_min``),
* bookkeeping metadata (join sequence number, hosting address).

The Voronoi-neighbour set ``vn(o)`` is *not* duplicated here: in the
library's "oracle" execution mode it is always derived from the shared
Delaunay kernel so it can never drift out of sync; the message-level
protocol simulator (:mod:`repro.simulation.protocol`) keeps its own fully
local copies instead, as a real deployment would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from repro.geometry.point import Point

__all__ = ["LongLink", "BackLink", "ObjectNode"]


@dataclass
class LongLink:
    """One long-range link of an object.

    Attributes
    ----------
    target:
        The long-link *target point* ``LRt`` drawn by Choose-LRT.  It is a
        fixed point of the plane (possibly outside the unit square) and
        never changes for the lifetime of the link.
    neighbor:
        The object currently responsible for the Voronoi region containing
        ``target`` — the actual routing contact ``LRn``.  Re-delegated when
        objects join or leave around the target point.
    """

    target: Point
    neighbor: int

    def as_tuple(self) -> Tuple[Point, int]:
        return (self.target, self.neighbor)


@dataclass(frozen=True)
class BackLink:
    """A reverse registration: ``source``'s ``link_index``-th long link points at us."""

    source: int
    link_index: int
    target: Point


@dataclass
class ObjectNode:
    """State stored at one overlay object.

    Attributes
    ----------
    object_id:
        Identifier of the object (stable across the object's lifetime).
    position:
        Coordinates in the attribute space; this *is* the object's overlay
        identifier in the semantic sense of the paper.
    host:
        Opaque label of the physical node hosting the object (an "IP
        address" stand-in; purely informational in the simulation).
    long_links:
        The object's outgoing long-range links, ``num_long_links`` of them.
    back_links:
        Reverse registrations of other objects' long links whose target
        point currently falls in this object's Voronoi region.
    close_neighbors:
        Objects within distance ``d_min`` (symmetric relation).
    join_order:
        Monotonically increasing sequence number assigned at join time.
    """

    object_id: int
    position: Point
    host: Optional[str] = None
    long_links: List[LongLink] = field(default_factory=list)
    back_links: Set[BackLink] = field(default_factory=set)
    close_neighbors: Set[int] = field(default_factory=set)
    join_order: int = 0

    # ------------------------------------------------------------------
    # long-link management
    # ------------------------------------------------------------------
    def long_link_neighbors(self) -> List[int]:
        """Ids of the current long-range contacts (may contain duplicates)."""
        return [link.neighbor for link in self.long_links]

    def set_long_link(self, index: int, target: Point, neighbor: int) -> None:
        """Install or replace the ``index``-th long link."""
        while len(self.long_links) <= index:
            self.long_links.append(LongLink(target=self.position, neighbor=self.object_id))
        self.long_links[index] = LongLink(target=target, neighbor=neighbor)

    def retarget_long_link(self, index: int, neighbor: int) -> None:
        """Point the ``index``-th long link at a new endpoint (same target point)."""
        self.long_links[index].neighbor = neighbor

    def add_back_link(self, source: int, link_index: int, target: Point) -> None:
        """Register that ``source``'s ``link_index``-th long link points at us."""
        self.back_links.add(BackLink(source=source, link_index=link_index, target=target))

    def remove_back_link(self, source: int, link_index: int) -> None:
        """Drop a reverse registration (if present)."""
        self.back_links = {
            bl for bl in self.back_links
            if not (bl.source == source and bl.link_index == link_index)
        }

    def back_link_sources(self) -> Set[int]:
        """Ids of every object holding a long link towards us."""
        return {bl.source for bl in self.back_links}

    # ------------------------------------------------------------------
    # close neighbours
    # ------------------------------------------------------------------
    def add_close_neighbor(self, object_id: int) -> None:
        """Record an object within ``d_min`` (no-op for ourselves)."""
        if object_id != self.object_id:
            self.close_neighbors.add(object_id)

    def discard_close_neighbor(self, object_id: int) -> None:
        """Forget a close neighbour (no error if absent)."""
        self.close_neighbors.discard(object_id)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def view_size(self, voronoi_neighbor_count: int) -> int:
        """Total number of entries in this object's view.

        The paper argues this is O(1) in expectation; analysis code sums
        Voronoi neighbours (passed in by the overlay), close neighbours,
        long links and back links.
        """
        return (
            voronoi_neighbor_count
            + len(self.close_neighbors)
            + len(self.long_links)
            + len(self.back_links)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ObjectNode(id={self.object_id}, position={self.position}, "
            f"long_links={len(self.long_links)}, close={len(self.close_neighbors)}, "
            f"back={len(self.back_links)})"
        )

"""``python -m repro.lint`` dispatches to the CLI."""

import sys

from repro.lint.cli import main

sys.exit(main())

"""The simlint framework: findings, suppressions, config, registry, driver.

``repro.lint`` is a repo-specific static-analysis pass over the simulation
plane.  The correctness of the message-level reproduction rests on
conventions no general-purpose linter knows about — the ``view_epoch``
contract of :mod:`repro.simulation.protocol`, the determinism discipline
(every random draw from a seeded :class:`~repro.utils.rng.RandomSource`,
no wall clocks, no order-nondeterministic set iteration), the
``__slots__`` requirement on message-plane classes, and the implicit
``kind`` ↔ ``_on_<kind>`` dispatch pairing.  Each convention is encoded as
a :class:`Rule` (see :mod:`repro.lint.rules`); this module provides the
machinery they plug into:

* :class:`Finding` — one diagnostic, with a stable text/JSON rendering.
* :class:`ModuleInfo` — a parsed source file plus its per-line
  suppressions (``# simlint: ignore[SIM001]`` or a blanket
  ``# simlint: ignore``); a suppression on the finding's line silences it.
* :class:`LintConfig` — defaults, overridable from ``[tool.simlint]`` in
  ``pyproject.toml`` and from the CLI.
* :data:`RULES` / :func:`register` — the rule registry.
* :func:`run_lint` — collect files, parse, run per-module and
  whole-program checks, filter suppressions, return sorted findings.

Everything is stdlib-only (``ast``, ``tokenize``-free comment scanning,
``tomllib``) so the CI gate needs no extra dependencies.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import (Dict, FrozenSet, Iterable, List, Optional, Sequence,
                    Tuple)

__all__ = [
    "Finding",
    "LintConfig",
    "ModuleInfo",
    "ParseError",
    "Rule",
    "RULES",
    "register",
    "iter_source_files",
    "parse_modules",
    "run_lint",
]

#: Rule code reserved for files the linter cannot parse.
PARSE_ERROR_CODE = "SIM000"

_SUPPRESSION_RE = re.compile(
    r"#\s*simlint:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?")


# ----------------------------------------------------------------------
# findings
# ----------------------------------------------------------------------
@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic emitted by a rule."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        """The canonical one-line text rendering."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly representation (``--format json``)."""
        return {"path": self.path, "line": self.line, "col": self.col,
                "rule": self.rule, "message": self.message}


class ParseError(Exception):
    """A target file could not be parsed (reported as a SIM000 finding)."""


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------
#: View-state attributes the epoch contract (SIM001) protects.  Covers the
#: protocol node's local view and the oracle node's field names so the
#: rule survives refactors that move handlers between the two planes.
DEFAULT_VIEW_ATTRS = frozenset({
    "voronoi", "close", "long_links", "back_links",
    "voronoi_region", "close_neighbors",
})


@dataclass(frozen=True)
class LintConfig:
    """Effective configuration of one lint run.

    Defaults match the shipped tree; ``[tool.simlint]`` in
    ``pyproject.toml`` overrides them (keys spelled with dashes, e.g.
    ``determinism-paths``), and CLI ``--select``/``--ignore`` override the
    config file.  Path scopes are matched as substrings of the
    posix-rendered file path, so they work from the repo root, an absolute
    path, or a subdirectory invocation alike.
    """

    paths: Tuple[str, ...] = ("src",)
    select: Optional[FrozenSet[str]] = None
    ignore: FrozenSet[str] = frozenset()
    #: Scope of the determinism rule (SIM002).
    determinism_paths: Tuple[str, ...] = ("repro/simulation", "repro/core")
    #: Scope of the slots rule (SIM003).
    slots_paths: Tuple[str, ...] = ("repro/simulation",)
    #: Class names SIM003 never flags (config-level exemption; inline
    #: suppressions work too and carry their justification in-source).
    slots_exempt: FrozenSet[str] = frozenset()
    #: Attributes whose mutation must bump ``view_epoch`` (SIM001).
    view_attrs: FrozenSet[str] = DEFAULT_VIEW_ATTRS
    #: Scope of the shard-epoch rule (SIM006).
    shard_epoch_paths: Tuple[str, ...] = ("repro/core",)
    #: Node containers whose mutation changes forwarding candidates
    #: (SIM006).  Back links are deliberately absent: BLRn is not routed
    #: on, so back-registration churn needs no invalidation.
    topology_attrs: FrozenSet[str] = frozenset({
        "long_links", "close_neighbors",
    })
    #: ObjectNode methods that mutate a topology container (SIM006).
    topology_mutators: FrozenSet[str] = frozenset({
        "set_long_link", "retarget_long_link",
        "add_close_neighbor", "discard_close_neighbor",
    })
    #: Calls that discharge the per-shard epoch contract (SIM006):
    #: the overlay entry point, or the sharded store's bump primitives.
    epoch_bump_calls: FrozenSet[str] = frozenset({
        "invalidate_routing_tables", "bump_object_ids", "bump_all",
    })
    #: Class definitions SIM005 reads counter fields from.
    stats_classes: Tuple[str, ...] = ("OverlayStats", "OperationStats")
    #: Attribute names treated as "the stats object" in write sites.
    stats_attr_names: Tuple[str, ...] = ("stats", "_stats")

    @classmethod
    def from_pyproject(cls, pyproject: Optional[Path]) -> "LintConfig":
        """Load ``[tool.simlint]`` from ``pyproject.toml`` (missing → defaults)."""
        config = cls()
        if pyproject is None or not pyproject.is_file():
            return config
        import tomllib
        with open(pyproject, "rb") as handle:
            data = tomllib.load(handle)
        table = data.get("tool", {}).get("simlint", {})
        if not isinstance(table, dict):
            raise ParseError(f"[tool.simlint] in {pyproject} is not a table")
        known = {f.name: f for f in fields(cls)}
        overrides: Dict[str, object] = {}
        for key, value in table.items():
            name = key.replace("-", "_")
            if name not in known:
                raise ParseError(f"unknown [tool.simlint] key {key!r}")
            if name == "select":
                overrides[name] = frozenset(value)
            elif name in ("ignore", "slots_exempt", "view_attrs",
                          "topology_attrs", "topology_mutators",
                          "epoch_bump_calls"):
                overrides[name] = frozenset(value)
            else:
                overrides[name] = tuple(value)
        return replace(config, **overrides)

    def active_rules(self, select: Optional[Iterable[str]] = None,
                     ignore: Optional[Iterable[str]] = None) -> FrozenSet[str]:
        """Rule codes enabled for a run, after CLI overrides."""
        chosen = frozenset(select) if select else self.select
        if chosen is None:
            chosen = frozenset(RULES)
        dropped = frozenset(ignore) if ignore else self.ignore
        unknown = (chosen | dropped) - frozenset(RULES)
        if unknown:
            raise ParseError(
                f"unknown rule code(s): {', '.join(sorted(unknown))} "
                f"(known: {', '.join(sorted(RULES))})")
        return chosen - dropped


def path_in_scope(display: str, fragments: Sequence[str]) -> bool:
    """Whether a posix file path falls under any scope fragment."""
    return any(fragment in display for fragment in fragments)


# ----------------------------------------------------------------------
# parsed modules and suppressions
# ----------------------------------------------------------------------
@dataclass
class ModuleInfo:
    """One parsed source file plus its inline suppressions."""

    path: Path
    display: str
    source: str
    tree: ast.Module
    #: line → ``None`` (blanket ``# simlint: ignore``) or the suppressed
    #: rule codes from ``# simlint: ignore[SIM001,SIM003]``.
    suppressions: Dict[int, Optional[FrozenSet[str]]] = field(
        default_factory=dict)

    @classmethod
    def parse(cls, path: Path) -> "ModuleInfo":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        return cls(path=path, display=path.as_posix(), source=source,
                   tree=tree, suppressions=scan_suppressions(source))

    def suppressed(self, rule: str, line: int) -> bool:
        """Whether a finding of ``rule`` at ``line`` is suppressed."""
        if line not in self.suppressions:
            return False
        rules = self.suppressions[line]
        return rules is None or rule in rules


def scan_suppressions(source: str) -> Dict[int, Optional[FrozenSet[str]]]:
    """Per-line suppression directives found in ``source``.

    Only lines actually containing a ``#`` are regex-scanned; a directive
    inside a string literal on such a line would be honoured too — the
    cheap scan is deliberate (the directive grammar leaves no room for
    accidental matches in real code).
    """
    suppressions: Dict[int, Optional[FrozenSet[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "simlint" not in line:
            continue
        match = _SUPPRESSION_RE.search(line)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            suppressions[lineno] = None
        else:
            codes = frozenset(code.strip() for code in rules.split(",")
                              if code.strip())
            # Merge with an earlier directive on the same line (unusual,
            # but "last writer wins" would silently drop codes).
            previous = suppressions.get(lineno, frozenset())
            if previous is None:
                continue
            suppressions[lineno] = codes | previous
    return suppressions


# ----------------------------------------------------------------------
# rule registry
# ----------------------------------------------------------------------
class Rule:
    """Base class of simlint rules.

    Subclasses set ``code`` / ``name`` / ``summary`` and override one or
    both check hooks.  Rules are stateless singletons: the registry keeps
    one instance, and every hook receives everything it needs.
    """

    code: str = ""
    name: str = ""
    summary: str = ""

    def check_module(self, module: ModuleInfo,
                     config: LintConfig) -> Iterable[Finding]:
        """Per-file findings (independent of every other file)."""
        return ()

    def check_program(self, modules: Sequence[ModuleInfo],
                      config: LintConfig) -> Iterable[Finding]:
        """Whole-program findings (run once over all collected files)."""
        return ()


RULES: Dict[str, Rule] = {}


def register(cls):
    """Class decorator adding a rule to the registry (singleton instance)."""
    if not cls.code:
        raise ValueError(f"rule {cls.__name__} declares no code")
    if cls.code in RULES:
        raise ValueError(f"duplicate rule code {cls.code}")
    RULES[cls.code] = cls()
    return cls


# ----------------------------------------------------------------------
# the driver
# ----------------------------------------------------------------------
def iter_source_files(paths: Sequence[Path]) -> List[Path]:
    """Every ``.py`` file under ``paths``, sorted, hidden dirs skipped."""
    seen = {}
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                seen[path.resolve()] = path
            continue
        if not path.is_dir():
            raise ParseError(f"no such file or directory: {path}")
        for candidate in sorted(path.rglob("*.py")):
            parts = candidate.relative_to(path).parts
            if any(part.startswith(".") or part == "__pycache__"
                   for part in parts):
                continue
            seen[candidate.resolve()] = candidate
    return sorted(seen.values(), key=lambda p: p.as_posix())


def parse_modules(files: Sequence[Path]) -> Tuple[List[ModuleInfo],
                                                  List[Finding]]:
    """Parse every file; syntax errors become SIM000 findings."""
    modules: List[ModuleInfo] = []
    errors: List[Finding] = []
    for path in files:
        try:
            modules.append(ModuleInfo.parse(path))
        except SyntaxError as exc:
            errors.append(Finding(
                path=path.as_posix(), line=exc.lineno or 1,
                col=(exc.offset or 1), rule=PARSE_ERROR_CODE,
                message=f"cannot parse file: {exc.msg}"))
    return modules, errors


def run_lint(paths: Sequence[Path], config: Optional[LintConfig] = None, *,
             select: Optional[Iterable[str]] = None,
             ignore: Optional[Iterable[str]] = None) -> List[Finding]:
    """Lint ``paths``; returns suppression-filtered findings, sorted.

    Parse failures surface as :data:`SIM000 <PARSE_ERROR_CODE>` findings
    (never suppressible, never deselectable): a file the linter cannot
    read is a file whose invariants nobody is checking.
    """
    # Import for side effects: the shipped rules register themselves.
    from repro.lint import rules as _rules  # noqa: F401
    if config is None:
        config = LintConfig()
    active = config.active_rules(select, ignore)
    modules, findings = parse_modules(iter_source_files(paths))
    by_display = {module.display: module for module in modules}
    for code in sorted(active):
        rule = RULES[code]
        for module in modules:
            findings.extend(rule.check_module(module, config))
        findings.extend(rule.check_program(modules, config))
    kept = []
    for finding in findings:
        module = by_display.get(finding.path)
        if (module is not None and finding.rule != PARSE_ERROR_CODE
                and module.suppressed(finding.rule, finding.line)):
            continue
        kept.append(finding)
    return sorted(kept)

"""Command-line entry point: ``python -m repro.lint [paths] [options]``.

Exit status is 0 on a clean run, 1 when findings were emitted, 2 on usage
or configuration errors — the same convention ruff and mypy follow, so CI
can gate on the return code directly.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.framework import (Finding, LintConfig, ParseError, RULES,
                                  run_lint)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=("simlint: repo-specific static analysis for the "
                     "simulation plane (epoch contract, determinism, "
                     "slots, dispatch consistency, stats accounting)"))
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint (default: 'paths' from "
             "[tool.simlint], falling back to 'src')")
    parser.add_argument(
        "--select", action="append", default=None, metavar="RULES",
        help="comma-separated rule codes to run (default: all registered)")
    parser.add_argument(
        "--ignore", action="append", default=None, metavar="RULES",
        help="comma-separated rule codes to skip")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)")
    parser.add_argument(
        "--config", type=Path, default=None, metavar="PYPROJECT",
        help="pyproject.toml to read [tool.simlint] from (default: "
             "./pyproject.toml if present)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and exit")
    return parser


def _split_codes(values: Optional[List[str]]) -> Optional[List[str]]:
    if not values:
        return None
    codes: List[str] = []
    for value in values:
        codes.extend(code.strip() for code in value.split(",")
                     if code.strip())
    return codes or None


def _render(findings: Sequence[Finding], fmt: str) -> str:
    if fmt == "json":
        return json.dumps([finding.as_dict() for finding in findings],
                          indent=2)
    lines = [finding.render() for finding in findings]
    if findings:
        plural = "" if len(findings) == 1 else "s"
        lines.append(f"simlint: {len(findings)} finding{plural}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    # Rules register on import; --list-rules must see them.
    from repro.lint import rules as _rules  # noqa: F401

    if args.list_rules:
        for code in sorted(RULES):
            rule = RULES[code]
            print(f"{code} {rule.name}: {rule.summary}")
        return 0

    pyproject = args.config
    if pyproject is None:
        candidate = Path("pyproject.toml")
        pyproject = candidate if candidate.is_file() else None
    try:
        config = LintConfig.from_pyproject(pyproject)
        paths = [Path(p) for p in args.paths] or \
            [Path(p) for p in config.paths]
        findings = run_lint(paths, config,
                            select=_split_codes(args.select),
                            ignore=_split_codes(args.ignore))
    except ParseError as exc:
        print(f"simlint: error: {exc}", file=sys.stderr)
        return 2
    output = _render(findings, args.format)
    if output:
        print(output)
    return 1 if findings else 0

"""The shipped simlint rules (SIM001–SIM006).

Each rule encodes one convention the simulation plane's correctness rests
on; the module docstrings of :mod:`repro.simulation.protocol` and
:mod:`repro.simulation.faults` state the contracts, ``LINTING.md`` at the
repo root documents the rules, and the fixture suite under ``tests/lint``
pins a true positive, a true negative and a suppressed case for each.

SIM001 epoch-contract
    Every message handler (``_on_*`` / ``handle_*`` method) that mutates a
    view-state attribute must bump ``view_epoch`` — via ``touch_view()``
    or a direct increment — on every mutating path; the per-node routing
    cache is invalidated by exactly that bump.

SIM002 determinism
    Inside the deterministic-replay scope (``repro/simulation`` and
    ``repro/core``): no module-level ``random.*`` / ``numpy.random.*``
    global-state draws, no unseeded ``random.Random()`` /
    ``default_rng()`` / ``RandomSource()``, no wall clocks
    (``time.time()``, ``datetime.now()``), and no iteration over
    set-typed values whose order could leak into message sequencing.
    Set-to-set derivations (``SetComp``) are order-independent and exempt;
    wrapping the iterable in ``sorted(...)`` satisfies the rule.

SIM003 slots
    Classes in ``repro/simulation`` that assign instance attributes in
    ``__init__`` must declare ``__slots__`` — the message plane's hot-path
    discipline (dataclasses and exempted classes excluded).

SIM004 dispatch-consistency
    Whole-program: every message ``kind`` string passed to a
    ``send``/``send_message`` call (or a ``Message(...)`` construction)
    must have a registered ``_on_<kind>`` handler, and every handler's
    kind must be sent somewhere.

SIM005 stats-accounting
    Whole-program: attribute writes through a ``stats`` / ``_stats``
    object must name counters that exist on the ``OverlayStats`` /
    ``OperationStats`` class definitions — a typo'd counter silently
    creates a fresh attribute and the intended one stays zero.

SIM006 shard-epoch-contract
    The oracle plane's counterpart of SIM001, for the per-shard epoch
    scheme of :mod:`repro.core.shards`: any function under ``repro/core``
    that mutates another node's routing-relevant containers
    (``long_links`` / ``close_neighbors`` — directly or via the
    ``ObjectNode`` mutator methods) must be followed, on every mutating
    path, by ``invalidate_routing_tables(...)`` or a direct store bump
    (``bump_object_ids`` / ``bump_all``).  Back-link churn is exempt
    (``BLRn`` is not routed on), as are the primitive mutator bodies on
    ``ObjectNode`` itself (bare-``self`` receivers) — they cannot reach
    the overlay, so the contract binds their call sites.
"""

from __future__ import annotations

import ast
from typing import (Dict, FrozenSet, Iterable, List, Optional, Sequence, Set,
                    Tuple)

from repro.lint.framework import (Finding, LintConfig, ModuleInfo, Rule,
                                  path_in_scope, register)

__all__ = [
    "EpochContractRule",
    "DeterminismRule",
    "SlotsRule",
    "DispatchConsistencyRule",
    "StatsAccountingRule",
    "ShardEpochContractRule",
    "collect_sent_kinds",
    "collect_handled_kinds",
]


# ----------------------------------------------------------------------
# shared AST helpers
# ----------------------------------------------------------------------
def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, ``None`` for anything else."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


def _self_view_attr(node: ast.AST, view_attrs: FrozenSet[str],
                    aliases: Dict[str, str]) -> Optional[str]:
    """View attribute a target/receiver chain ultimately writes through.

    Walks down attribute/subscript chains so ``self.long_links[i].neighbor``
    and ``link.neighbor`` (with ``link = self.long_links[i]``) both resolve
    to ``long_links``.
    """
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute):
            if (isinstance(node.value, ast.Name) and node.value.id == "self"
                    and node.attr in view_attrs):
                return node.attr
            node = node.value
        else:
            node = node.value
    if isinstance(node, ast.Name):
        return aliases.get(node.id)
    return None


#: Methods that mutate the container they are called on.
_MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "pop", "popitem",
    "clear", "remove", "discard", "setdefault", "sort", "reverse",
})


def _block_paths(fn: ast.AST) -> Dict[int, Tuple[Tuple[int, int], ...]]:
    """Map ``id(stmt)`` → its chain of ``(block id, index)`` positions.

    Two statements share a block prefix exactly as far as they share
    enclosing statement lists; where the prefixes diverge tells whether
    one statement executes after the other on every path (same block,
    later index) or sits in a sibling branch (different blocks).
    """
    paths: Dict[int, Tuple[Tuple[int, int], ...]] = {}

    def visit_block(body: List[ast.stmt],
                    prefix: Tuple[Tuple[int, int], ...]) -> None:
        for index, stmt in enumerate(body):
            path = prefix + ((id(body), index),)
            paths[id(stmt)] = path
            for field_value in stmt.__dict__.values():
                if (isinstance(field_value, list) and field_value
                        and isinstance(field_value[0], ast.stmt)):
                    visit_block(field_value, path)
                elif (isinstance(field_value, list) and field_value
                        and isinstance(field_value[0], ast.excepthandler)):
                    for handler in field_value:
                        visit_block(handler.body, path)

    visit_block(fn.body, ())
    return paths


def _nearest_statements(fn: ast.AST) -> Dict[int, ast.stmt]:
    """Map ``id(node)`` → the innermost statement containing it."""
    owner: Dict[int, ast.stmt] = {}

    def visit(node: ast.AST, current: Optional[ast.stmt]) -> None:
        if isinstance(node, ast.stmt):
            current = node
        if current is not None:
            owner[id(node)] = current
        for child in ast.iter_child_nodes(node):
            visit(child, current)

    for stmt in fn.body:
        visit(stmt, None)
    return owner


def _covers(touch_path: Tuple[Tuple[int, int], ...], touch_line: int,
            mut_path: Tuple[Tuple[int, int], ...], mut_line: int) -> bool:
    """Does a bump at ``touch_path`` dominate the mutation forward?

    True when, at the first point the two block paths diverge, the bump's
    statement comes *later in the same block* — i.e. it runs after the
    mutation on every path that executed the mutation.  A bump in a
    sibling branch (different block at the divergence) covers nothing.
    """
    for (touch_block, touch_index), (mut_block, mut_index) in zip(
            touch_path, mut_path):
        if touch_block != mut_block:
            return False
        if touch_index != mut_index:
            return touch_index > mut_index
    # One path is a prefix of the other: same statement spine.  Fall back
    # to source order inside that statement (rare; e.g. a mutation and a
    # bump chained in one expression statement).
    return touch_line > mut_line


# ----------------------------------------------------------------------
# SIM001 — epoch contract
# ----------------------------------------------------------------------
@register
class EpochContractRule(Rule):
    code = "SIM001"
    name = "epoch-contract"
    summary = ("message handlers mutating view state must bump view_epoch "
               "on every mutating path")

    _HANDLER_PREFIXES = ("_on_", "handle_")

    def check_module(self, module: ModuleInfo,
                     config: LintConfig) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for item in node.body:
                if (isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and item.name.startswith(self._HANDLER_PREFIXES)):
                    yield from self._check_handler(module, item, config)

    def _check_handler(self, module: ModuleInfo, fn: ast.FunctionDef,
                       config: LintConfig) -> Iterable[Finding]:
        view_attrs = config.view_attrs
        aliases: Dict[str, str] = {}
        for node in ast.walk(fn):
            if (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)):
                attr = _self_view_attr(node.value, view_attrs, {})
                if attr is not None:
                    aliases[node.targets[0].id] = attr

        mutations: List[Tuple[ast.AST, str]] = []
        touches: List[ast.AST] = []
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    # A bare-name target is the alias *creation*, not a
                    # mutation of the aliased container.
                    if isinstance(target, ast.Name):
                        continue
                    attr = _self_view_attr(target, view_attrs, aliases)
                    if attr is not None:
                        mutations.append((node, attr))
            elif isinstance(node, ast.AugAssign):
                if self._is_epoch_target(node.target):
                    touches.append(node)
                    continue
                attr = _self_view_attr(node.target, view_attrs, aliases)
                if attr is not None:
                    mutations.append((node, attr))
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    attr = _self_view_attr(target, view_attrs, aliases)
                    if attr is not None:
                        mutations.append((node, attr))
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute):
                    if func.attr == "touch_view":
                        touches.append(node)
                    elif func.attr in _MUTATING_METHODS:
                        attr = _self_view_attr(func.value, view_attrs,
                                               aliases)
                        if attr is not None:
                            mutations.append((node, attr))
        if not mutations:
            return
        paths = _block_paths(fn)
        owners = _nearest_statements(fn)
        touch_sites = [(paths.get(id(owners.get(id(t)))), t.lineno)
                       for t in touches if id(t) in owners]
        for node, attr in mutations:
            stmt = owners.get(id(node))
            mut_path = paths.get(id(stmt)) if stmt is not None else None
            if mut_path is None:
                continue
            covered = any(
                touch_path is not None
                and _covers(touch_path, touch_line, mut_path, node.lineno)
                for touch_path, touch_line in touch_sites)
            if not covered:
                yield Finding(
                    path=module.display, line=node.lineno,
                    col=node.col_offset + 1, rule=self.code,
                    message=(f"handler {fn.name!r} mutates view attribute "
                             f"{attr!r} without bumping view_epoch on this "
                             f"path (call self.touch_view() after the "
                             f"mutation)"))

    @staticmethod
    def _is_epoch_target(target: ast.AST) -> bool:
        return (isinstance(target, ast.Attribute)
                and target.attr == "view_epoch")


# ----------------------------------------------------------------------
# SIM006 — shard epoch contract
# ----------------------------------------------------------------------
def _external_topology_attr(node: ast.AST,
                            topology_attrs: FrozenSet[str]) -> Optional[str]:
    """Topology container a receiver/target chain mutates on another node.

    Walks down attribute/subscript chains (``node.long_links[i].neighbor``,
    ``overlay.node(nid).close_neighbors``) looking for a topology attribute.
    A chain rooted directly at bare ``self`` (``self.close_neighbors``) is
    *not* reported: those are the primitive mutator definitions on
    ``ObjectNode`` itself, which cannot reach the overlay to bump epochs —
    the contract binds their call sites instead.
    """
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute) and node.attr in topology_attrs:
            base = node.value
            if isinstance(base, ast.Name) and base.id == "self":
                return None
            return node.attr
        node = node.value
    return None


@register
class ShardEpochContractRule(Rule):
    code = "SIM006"
    name = "shard-epoch-contract"
    summary = ("core code mutating a node's routing-relevant containers "
               "must invalidate routing tables (per-shard epoch bump) on "
               "every mutating path")

    def check_module(self, module: ModuleInfo,
                     config: LintConfig) -> Iterable[Finding]:
        if not path_in_scope(module.display, config.shard_epoch_paths):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(module, node, config)

    @staticmethod
    def _walk_own_body(fn: ast.AST) -> Iterable[ast.AST]:
        """Walk ``fn`` skipping nested defs — their bodies do not run where
        they are written, so neither their mutations nor their bumps
        belong to this function's paths (they get their own visit)."""
        stack: List[ast.AST] = [fn]
        while stack:
            node = stack.pop()
            if node is not fn and isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def _check_function(self, module: ModuleInfo, fn: ast.FunctionDef,
                        config: LintConfig) -> Iterable[Finding]:
        mutations: List[Tuple[ast.AST, str]] = []
        bumps: List[ast.AST] = []
        for node in self._walk_own_body(fn):
            if isinstance(node, ast.Call):
                func = node.func
                if not isinstance(func, ast.Attribute):
                    continue
                if func.attr in config.epoch_bump_calls:
                    bumps.append(node)
                elif func.attr in config.topology_mutators:
                    receiver = func.value
                    if not (isinstance(receiver, ast.Name)
                            and receiver.id == "self"):
                        mutations.append((node, func.attr))
                elif func.attr in _MUTATING_METHODS:
                    attr = _external_topology_attr(
                        func.value, config.topology_attrs)
                    if attr is not None:
                        mutations.append((node, attr))
            elif isinstance(node, (ast.Assign, ast.Delete)):
                for target in node.targets:
                    attr = _external_topology_attr(
                        target, config.topology_attrs)
                    if attr is not None:
                        mutations.append((node, attr))
            elif isinstance(node, ast.AugAssign):
                attr = _external_topology_attr(
                    node.target, config.topology_attrs)
                if attr is not None:
                    mutations.append((node, attr))
        if not mutations:
            return
        paths = _block_paths(fn)
        owners = _nearest_statements(fn)
        bump_sites = [(paths.get(id(owners.get(id(b)))), b.lineno)
                      for b in bumps if id(b) in owners]
        for node, attr in mutations:
            stmt = owners.get(id(node))
            mut_path = paths.get(id(stmt)) if stmt is not None else None
            if mut_path is None:
                continue
            covered = any(
                bump_path is not None
                and _covers(bump_path, bump_line, mut_path, node.lineno)
                for bump_path, bump_line in bump_sites)
            if not covered:
                yield Finding(
                    path=module.display, line=node.lineno,
                    col=node.col_offset + 1, rule=self.code,
                    message=(f"{fn.name!r} mutates routing-relevant "
                             f"{attr!r} without a following "
                             f"invalidate_routing_tables()/per-shard epoch "
                             f"bump on this path — cached routing tables "
                             f"in the touched shards go stale"))


# ----------------------------------------------------------------------
# SIM002 — determinism
# ----------------------------------------------------------------------
_SET_ANNOTATION_NAMES = frozenset({
    "Set", "set", "FrozenSet", "frozenset", "AbstractSet", "MutableSet",
})

_WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
})


def _is_set_annotation(annotation: Optional[ast.AST]) -> bool:
    if annotation is None:
        return False
    node = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    name = dotted_name(node) or ""
    return name.split(".")[-1] in _SET_ANNOTATION_NAMES


def _is_set_expr(node: ast.AST, set_vars: Set[str]) -> bool:
    """Whether an expression statically evaluates to a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func) or ""
        return name.split(".")[-1] in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return (_is_set_expr(node.left, set_vars)
                or _is_set_expr(node.right, set_vars))
    if isinstance(node, ast.Name):
        return node.id in set_vars
    return False


@register
class DeterminismRule(Rule):
    code = "SIM002"
    name = "determinism"
    summary = ("no global-state RNG, unseeded generators, wall clocks or "
               "order-nondeterministic set iteration in the replay scope")

    def check_module(self, module: ModuleInfo,
                     config: LintConfig) -> Iterable[Finding]:
        if not path_in_scope(module.display, config.determinism_paths):
            return
        yield from self._check_calls(module)
        yield from self._check_set_iteration(module)

    # -- RNG and wall clocks -------------------------------------------
    def _check_calls(self, module: ModuleInfo) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            message = self._classify_call(name, node)
            if message is not None:
                yield Finding(path=module.display, line=node.lineno,
                              col=node.col_offset + 1, rule=self.code,
                              message=message)

    @staticmethod
    def _classify_call(name: str, node: ast.Call) -> Optional[str]:
        unseeded = not node.args and not node.keywords
        if name == "random.Random":
            if unseeded:
                return ("unseeded random.Random(); derive the stream from "
                        "a seeded RandomSource instead")
            return None
        if name.startswith("random."):
            return (f"{name}() draws from the module-level global RNG; use "
                    f"a seeded RandomSource so replays are reproducible")
        if name.endswith(("numpy.random.default_rng",
                          "np.random.default_rng")) \
                or name in ("numpy.random.default_rng",
                            "np.random.default_rng"):
            if unseeded:
                return ("unseeded numpy default_rng(); pass a seed or fork "
                        "a RandomSource")
            return None
        if name.startswith(("numpy.random.", "np.random.")):
            tail = name.split(".")[-1]
            if tail[:1].isupper() or tail == "Generator":
                return None  # type references (np.random.Generator(...))
            return (f"{name}() uses numpy's global RNG state; draw from a "
                    f"seeded RandomSource/Generator instead")
        if name.split(".")[-1] == "RandomSource" and unseeded:
            return ("unseeded RandomSource(); thread a seed (or a forked "
                    "parent stream) through so runs are reproducible")
        if name in _WALL_CLOCK_CALLS:
            return (f"{name}() reads the wall clock; simulation code must "
                    f"use the engine's virtual clock")
        parts = name.split(".")
        if parts[-1] in ("now", "utcnow", "today") and any(
                part in ("datetime", "date") for part in parts[:-1] or [""]):
            return (f"{name}() reads the wall clock; simulation code must "
                    f"use the engine's virtual clock")
        return None

    # -- set iteration --------------------------------------------------
    def _check_set_iteration(self, module: ModuleInfo) -> Iterable[Finding]:
        for scope_node, class_set_attrs in self._scopes(module.tree):
            yield from self._check_scope(module, scope_node, class_set_attrs)

    @staticmethod
    def _scopes(tree: ast.Module):
        """Yield ``(function, set-typed self attrs of its class)`` pairs."""

        def class_set_attrs(classdef: ast.ClassDef) -> FrozenSet[str]:
            attrs = set()
            for item in classdef.body:
                if (isinstance(item, ast.AnnAssign)
                        and isinstance(item.target, ast.Name)
                        and _is_set_annotation(item.annotation)):
                    attrs.add(item.target.id)
            return frozenset(attrs)

        def walk(node: ast.AST, attrs: FrozenSet[str]):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.ClassDef):
                    yield from walk(child, class_set_attrs(child))
                elif isinstance(child, (ast.FunctionDef,
                                        ast.AsyncFunctionDef)):
                    yield child, attrs
                    yield from walk(child, attrs)
                else:
                    yield from walk(child, attrs)

        yield from walk(tree, frozenset())

    def _check_scope(self, module: ModuleInfo, fn: ast.AST,
                     class_set_attrs: FrozenSet[str]) -> Iterable[Finding]:
        set_vars: Set[str] = set()
        args = getattr(fn, "args", None)
        if args is not None:
            for arg in (args.posonlyargs + args.args + args.kwonlyargs):
                if _is_set_annotation(arg.annotation):
                    set_vars.add(arg.arg)

        # Source-ordered events: assignments update the set-typed name
        # state; iteration sites are judged against the state at their
        # line.  Flow-insensitive within loops — acceptable for a lint.
        events: List[Tuple[int, int, str, ast.AST]] = []
        for node in ast.walk(fn):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node is not fn:
                continue  # nested scopes are visited separately
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                events.append((node.lineno, node.col_offset, "assign", node))
            elif isinstance(node, ast.AnnAssign) \
                    and isinstance(node.target, ast.Name):
                events.append((node.lineno, node.col_offset, "assign", node))
            elif isinstance(node, ast.For):
                events.append((node.lineno, node.col_offset, "iter",
                               node.iter))
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp,
                                   ast.DictComp)):
                # SetComp is exempt: a set built from a set is
                # order-independent by construction.
                for generator in node.generators:
                    events.append((node.lineno, node.col_offset, "iter",
                                   generator.iter))
        events.sort(key=lambda event: (event[0], event[1]))
        findings: List[Finding] = []
        for _line, _col, kind, node in events:
            if kind == "assign":
                if isinstance(node, ast.Assign):
                    target, value = node.targets[0], node.value
                else:
                    target, value = node.target, node.value
                if value is None:
                    continue
                is_set = (_is_set_expr(value, set_vars)
                          or (isinstance(node, ast.AnnAssign)
                              and _is_set_annotation(node.annotation)))
                if is_set:
                    set_vars.add(target.id)
                else:
                    set_vars.discard(target.id)
                continue
            source = self._set_iter_source(node, set_vars, class_set_attrs)
            if source is not None:
                findings.append(Finding(
                    path=module.display, line=node.lineno,
                    col=node.col_offset + 1, rule=self.code,
                    message=(f"iteration over set {source} is "
                             f"order-nondeterministic; iterate "
                             f"sorted(...) or an ordered container")))
        yield from findings

    @staticmethod
    def _set_iter_source(node: ast.AST, set_vars: Set[str],
                         class_set_attrs: FrozenSet[str]) -> Optional[str]:
        if isinstance(node, ast.Set):
            return "literal"
        if isinstance(node, ast.SetComp):
            return "comprehension"
        if isinstance(node, ast.Call):
            name = dotted_name(node.func) or ""
            if name.split(".")[-1] in ("set", "frozenset"):
                return f"{name}(...)"
            return None
        if isinstance(node, ast.Name) and node.id in set_vars:
            return f"{node.id!r}"
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in class_set_attrs):
            return f"'self.{node.attr}'"
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
            if _is_set_expr(node, set_vars):
                return "expression"
        return None


# ----------------------------------------------------------------------
# SIM003 — slots
# ----------------------------------------------------------------------
@register
class SlotsRule(Rule):
    code = "SIM003"
    name = "slots"
    summary = ("simulation-plane classes assigning instance attributes in "
               "__init__ must declare __slots__")

    def check_module(self, module: ModuleInfo,
                     config: LintConfig) -> Iterable[Finding]:
        if not path_in_scope(module.display, config.slots_paths):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if node.name in config.slots_exempt:
                continue
            if any(self._is_dataclass_decorator(dec)
                   for dec in node.decorator_list):
                continue
            if self._declares_slots(node):
                continue
            attrs = self._init_attrs(node)
            if attrs:
                shown = ", ".join(sorted(attrs)[:4])
                if len(attrs) > 4:
                    shown += ", ..."
                yield Finding(
                    path=module.display, line=node.lineno,
                    col=node.col_offset + 1, rule=self.code,
                    message=(f"class {node.name!r} assigns instance "
                             f"attributes in __init__ ({shown}) but "
                             f"declares no __slots__"))

    @staticmethod
    def _is_dataclass_decorator(dec: ast.AST) -> bool:
        if isinstance(dec, ast.Call):
            dec = dec.func
        name = dotted_name(dec) or ""
        return name.split(".")[-1] == "dataclass"

    @staticmethod
    def _declares_slots(classdef: ast.ClassDef) -> bool:
        for item in classdef.body:
            if isinstance(item, ast.Assign):
                targets = item.targets
            elif isinstance(item, ast.AnnAssign):
                targets = [item.target]
            else:
                continue
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return True
        return False

    @staticmethod
    def _init_attrs(classdef: ast.ClassDef) -> Set[str]:
        init = next((item for item in classdef.body
                     if isinstance(item, ast.FunctionDef)
                     and item.name == "__init__"), None)
        if init is None:
            return set()
        attrs: Set[str] = set()
        for node in ast.walk(init):
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            for target in targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    attrs.add(target.attr)
        return attrs


# ----------------------------------------------------------------------
# SIM004 — dispatch consistency
# ----------------------------------------------------------------------
_SEND_METHOD_NAMES = frozenset({"send", "send_message"})
_KIND_POSITION = 2  # send(sender, recipient, kind, ...) / Message(s, r, kind)


def collect_sent_kinds(modules: Sequence[ModuleInfo]
                       ) -> Dict[str, List[Tuple[str, int, int]]]:
    """Every literal message kind sent, with its send sites.

    Collected from ``*.send(sender, recipient, "KIND", ...)`` /
    ``*.send_message(...)`` calls and ``Message(..., kind="KIND")``
    constructions.  Dynamic kinds (forwarding ``message.kind``) are
    invisible to this pass by design — every forwarded kind was first
    sent somewhere with a literal.
    """
    sent: Dict[str, List[Tuple[str, int, int]]] = {}
    for module in modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            kind = _literal_kind(node)
            if kind is not None:
                sent.setdefault(kind, []).append(
                    (module.display, node.lineno, node.col_offset + 1))
    return sent


def _literal_kind(node: ast.Call) -> Optional[str]:
    func = node.func
    is_send = (isinstance(func, ast.Attribute)
               and func.attr in _SEND_METHOD_NAMES)
    name = dotted_name(func) or ""
    is_message = name.split(".")[-1] == "Message"
    if not is_send and not is_message:
        return None
    for keyword in node.keywords:
        if keyword.arg == "kind":
            if isinstance(keyword.value, ast.Constant) \
                    and isinstance(keyword.value.value, str):
                return keyword.value.value
            return None
    if len(node.args) > _KIND_POSITION:
        arg = node.args[_KIND_POSITION]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
    return None


def collect_handled_kinds(modules: Sequence[ModuleInfo]
                          ) -> Dict[str, List[Tuple[str, int, int]]]:
    """Every kind with a registered ``_on_<kind>`` handler, with def sites."""
    handled: Dict[str, List[Tuple[str, int, int]]] = {}
    for module in modules:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node.name.startswith("_on_") and len(node.name) > 4:
                kind = node.name[4:].upper()
                handled.setdefault(kind, []).append(
                    (module.display, node.lineno, node.col_offset + 1))
    return handled


@register
class DispatchConsistencyRule(Rule):
    code = "SIM004"
    name = "dispatch-consistency"
    summary = ("every sent message kind needs an _on_<kind> handler and "
               "every handler's kind must be sent somewhere")

    def check_program(self, modules: Sequence[ModuleInfo],
                      config: LintConfig) -> Iterable[Finding]:
        handled = collect_handled_kinds(modules)
        if not handled:
            # Linting a subset with no protocol handlers: sent kinds
            # cannot be judged (their handlers live elsewhere).
            return
        sent = collect_sent_kinds(modules)
        for kind in sorted(set(sent) - set(handled)):
            path, line, col = sent[kind][0]
            yield Finding(
                path=path, line=line, col=col, rule=self.code,
                message=(f"message kind {kind!r} is sent but no "
                         f"_on_{kind.lower()} handler is registered"))
        for kind in sorted(set(handled) - set(sent)):
            path, line, col = handled[kind][0]
            yield Finding(
                path=path, line=line, col=col, rule=self.code,
                message=(f"handler _on_{kind.lower()} is registered but "
                         f"kind {kind!r} is never sent"))


# ----------------------------------------------------------------------
# SIM005 — stats accounting
# ----------------------------------------------------------------------
@register
class StatsAccountingRule(Rule):
    code = "SIM005"
    name = "stats-accounting"
    summary = ("writes through a stats object must name counters defined "
               "on the stats classes")

    def check_program(self, modules: Sequence[ModuleInfo],
                      config: LintConfig) -> Iterable[Finding]:
        members = self._stats_members(modules, config)
        if members is None:
            return
        names = config.stats_attr_names
        for module in modules:
            for node in ast.walk(module.tree):
                targets: List[ast.AST] = []
                if isinstance(node, ast.Assign):
                    targets = list(node.targets)
                elif isinstance(node, ast.AugAssign):
                    targets = [node.target]
                elif isinstance(node, ast.Delete):
                    targets = list(node.targets)
                elif isinstance(node, ast.Call) \
                        and isinstance(node.func, ast.Attribute):
                    targets = [node.func]
                for target in targets:
                    yield from self._check_chain(module, node, target,
                                                 names, members)

    @staticmethod
    def _stats_members(modules: Sequence[ModuleInfo],
                       config: LintConfig) -> Optional[FrozenSet[str]]:
        members: Set[str] = set()
        found = False
        for module in modules:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ClassDef) \
                        or node.name not in config.stats_classes:
                    continue
                found = True
                for item in node.body:
                    if isinstance(item, ast.AnnAssign) \
                            and isinstance(item.target, ast.Name):
                        members.add(item.target.id)
                    elif isinstance(item, ast.Assign):
                        for target in item.targets:
                            if isinstance(target, ast.Name):
                                members.add(target.id)
                    elif isinstance(item, (ast.FunctionDef,
                                           ast.AsyncFunctionDef)):
                        members.add(item.name)
        return frozenset(members) if found else None

    def _check_chain(self, module: ModuleInfo, site: ast.AST,
                     target: ast.AST, stats_names: Sequence[str],
                     members: FrozenSet[str]) -> Iterable[Finding]:
        # Unwind the attribute chain top-down, e.g.
        # self._stats.joins.count -> ["count", "joins", "_stats", ...].
        chain: List[str] = []
        node = target
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            if isinstance(node, ast.Attribute):
                chain.append(node.attr)
            node = node.value
        chain.reverse()  # base-first: ["_stats", "joins", "count"]
        for index, attr in enumerate(chain[:-1]):
            if attr in stats_names:
                for member in chain[index + 1:]:
                    if member not in members:
                        yield Finding(
                            path=module.display, line=site.lineno,
                            col=site.col_offset + 1, rule=self.code,
                            message=(f"{member!r} is not defined on the "
                                     f"stats classes "
                                     f"(OverlayStats/OperationStats); a "
                                     f"typo'd counter silently creates a "
                                     f"new attribute"))
                        return
                return

"""simlint: AST-based invariant checking for the simulation plane.

See ``LINTING.md`` at the repo root for the rule catalogue, the
suppression syntax and the contracts each rule encodes.  Programmatic
use::

    from pathlib import Path
    from repro.lint import run_lint

    findings = run_lint([Path("src")])
"""

from repro.lint.framework import (Finding, LintConfig, ModuleInfo,
                                  ParseError, Rule, RULES, register,
                                  iter_source_files, parse_modules,
                                  run_lint)

__all__ = [
    "Finding",
    "LintConfig",
    "ModuleInfo",
    "ParseError",
    "Rule",
    "RULES",
    "register",
    "iter_source_files",
    "parse_modules",
    "run_lint",
]

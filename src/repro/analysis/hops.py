"""Routing-cost measurement: the Figures 6 and 8 machinery.

The paper measures "mean route lengths for 100 000 random couples of
different objects in the overlay, computed after every 10 000 adds of
objects" — i.e. a sweep over overlay sizes, with a batch of random-pair
greedy routes measured at each size.  :func:`measure_routing` performs one
such batch; :func:`sweep_overlay_sizes` grows an overlay through a size
schedule, measuring at every checkpoint, and is the common engine behind
the Figure 6, 7 and 8 benchmarks.

:func:`sweep_protocol_overlay_sizes` is the message-level twin: the
overlay grows through :meth:`ProtocolSimulator.bulk_join
<repro.simulation.protocol.ProtocolSimulator.bulk_join>` and every
measured route is an actual greedy ``QUERY`` walk over per-node local
views — ground truth for the oracle sweep's routing figures at sizes the
sequential join protocol could never reach.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence

import numpy as np

from repro.core.overlay import VoroNet
from repro.utils.rng import RandomSource
from repro.workloads.generators import generate_routing_pairs

if TYPE_CHECKING:  # pragma: no cover - avoids a hard simulation dependency
    from repro.simulation.protocol import ProtocolSimulator

__all__ = ["HopStatistics", "RoutingSweepPoint", "measure_routing",
           "sweep_overlay_sizes", "measure_protocol_routing",
           "sweep_protocol_overlay_sizes"]


@dataclass(frozen=True)
class HopStatistics:
    """Summary of one batch of measured routes."""

    samples: int
    mean: float
    median: float
    p95: float
    maximum: int
    failures: int

    @classmethod
    def from_hops(cls, hops: Sequence[int], failures: int = 0) -> "HopStatistics":
        """Build the summary from a raw list of per-route hop counts."""
        if len(hops) == 0:
            return cls(samples=0, mean=0.0, median=0.0, p95=0.0, maximum=0,
                       failures=failures)
        array = np.asarray(hops, dtype=np.float64)
        return cls(
            samples=int(array.size),
            mean=float(array.mean()),
            median=float(np.median(array)),
            p95=float(np.percentile(array, 95)),
            maximum=int(array.max()),
            failures=failures,
        )


@dataclass(frozen=True)
class RoutingSweepPoint:
    """One checkpoint of a size sweep: overlay size plus its hop statistics."""

    size: int
    stats: HopStatistics

    @property
    def mean_hops(self) -> float:
        return self.stats.mean


def measure_routing(overlay: VoroNet, num_pairs: int, rng: RandomSource, *,
                    use_long_links: bool = True) -> HopStatistics:
    """Measure greedy-route lengths between random pairs of distinct objects.

    Uses the overlay's batched :meth:`~repro.core.overlay.VoroNet.route_many`
    API; per-pair results are identical to individual
    :func:`~repro.core.routing.route_to_object` calls.
    """
    ids = overlay.object_ids()
    pairs = generate_routing_pairs(ids, num_pairs, rng)
    results = overlay.route_many(pairs, use_long_links=use_long_links)
    hops: List[int] = [r.hops for r in results if r.success]
    failures = sum(1 for r in results if not r.success)
    return HopStatistics.from_hops(hops, failures=failures)


def sweep_overlay_sizes(positions: Sequence, checkpoints: Sequence[int],
                        rng: RandomSource, *,
                        num_pairs: int = 1000,
                        overlay_factory: Optional[Callable[[], VoroNet]] = None,
                        use_long_links: bool = True,
                        use_bulk_load: bool = False,
                        progress: Optional[Callable[[int], None]] = None
                        ) -> List[RoutingSweepPoint]:
    """Grow an overlay through ``checkpoints`` and measure routing at each.

    Parameters
    ----------
    positions:
        The full stream of object positions; ``max(checkpoints)`` of them are
        consumed.
    checkpoints:
        Increasing overlay sizes at which a routing batch is measured (the
        paper uses every 10 000 objects up to 300 000).
    rng:
        Random source for pair selection.
    num_pairs:
        Routes measured per checkpoint.
    overlay_factory:
        Callable building the (empty) overlay; defaults to a
        :class:`VoroNet` dimensioned for the largest checkpoint.
    use_long_links:
        Disable to measure the Delaunay-only baseline on the same object
        stream.
    use_bulk_load:
        Grow the overlay between checkpoints through
        :meth:`~repro.core.overlay.VoroNet.bulk_load` instead of sequential
        routed joins.  The measured routes are unaffected (same Voronoi and
        close structure, long links from the same distribution), but
        construction cost drops by an order of magnitude, which is what
        lets the Figure 5–8 sweeps reach paper scale (N ≥ 10⁴) on laptops.
    progress:
        Optional callback invoked with each completed checkpoint size.
    """
    checkpoints = sorted(set(int(c) for c in checkpoints))
    if not checkpoints:
        raise ValueError("need at least one checkpoint")
    largest = checkpoints[-1]
    if len(positions) < largest:
        raise ValueError(
            f"need {largest} positions for the largest checkpoint, got {len(positions)}"
        )
    if overlay_factory is None:
        overlay = VoroNet(n_max=max(largest, 2), seed=rng.integer(0, 2**31 - 1))
    else:
        overlay = overlay_factory()
    results: List[RoutingSweepPoint] = []
    inserted = 0
    for checkpoint in checkpoints:
        if use_bulk_load:
            overlay.bulk_load([positions[index]
                               for index in range(inserted, checkpoint)])
        else:
            for index in range(inserted, checkpoint):
                overlay.insert(positions[index])
        inserted = checkpoint
        stats = measure_routing(overlay, num_pairs, rng,
                                use_long_links=use_long_links)
        results.append(RoutingSweepPoint(size=checkpoint, stats=stats))
        if progress is not None:
            progress(checkpoint)
    return results


def measure_protocol_routing(simulator, num_pairs: int,
                             rng: RandomSource) -> HopStatistics:
    """Measure greedy route lengths between random pairs, message-level.

    Each pair ``(start, destination)`` routes one ``QUERY`` from ``start``
    to the destination's position; since the destination is a published
    object, the owner of its position is the destination itself, so a
    query answered by anyone else counts as a routing failure.
    """
    ids = simulator.object_ids()
    pairs = generate_routing_pairs(ids, num_pairs, rng)
    hops: List[int] = []
    failures = 0
    for start, destination in pairs:
        report = simulator.query(simulator.node(destination).position,
                                 start=start)
        if report.owner == destination:
            hops.append(report.routing_hops)
        else:
            failures += 1
    return HopStatistics.from_hops(hops, failures=failures)


def sweep_protocol_overlay_sizes(positions: Sequence, checkpoints: Sequence[int],
                                 rng: RandomSource, *,
                                 num_pairs: int = 1000,
                                 simulator_factory: Optional[Callable[[], "ProtocolSimulator"]] = None,
                                 progress: Optional[Callable[[int], None]] = None
                                 ) -> List[RoutingSweepPoint]:
    """Message-level mirror of :func:`sweep_overlay_sizes`.

    The overlay grows between checkpoints through
    :meth:`~repro.simulation.protocol.ProtocolSimulator.bulk_join` — the
    batched message pipeline whose per-node views are pinned identical to
    ``bulk_load`` — and each checkpoint measures
    :func:`measure_protocol_routing` batches, so every reported hop count
    comes from greedy forwarding over strictly local views.  This is what
    gives the Figure 6/7 oracle sweeps message-level ground truth at
    N = 10⁴ and beyond.
    """
    from repro.core.config import VoroNetConfig
    from repro.simulation.protocol import ProtocolSimulator

    checkpoints = sorted(set(int(c) for c in checkpoints))
    if not checkpoints:
        raise ValueError("need at least one checkpoint")
    largest = checkpoints[-1]
    if len(positions) < largest:
        raise ValueError(
            f"need {largest} positions for the largest checkpoint, got {len(positions)}"
        )
    if simulator_factory is None:
        # Dimension exactly like the oracle sweep's default overlay:
        # d_min and the long-link distribution derive from n_max, so a
        # different capacity would measure a structurally different
        # overlay, not the oracle's message-level mirror.
        seed = rng.integer(0, 2**31 - 1)
        simulator = ProtocolSimulator(
            VoroNetConfig(n_max=max(largest, 2), seed=seed), seed=seed)
    else:
        simulator = simulator_factory()
    results: List[RoutingSweepPoint] = []
    inserted = 0
    for checkpoint in checkpoints:
        simulator.bulk_join([positions[index]
                             for index in range(inserted, checkpoint)])
        inserted = checkpoint
        stats = measure_protocol_routing(simulator, num_pairs, rng)
        results.append(RoutingSweepPoint(size=checkpoint, stats=stats))
        if progress is not None:
            progress(checkpoint)
    return results

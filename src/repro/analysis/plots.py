"""ASCII rendering of histograms, series and tables.

The benchmark harness has no plotting dependency; results are printed as
text so the figures of the paper can be eyeballed straight from the bench
logs (`pytest benchmarks/ --benchmark-only -s`) and recorded verbatim in
``EXPERIMENTS.md``.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence

__all__ = ["ascii_histogram", "ascii_series", "format_table"]


def ascii_histogram(histogram: Mapping[int, int], *, width: int = 50,
                    label: str = "value") -> str:
    """Render a ``value → count`` histogram as horizontal ASCII bars."""
    if not histogram:
        return "(empty histogram)"
    items = sorted((int(k), int(v)) for k, v in histogram.items())
    peak = max(v for _, v in items) or 1
    lines = [f"{label:>8} | count"]
    for value, count in items:
        bar = "#" * max(1, int(round(width * count / peak))) if count else ""
        lines.append(f"{value:>8} | {count:>8} {bar}")
    return "\n".join(lines)


def ascii_series(xs: Sequence[float], ys: Sequence[float], *,
                 height: int = 12, width: int = 60,
                 x_label: str = "x", y_label: str = "y") -> str:
    """Render a scatter/line series as a crude ASCII plot."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    if not xs:
        return "(empty series)"
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = int(round((x - x_min) / x_span * (width - 1)))
        row = int(round((y - y_min) / y_span * (height - 1)))
        grid[height - 1 - row][col] = "*"
    lines = [f"{y_label} ({y_min:.3g} .. {y_max:.3g})"]
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f"  {x_label} ({x_min:.3g} .. {x_max:.3g})")
    return "\n".join(lines)


def format_table(headers: Sequence[str], rows: Iterable[Sequence], *,
                 float_format: str = "{:.2f}") -> str:
    """Format a small results table with aligned columns."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))
    lines = [fmt_row(headers), fmt_row(["-" * w for w in widths])]
    lines.extend(fmt_row(row) for row in rendered_rows)
    return "\n".join(lines)

"""The Figure 7 fit: ``log(H)`` against ``log(log(N))``.

If greedy routes cost ``H = c · log^x(N)`` hops, then
``log H = x · log(log N) + log c``: plotting ``log H`` against
``log(log N)`` gives a straight line whose slope is the exponent ``x``.
The paper observes a slope close to 2, confirming the ``O(log² N)``
analysis.  This module performs that least-squares fit and reports the
slope, intercept and goodness of fit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["LogLogFit", "fit_polylog_exponent"]


@dataclass(frozen=True)
class LogLogFit:
    """Result of the ``log(H) = slope · log(log(N)) + intercept`` fit.

    Attributes
    ----------
    slope:
        The fitted poly-log exponent ``x`` (the paper reports ≈ 2).
    intercept:
        Fitted intercept ``log c``.
    r_squared:
        Coefficient of determination of the fit.
    """

    slope: float
    intercept: float
    r_squared: float

    def predict_hops(self, size: int) -> float:
        """Predicted mean hop count for an overlay of ``size`` objects."""
        if size <= 2:
            raise ValueError("size must be > 2 for a log(log(N)) prediction")
        return math.exp(self.intercept + self.slope * math.log(math.log(size)))


def fit_polylog_exponent(sizes: Sequence[int],
                         mean_hops: Sequence[float]) -> LogLogFit:
    """Fit ``log(H)`` vs ``log(log(N))`` by ordinary least squares.

    Parameters
    ----------
    sizes:
        Overlay sizes ``N`` (each must exceed ``e`` so ``log(log N)`` is
        defined and positive).
    mean_hops:
        Mean hop counts ``H`` measured at those sizes (strictly positive).
    """
    if len(sizes) != len(mean_hops):
        raise ValueError("sizes and mean_hops must have the same length")
    if len(sizes) < 2:
        raise ValueError("need at least two points to fit a slope")
    sizes_array = np.asarray(sizes, dtype=np.float64)
    hops_array = np.asarray(mean_hops, dtype=np.float64)
    if np.any(sizes_array <= math.e):
        raise ValueError("every size must exceed e for log(log(N)) to be positive")
    if np.any(hops_array <= 0):
        raise ValueError("mean hop counts must be strictly positive")
    x = np.log(np.log(sizes_array))
    y = np.log(hops_array)
    slope, intercept = np.polyfit(x, y, deg=1)
    predicted = slope * x + intercept
    residual = float(np.sum((y - predicted) ** 2))
    total = float(np.sum((y - y.mean()) ** 2))
    r_squared = 1.0 - residual / total if total > 0 else 1.0
    return LogLogFit(slope=float(slope), intercept=float(intercept),
                     r_squared=r_squared)

"""Summary-statistics helpers shared by benchmarks and examples."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

__all__ = ["Summary", "summarize", "relative_change"]


@dataclass(frozen=True)
class Summary:
    """Basic summary statistics of a numeric sample."""

    count: int
    mean: float
    std: float
    minimum: float
    p25: float
    median: float
    p75: float
    p95: float
    maximum: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "p25": self.p25,
            "median": self.median,
            "p75": self.p75,
            "p95": self.p95,
            "max": self.maximum,
        }


def summarize(values: Sequence[float]) -> Summary:
    """Summarise a numeric sample (empty samples give an all-zero summary)."""
    array = np.asarray(list(values), dtype=np.float64)
    if array.size == 0:
        return Summary(count=0, mean=0.0, std=0.0, minimum=0.0, p25=0.0,
                       median=0.0, p75=0.0, p95=0.0, maximum=0.0)
    return Summary(
        count=int(array.size),
        mean=float(array.mean()),
        std=float(array.std()),
        minimum=float(array.min()),
        p25=float(np.percentile(array, 25)),
        median=float(np.median(array)),
        p75=float(np.percentile(array, 75)),
        p95=float(np.percentile(array, 95)),
        maximum=float(array.max()),
    )


def relative_change(baseline: float, value: float) -> float:
    """Relative change ``(value - baseline) / baseline`` (0 when baseline is 0)."""
    if baseline == 0:
        return 0.0
    return (value - baseline) / baseline

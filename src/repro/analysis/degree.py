"""Voronoi out-degree analysis (the Figure 5 metric).

Figure 5 of the paper plots, for a 300 000-object overlay, the histogram of
the number of Voronoi neighbours ``|vn(o)|`` per object and observes it is
"centred around 6 regardless of the distribution" — the planarity argument
of Section 4.1.  This module computes the histogram and its summary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping

import numpy as np

__all__ = ["DegreeSummary", "degree_summary", "merge_histograms"]


@dataclass(frozen=True)
class DegreeSummary:
    """Summary of an out-degree histogram.

    Attributes
    ----------
    histogram:
        Mapping ``degree → number of objects``.
    mean / std / mode / min_degree / max_degree:
        The usual summary statistics of the degree distribution.
    count:
        Total number of objects summarised.
    """

    histogram: Dict[int, int]
    mean: float
    std: float
    mode: int
    min_degree: int
    max_degree: int
    count: int

    def fraction_at(self, degree: int) -> float:
        """Fraction of objects with exactly this degree."""
        if self.count == 0:
            return 0.0
        return self.histogram.get(degree, 0) / self.count

    def fraction_between(self, low: int, high: int) -> float:
        """Fraction of objects with degree in ``[low, high]`` inclusive."""
        if self.count == 0:
            return 0.0
        total = sum(count for degree, count in self.histogram.items()
                    if low <= degree <= high)
        return total / self.count


def degree_summary(histogram: Mapping[int, int]) -> DegreeSummary:
    """Summarise a ``degree → count`` histogram.

    The input is typically :meth:`repro.core.overlay.VoroNet.degree_histogram`
    or :meth:`repro.geometry.delaunay.DelaunayTriangulation.degree_histogram`.
    """
    cleaned = {int(k): int(v) for k, v in histogram.items() if v > 0}
    if not cleaned:
        return DegreeSummary(histogram={}, mean=0.0, std=0.0, mode=0,
                             min_degree=0, max_degree=0, count=0)
    degrees = np.array(sorted(cleaned))
    counts = np.array([cleaned[d] for d in degrees], dtype=np.float64)
    total = counts.sum()
    mean = float((degrees * counts).sum() / total)
    variance = float(((degrees - mean) ** 2 * counts).sum() / total)
    mode = int(degrees[int(np.argmax(counts))])
    return DegreeSummary(
        histogram=dict(cleaned),
        mean=mean,
        std=float(np.sqrt(variance)),
        mode=mode,
        min_degree=int(degrees.min()),
        max_degree=int(degrees.max()),
        count=int(total),
    )


def merge_histograms(histograms: Iterable[Mapping[int, int]]) -> Dict[int, int]:
    """Sum several degree histograms (e.g. across replicated runs)."""
    merged: Dict[int, int] = {}
    for histogram in histograms:
        for degree, count in histogram.items():
            merged[int(degree)] = merged.get(int(degree), 0) + int(count)
    return merged

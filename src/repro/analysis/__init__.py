"""Analysis utilities turning raw overlay measurements into the paper's metrics.

* :mod:`repro.analysis.degree` — Voronoi out-degree histograms (Figure 5),
* :mod:`repro.analysis.hops` — routing-cost measurement and size sweeps
  (Figures 6 and 8),
* :mod:`repro.analysis.regression` — the ``log(H)`` vs ``log(log(N))``
  straight-line fit whose slope confirms the ``O(log² N)`` bound (Figure 7),
* :mod:`repro.analysis.plots` — ASCII rendering of histograms and series for
  benchmark logs,
* :mod:`repro.analysis.statistics` — summary-statistics helpers.
"""

from repro.analysis.degree import DegreeSummary, degree_summary, merge_histograms
from repro.analysis.hops import (
    HopStatistics,
    RoutingSweepPoint,
    measure_routing,
    sweep_overlay_sizes,
)
from repro.analysis.regression import LogLogFit, fit_polylog_exponent
from repro.analysis.plots import ascii_histogram, ascii_series, format_table
from repro.analysis.statistics import Summary, summarize

__all__ = [
    "DegreeSummary",
    "degree_summary",
    "merge_histograms",
    "HopStatistics",
    "RoutingSweepPoint",
    "measure_routing",
    "sweep_overlay_sizes",
    "LogLogFit",
    "fit_polylog_exponent",
    "ascii_histogram",
    "ascii_series",
    "format_table",
    "Summary",
    "summarize",
]

"""Heavy-traffic serving layer: drivers, observability, shoot-out harness.

The paper's claim is polylogarithmic greedy routing over massive object
populations; this package tests the claim under production-shaped load
instead of isolated random pairs.  It is organised as three planes:

* **traffic** (:mod:`repro.serving.traffic`) — open-loop (fixed Poisson
  arrival rate) and closed-loop (fixed concurrency) drivers that replay
  seeded query schedules through batched oracle routing
  (``route_many(missing="miss")``) or genuinely contending in-flight
  ``QUERY`` messages on the protocol plane, optionally interleaved with
  moving-object churn;
* **observability** (:mod:`repro.serving.estimators`,
  :mod:`repro.serving.observability`) — streaming p50/p90/p99 estimation
  (exact below a buffer threshold, P² above), per-node load counters
  with Gini/max-mean imbalance, and windowed throughput snapshots
  exported through the metrics registry;
* **shoot-out** (:mod:`repro.serving.adapters`,
  :mod:`repro.serving.harness`) — one schedule replayed against VoroNet
  and the Kleinberg/Chord baselines through a uniform adapter interface,
  plus the oracle-vs-protocol twin-parity check.

``benchmarks/bench_serving.py`` runs the shoot-out at canonical scale
and commits ``BENCH_serving.json``; the workload samplers themselves
(Zipf, hotspot, flash crowd, moving objects) live in
:mod:`repro.workloads.samplers`.
"""

from repro.serving.adapters import (ChordServing, KleinbergServing,
                                    ServeOutcome, ServingAdapter,
                                    VoroNetServing)
from repro.serving.estimators import StreamingPercentiles
from repro.serving.harness import (build_adapters, make_flash_sampler,
                                   make_sampler, run_protocol_serving,
                                   run_shootout, twin_parity)
from repro.serving.observability import (AvailabilityTracker, LoadTracker,
                                         WindowTracker)
from repro.serving.traffic import (Schedule, build_schedule,
                                   serve_closed_loop, serve_open_loop,
                                   serve_protocol_closed_loop)

__all__ = [
    "AvailabilityTracker",
    "ChordServing",
    "KleinbergServing",
    "LoadTracker",
    "Schedule",
    "ServeOutcome",
    "ServingAdapter",
    "StreamingPercentiles",
    "VoroNetServing",
    "WindowTracker",
    "build_adapters",
    "build_schedule",
    "make_flash_sampler",
    "make_sampler",
    "run_protocol_serving",
    "run_shootout",
    "serve_closed_loop",
    "serve_open_loop",
    "serve_protocol_closed_loop",
    "twin_parity",
]

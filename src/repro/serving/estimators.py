"""Streaming percentile estimation for the serving observability layer.

A sustained-traffic run answers 10⁵⁺ queries; keeping every hop count and
latency sample alive just to report p50/p90/p99 at the end costs memory
proportional to the run and a full sort at read time.
:class:`StreamingPercentiles` keeps the small-run behaviour *exact* and
bounds the large-run cost:

* below ``buffer_size`` observations it holds the raw samples and answers
  with ``numpy.percentile`` (linear interpolation) — byte-for-byte what an
  offline analysis of the same samples would report (the test suite pins
  this equivalence);
* at ``buffer_size`` it promotes each tracked quantile to a P² marker
  set [Jain & Chlamtac, CACM'85] seeded from the *full* buffer (not the
  algorithm's usual first-five-observations bootstrap), then processes
  every further observation in O(1) time and O(1) memory per quantile.

P² tracks each quantile with five markers (minimum, two intermediate
cells, the quantile itself, maximum) whose heights are nudged by a
piecewise-parabolic interpolation as counts drift from their desired
positions; accuracy degrades gracefully rather than abruptly, and the
estimator remains deterministic — same observation stream, same estimate.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["StreamingPercentiles"]


class _P2Marker:
    """One P² five-marker estimate of a single quantile."""

    __slots__ = ("p", "heights", "positions", "count")

    #: Marker fractions: min, halfway-to-p, p, halfway-to-max, max.
    @staticmethod
    def _fractions(p: float) -> Tuple[float, ...]:
        return (0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0)

    @classmethod
    def from_sorted(cls, data: np.ndarray, p: float) -> "_P2Marker":
        """Seed the markers from a full sorted buffer (≥ 5 samples)."""
        n = len(data)
        marker = cls.__new__(cls)
        marker.p = p
        positions = [1 + round(f * (n - 1)) for f in cls._fractions(p)]
        # The rounded ideal positions can collide near the ends for
        # extreme quantiles; force strict monotonicity without leaving
        # the [1, n] range.
        for i in range(1, 5):
            positions[i] = max(positions[i], positions[i - 1] + 1)
        positions[4] = n
        for i in range(3, -1, -1):
            positions[i] = min(positions[i], positions[i + 1] - 1)
        marker.positions = positions
        marker.heights = [float(data[q - 1]) for q in positions]
        marker.count = n
        return marker

    def update(self, value: float) -> None:
        heights = self.heights
        positions = self.positions
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while cell < 3 and value >= heights[cell + 1]:
                cell += 1
        for i in range(cell + 1, 5):
            positions[i] += 1
        self.count += 1
        fractions = self._fractions(self.p)
        for i in (1, 2, 3):
            desired = 1.0 + (self.count - 1) * fractions[i]
            delta = desired - positions[i]
            if ((delta >= 1.0 and positions[i + 1] - positions[i] > 1)
                    or (delta <= -1.0 and positions[i - 1] - positions[i] < -1)):
                step = 1 if delta > 0 else -1
                candidate = self._parabolic(i, step)
                if not heights[i - 1] < candidate < heights[i + 1]:
                    candidate = self._linear(i, step)
                heights[i] = candidate
                positions[i] += step

    def _parabolic(self, i: int, step: int) -> float:
        h, n = self.heights, self.positions
        return h[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (h[i] - h[i - 1]) / (n[i] - n[i - 1]))

    def _linear(self, i: int, step: int) -> float:
        h, n = self.heights, self.positions
        return h[i] + step * (h[i + step] - h[i]) / (n[i + step] - n[i])

    def estimate(self) -> float:
        return self.heights[2]


class StreamingPercentiles:
    """Bounded-memory quantile tracking: exact small, P² large.

    Parameters
    ----------
    quantiles:
        The tracked quantiles, each in ``(0, 1)``.  Below the buffer
        threshold *any* quantile can be queried exactly; above it only
        the tracked ones are answerable.
    buffer_size:
        Number of raw samples kept before promotion to P² markers.
    """

    __slots__ = ("quantiles", "buffer_size", "_buffer", "_markers", "_count")

    def __init__(self, quantiles: Sequence[float] = (0.5, 0.9, 0.99),
                 buffer_size: int = 512) -> None:
        if buffer_size < 8:
            raise ValueError(f"buffer_size must be >= 8, got {buffer_size}")
        quantiles = tuple(float(q) for q in quantiles)
        if not quantiles:
            raise ValueError("need at least one tracked quantile")
        for q in quantiles:
            if not 0.0 < q < 1.0:
                raise ValueError(f"quantiles must lie in (0, 1), got {q}")
        self.quantiles = quantiles
        self.buffer_size = int(buffer_size)
        self._buffer: List[float] = []
        self._markers: Optional[Dict[float, _P2Marker]] = None
        self._count = 0

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of observations seen."""
        return self._count

    @property
    def exact(self) -> bool:
        """Whether quantile answers are still exact (buffer not promoted)."""
        return self._markers is None

    def observe(self, value: float) -> None:
        """Feed one observation."""
        value = float(value)
        self._count += 1
        if self._markers is None:
            self._buffer.append(value)
            if len(self._buffer) >= self.buffer_size:
                self._promote()
        else:
            for marker in self._markers.values():
                marker.update(value)

    def observe_many(self, values: Iterable[float]) -> None:
        """Feed a batch of observations (order preserved)."""
        for value in np.asarray(list(values), dtype=np.float64).ravel():
            self.observe(value)

    def _promote(self) -> None:
        data = np.sort(np.asarray(self._buffer, dtype=np.float64))
        self._markers = {q: _P2Marker.from_sorted(data, q)
                         for q in self.quantiles}
        self._buffer = []

    # ------------------------------------------------------------------
    def quantile(self, q: float) -> float:
        """Estimate quantile ``q``; exact while the buffer holds.

        After promotion only the tracked quantiles are available —
        asking for an untracked one raises ``KeyError`` rather than
        returning a silently wrong neighbour.
        """
        if self._count == 0:
            raise ValueError("no observations yet")
        if self._markers is None:
            return float(np.percentile(np.asarray(self._buffer), 100.0 * q))
        marker = self._markers.get(float(q))
        if marker is None:
            raise KeyError(
                f"quantile {q} is not tracked (tracked: {self.quantiles})")
        return marker.estimate()

    def summary(self) -> Dict[str, float]:
        """All tracked quantiles keyed ``p50``-style, plus the count."""
        result: Dict[str, float] = {"count": float(self._count)}
        if self._count == 0:
            return result
        for q in self.quantiles:
            result[f"p{100 * q:g}"] = self.quantile(q)
        return result

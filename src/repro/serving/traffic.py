"""Traffic drivers: sustained query streams against a serving adapter.

Two loop disciplines, the standard pair from serving-system measurement:

* **Open loop** (:func:`serve_open_loop`) — queries arrive on a seeded
  Poisson process at a fixed offered rate, regardless of how the system
  keeps up.  Hop-latency per query is independent of the others (the
  overlay forwards concurrently), so the driver routes in batches for
  throughput and reconstructs per-query completion times analytically.
* **Closed loop** (:func:`serve_closed_loop`) — a fixed number of
  workers each keep exactly one query outstanding; a worker issues its
  next query the moment the previous answer returns.  Throughput is then
  *emergent* from route lengths: longer routes, fewer queries per unit
  of virtual time.

Both drivers serve index pairs from a :class:`Schedule` through an
adapter's batched entry point (``route_many(missing="miss")`` for
VoroNet — a departed endpoint is a defined miss, not a crash), can
interleave moving-object churn with the traffic, and feed the
observability layer (streaming hop/latency percentiles, per-node load
counters, windowed throughput snapshots).

:func:`serve_protocol_closed_loop` is the message-level twin of the
closed loop: genuinely contending ``QUERY`` messages in one engine,
``concurrency`` of them in flight at every moment, completions stamped
with virtual time.  On a fault-free overlay its hop counts are identical
to the oracle driver's on the same schedule (the twin-parity suite pins
this).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.serving.adapters import ServingAdapter, VoroNetServing
from repro.serving.estimators import StreamingPercentiles
from repro.serving.observability import LoadTracker, WindowTracker
from repro.simulation.metrics import MetricsRegistry
from repro.simulation.protocol import ProtocolSimulator
from repro.utils.rng import RandomSource
from repro.workloads.samplers import MovingObjects, TargetSampler

__all__ = ["Schedule", "build_schedule", "serve_open_loop",
           "serve_closed_loop", "serve_protocol_closed_loop"]

#: Quantiles every serving report tracks.
SERVING_QUANTILES = (0.5, 0.9, 0.99)


class Schedule:
    """A replayable query schedule: parallel source/target index arrays."""

    __slots__ = ("sources", "targets")

    def __init__(self, sources: np.ndarray, targets: np.ndarray) -> None:
        if len(sources) != len(targets):
            raise ValueError("sources and targets must have equal length")
        self.sources = np.asarray(sources, dtype=np.int64)
        self.targets = np.asarray(targets, dtype=np.int64)

    def __len__(self) -> int:
        return len(self.sources)

    def pairs(self) -> List[Tuple[int, int]]:
        """The schedule as a list of (source, target) index pairs."""
        return list(zip(self.sources.tolist(), self.targets.tolist()))


def build_schedule(sampler: TargetSampler, count: int, *,
                   seed: Optional[int] = None) -> Schedule:
    """Sample a schedule: uniform entry points, sampler-chosen targets.

    Sources model *where* queries enter the overlay (any peer, uniformly);
    the sampler models *what* they ask for.  The same schedule object is
    replayed against every system in a shoot-out, so skew comparisons are
    apples-to-apples down to the individual query.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    rng = RandomSource(seed)
    sources = rng.generator.integers(0, sampler.population, size=count,
                                     dtype=np.int64)
    return Schedule(sources, sampler.sample(count))


# ----------------------------------------------------------------------
# shared aggregation machinery
# ----------------------------------------------------------------------
class _Aggregator:
    """Streaming collection shared by the drivers."""

    __slots__ = ("hops", "latency", "load", "windows", "completions",
                 "misses", "hop_sum", "hop_max", "served")

    def __init__(self, node_count: int, window: Optional[float],
                 metrics: Optional[MetricsRegistry], prefix: str,
                 quantile_buffer: int) -> None:
        self.hops = StreamingPercentiles(SERVING_QUANTILES,
                                         buffer_size=quantile_buffer)
        self.latency = StreamingPercentiles(SERVING_QUANTILES,
                                            buffer_size=quantile_buffer)
        self.load = LoadTracker(population=node_count)
        self.windows = (WindowTracker(window, metrics=metrics, prefix=prefix)
                        if window is not None else None)
        self.completions: List[Tuple[float, int, float]] = []
        self.misses = 0
        self.hop_sum = 0
        self.hop_max = 0
        self.served = 0

    def add(self, hops: int, success: bool, path, completion_time: float,
            latency: float) -> None:
        if not success:
            self.misses += 1
            return
        self.served += 1
        self.hop_sum += hops
        if hops > self.hop_max:
            self.hop_max = hops
        self.hops.observe(hops)
        self.latency.observe(latency)
        if path is not None:
            self.load.record_path(path)
        if self.windows is not None:
            self.completions.append((completion_time, hops, latency))

    def report(self, system: str, workload: str, mode: str,
               duration: float) -> Dict:
        hop_summary = self.hops.summary() if self.served else {"count": 0.0}
        hop_summary["mean"] = (self.hop_sum / self.served
                               if self.served else 0.0)
        hop_summary["max"] = float(self.hop_max)
        windows: List[Dict[str, float]] = []
        if self.windows is not None:
            for time, hops, latency in sorted(self.completions):
                self.windows.observe(time, hops, latency)
            windows = self.windows.finish()
        total = self.served + self.misses
        return {
            "system": system,
            "workload": workload,
            "mode": mode,
            "queries": total,
            "served": self.served,
            "misses": self.misses,
            "success_rate": self.served / total if total else 0.0,
            "virtual_duration": duration,
            "throughput_qps": self.served / duration if duration > 0 else 0.0,
            "hops": hop_summary,
            "latency": (self.latency.summary() if self.served
                        else {"count": 0.0}),
            "load": self.load.summary(),
            "windows": windows,
        }


def _batches(schedule: Schedule,
             batch_size: int) -> List[Tuple[int, List[Tuple[int, int]]]]:
    pairs = schedule.pairs()
    return [(start, pairs[start:start + batch_size])
            for start in range(0, len(pairs), batch_size)]


def _apply_churn(adapter: ServingAdapter, churn: Optional[MovingObjects],
                 moves: int) -> None:
    """Replay ``moves`` position updates between two traffic batches."""
    if churn is None or moves <= 0:
        return
    if not isinstance(adapter, VoroNetServing):
        raise TypeError(
            "moving-object churn requires the VoroNet adapter, got "
            f"{type(adapter).__name__}")
    overlay = adapter.overlay
    for _ in range(moves):
        old_id, new_id = churn.apply(overlay)
        if old_id != new_id:
            # Turnover churn: the published replacement gets a fresh id.
            # The index map keeps the departed id on purpose — queries
            # already scheduled against it must surface as defined misses.
            continue


# ----------------------------------------------------------------------
# oracle-mode drivers
# ----------------------------------------------------------------------
def serve_open_loop(adapter: ServingAdapter, schedule: Schedule,
                    workload: str, *,
                    arrival_rate: float,
                    hop_latency: float = 1.0,
                    seed: Optional[int] = 0,
                    batch_size: int = 2048,
                    window: Optional[float] = None,
                    metrics: Optional[MetricsRegistry] = None,
                    churn: Optional[MovingObjects] = None,
                    churn_every: int = 0,
                    quantile_buffer: int = 4096) -> Dict:
    """Open-loop traffic: Poisson arrivals at a fixed offered rate.

    Each query's virtual completion is ``arrival + hops · hop_latency``
    (hops forward concurrently across queries; nothing queues in oracle
    mode).  The report's ``virtual_duration`` is the makespan from first
    arrival to last completion, so ``throughput_qps`` approaches the
    offered rate whenever the overlay keeps hop counts bounded.
    """
    if arrival_rate <= 0:
        raise ValueError(f"arrival_rate must be positive, got {arrival_rate}")
    if hop_latency <= 0:
        raise ValueError(f"hop_latency must be positive, got {hop_latency}")
    count = len(schedule)
    rng = RandomSource(seed)
    arrivals = np.cumsum(rng.generator.exponential(1.0 / arrival_rate,
                                                   size=count))
    aggregate = _Aggregator(adapter.node_count(), window, metrics,
                            f"serving.{adapter.name}.{workload}",
                            quantile_buffer)
    makespan_end = arrivals[0] if count else 0.0
    since_churn = 0
    for start, batch in _batches(schedule, batch_size):
        outcomes = adapter.route_batch(batch)
        for offset, outcome in enumerate(outcomes):
            arrival = float(arrivals[start + offset])
            latency = outcome.hops * hop_latency
            completion = arrival + latency
            if completion > makespan_end:
                makespan_end = completion
            aggregate.add(outcome.hops, outcome.success, outcome.path,
                          arrival, latency)
        if churn is not None and churn_every > 0:
            since_churn += len(batch)
            moves, since_churn = divmod(since_churn, churn_every)
            _apply_churn(adapter, churn, moves)
    duration = float(makespan_end - arrivals[0]) if count else 0.0
    return aggregate.report(adapter.name, workload, "open", duration)


def serve_closed_loop(adapter: ServingAdapter, schedule: Schedule,
                      workload: str, *,
                      concurrency: int,
                      hop_latency: float = 1.0,
                      batch_size: int = 2048,
                      window: Optional[float] = None,
                      metrics: Optional[MetricsRegistry] = None,
                      churn: Optional[MovingObjects] = None,
                      churn_every: int = 0,
                      quantile_buffer: int = 4096) -> Dict:
    """Closed-loop traffic: ``concurrency`` workers, one query in flight each.

    The next free worker (smallest virtual clock) takes the next schedule
    entry; its query completes ``hops · hop_latency`` later.  Throughput
    is emergent: the report's ``virtual_duration`` is the time the last
    worker finishes, so systems with longer routes serve measurably fewer
    queries per unit of virtual time — the number the shoot-out compares.
    """
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    if hop_latency <= 0:
        raise ValueError(f"hop_latency must be positive, got {hop_latency}")
    aggregate = _Aggregator(adapter.node_count(), window, metrics,
                            f"serving.{adapter.name}.{workload}",
                            quantile_buffer)
    # (virtual clock, worker id): heap order is deterministic because the
    # worker id breaks clock ties.
    workers = [(0.0, w) for w in range(concurrency)]
    heapq.heapify(workers)
    makespan = 0.0
    since_churn = 0
    for _start, batch in _batches(schedule, batch_size):
        outcomes = adapter.route_batch(batch)
        for outcome in outcomes:
            clock, worker = heapq.heappop(workers)
            latency = outcome.hops * hop_latency
            completion = clock + latency
            heapq.heappush(workers, (completion, worker))
            if completion > makespan:
                makespan = completion
            aggregate.add(outcome.hops, outcome.success, outcome.path,
                          completion, latency)
        if churn is not None and churn_every > 0:
            since_churn += len(batch)
            moves, since_churn = divmod(since_churn, churn_every)
            _apply_churn(adapter, churn, moves)
    return aggregate.report(adapter.name, workload, "closed", makespan)


# ----------------------------------------------------------------------
# protocol-mode driver
# ----------------------------------------------------------------------
def serve_protocol_closed_loop(simulator: ProtocolSimulator,
                               id_map: Sequence[int],
                               schedule: Schedule,
                               workload: str = "uniform", *,
                               concurrency: int = 4,
                               window: Optional[float] = None,
                               metrics: Optional[MetricsRegistry] = None,
                               record_paths: bool = False,
                               quantile_buffer: int = 4096) -> Dict:
    """Closed-loop serving over genuinely contending ``QUERY`` messages.

    ``concurrency`` queries are injected up front; every answer that
    lands triggers injection of the next schedule entry *from inside the
    running engine* (via :attr:`ProtocolSimulator.on_query_answer`), so
    the message plane always carries that many queries at once.  Latency
    is real virtual transit time — issue to answer delivery, including
    the answer message — and hop counts are identical to the oracle
    driver's on the same schedule (twin parity).
    """
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    count = len(schedule)
    total_nodes = len(simulator.nodes)
    aggregate = _Aggregator(total_nodes, window, metrics,
                            f"serving.protocol.{workload}", quantile_buffer)
    # Targets resolve to positions up front (the protocol queries points).
    targets = [simulator.nodes[id_map[t]].position
               for t in schedule.targets.tolist()]
    sources = [id_map[s] for s in schedule.sources.tolist()]
    issued_at: Dict[int, float] = {}
    start_time = simulator.engine.now
    state = {"next": 0}

    def issue_next() -> None:
        index = state["next"]
        if index >= count:
            return
        state["next"] = index + 1
        issued_at[index] = simulator.engine.now
        simulator.start_query(targets[index], start=sources[index],
                              query_id=index, record_path=record_paths)

    def on_answer(payload: Dict) -> None:
        query_id = payload["query_id"]
        latency = payload["completed_at"] - issued_at.pop(query_id)
        aggregate.add(payload["hops"], True, payload.get("path"),
                      payload["completed_at"], latency)
        issue_next()

    previous_hook = simulator.on_query_answer
    simulator.on_query_answer = on_answer
    try:
        for _ in range(min(concurrency, count)):
            issue_next()
        simulator.engine.run()
    finally:
        simulator.on_query_answer = previous_hook
    duration = simulator.engine.now - start_time
    report = aggregate.report("voronet-protocol", workload, "closed-protocol",
                              duration)
    report["concurrency"] = concurrency
    return report

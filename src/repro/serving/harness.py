"""The serving shoot-out: VoroNet vs. Kleinberg vs. Chord under skew.

One harness builds every system over the *same* object population, samples
each workload's query schedule *once*, and replays it against all three
adapters with the closed-loop driver, so the headline comparison —
sustained throughput, p50/p99 hop tails and per-node load imbalance under
uniform vs. Zipf demand — differs only in the system under test.

Two verification companions ride along:

* :func:`twin_parity` — the oracle and message-level planes serve the
  same schedule over byte-identical overlays; every query's hop count
  must match exactly (the acceptance gate of the serving subsystem).
* :func:`run_protocol_serving` — a closed-loop run over genuinely
  contending in-flight ``QUERY`` messages, reporting virtual-time
  latency percentiles the oracle plane cannot see.

``benchmarks/bench_serving.py`` drives :func:`run_shootout` at canonical
scale (10⁴ objects, 10⁵ queries per system per workload) and commits the
result as ``BENCH_serving.json``.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.serving.adapters import (ChordServing, KleinbergServing,
                                    ServingAdapter, VoroNetServing)
from repro.serving.traffic import (Schedule, build_schedule,
                                   serve_closed_loop,
                                   serve_protocol_closed_loop)
from repro.simulation.metrics import MetricsRegistry
from repro.simulation.protocol import ProtocolSimulator
from repro.utils.rng import RandomSource
from repro.workloads.distributions import UniformDistribution
from repro.workloads.generators import generate_objects
from repro.workloads.samplers import (FlashCrowdTargets, HotspotTargets,
                                      TargetSampler, UniformTargets,
                                      ZipfTargets)

__all__ = ["build_adapters", "make_sampler", "run_shootout",
           "run_protocol_serving", "twin_parity"]

#: The systems the shoot-out compares, in record order.
DEFAULT_SYSTEMS = ("voronet", "kleinberg", "chord")


def _positions(population: int, seed: Optional[int]):
    return generate_objects(UniformDistribution(), population,
                            RandomSource(seed))


def build_adapters(population: int, *, seed: Optional[int] = 0,
                   systems: Sequence[str] = DEFAULT_SYSTEMS,
                   track_paths: bool = True,
                   num_long_links: int = 1,
                   ) -> Tuple[list, Dict[str, ServingAdapter]]:
    """Build every requested system over one shared object population.

    The population size must be a perfect square when ``kleinberg`` is
    requested (its construction needs the full lattice).  Returns the
    positions (VoroNet's attribute coordinates, also used to build
    spatial samplers) and the adapters keyed by system name.
    """
    positions = _positions(population, seed)
    adapters: Dict[str, ServingAdapter] = {}
    for system in systems:
        if system == "voronet":
            adapters[system] = VoroNetServing(
                positions, seed=seed, num_long_links=num_long_links,
                track_paths=track_paths)
        elif system == "kleinberg":
            adapters[system] = KleinbergServing(
                population, seed=seed, long_links_per_node=num_long_links,
                track_paths=track_paths)
        elif system == "chord":
            adapters[system] = ChordServing(population,
                                            track_paths=track_paths)
        else:
            raise ValueError(f"unknown system {system!r}")
    return positions, adapters


def make_sampler(workload: str, population: int, positions, *,
                 seed: Optional[int] = 0,
                 zipf_alpha: float = 0.9,
                 hotspot_fraction: float = 0.9,
                 hotspot_radius: float = 0.1,
                 flash_at: float = 0.5) -> TargetSampler:
    """Instantiate a named workload's target sampler.

    ``uniform`` and ``zipf`` are the shoot-out's benchmark pair;
    ``hotspot`` (a hot spatial disk) and ``flash`` (uniform traffic that
    stampedes onto the hotspot mid-run at fraction ``flash_at`` of the
    stream, then disperses) exercise the spatial and time-varying skew
    paths.
    """
    if workload == "uniform":
        return UniformTargets(population, seed=seed)
    if workload == "zipf":
        return ZipfTargets(population, alpha=zipf_alpha, seed=seed)
    if workload == "hotspot":
        return HotspotTargets(positions, hot_fraction=hotspot_fraction,
                              radius=hotspot_radius, seed=seed)
    if workload == "flash":
        # Thirds: calm, crowd, dispersal — the boundaries land on the
        # stream offsets the caller's query count implies.
        raise ValueError(
            "flash needs a stream length; use make_flash_sampler")
    raise ValueError(f"unknown workload {workload!r}")


def make_flash_sampler(population: int, positions, queries: int, *,
                       seed: Optional[int] = 0,
                       hotspot_fraction: float = 0.95,
                       hotspot_radius: float = 0.1) -> FlashCrowdTargets:
    """Uniform → hotspot stampede → uniform again, in thirds of the stream."""
    third = max(1, queries // 3)
    return FlashCrowdTargets([
        (0, UniformTargets(population, seed=seed)),
        (third, HotspotTargets(positions, hot_fraction=hotspot_fraction,
                               radius=hotspot_radius, seed=None if seed is None
                               else seed + 1)),
        (2 * third, UniformTargets(population, seed=None if seed is None
                                   else seed + 2)),
    ])


def run_shootout(population: int, queries: int, *,
                 seed: Optional[int] = 0,
                 workloads: Sequence[str] = ("uniform", "zipf"),
                 systems: Sequence[str] = DEFAULT_SYSTEMS,
                 zipf_alpha: float = 0.9,
                 concurrency: int = 8,
                 hop_latency: float = 1.0,
                 num_long_links: int = 1,
                 track_paths: bool = True,
                 window: Optional[float] = None,
                 keep_windows: int = 0,
                 quantile_buffer: int = 4096,
                 metrics: Optional[MetricsRegistry] = None,
                 clock: Optional[Callable[[], float]] = None) -> Dict:
    """Serve every workload's schedule through every system; one record.

    ``clock`` (e.g. ``time.perf_counter``) adds wall-clock ``wall_seconds``
    / ``wall_qps`` to each per-system report — the sustained-throughput
    numbers the benchmark gates on.  Leave it ``None`` for fully
    deterministic output (tests).  ``keep_windows`` caps how many windowed
    snapshot rows each report retains in the record (0 keeps all).
    """
    positions, adapters = build_adapters(
        population, seed=seed, systems=systems,
        track_paths=track_paths, num_long_links=num_long_links)
    record: Dict = {
        "population": population,
        "queries_per_workload": queries,
        "seed": seed,
        "zipf_alpha": zipf_alpha,
        "concurrency": concurrency,
        "num_long_links": num_long_links,
        "workloads": list(workloads),
        "systems": {name: {} for name in adapters},
    }
    for workload_index, workload in enumerate(workloads):
        sampler_seed = None if seed is None else seed + 101 * (workload_index + 1)
        sampler = make_sampler(workload, population, positions,
                               seed=sampler_seed, zipf_alpha=zipf_alpha)
        schedule = build_schedule(sampler, queries,
                                  seed=None if sampler_seed is None
                                  else sampler_seed + 1)
        for name, adapter in adapters.items():
            started = clock() if clock is not None else None
            report = serve_closed_loop(
                adapter, schedule, workload, concurrency=concurrency,
                hop_latency=hop_latency, window=window, metrics=metrics,
                quantile_buffer=quantile_buffer)
            if started is not None:
                wall = max(clock() - started, 1e-9)
                report["wall_seconds"] = wall
                report["wall_qps"] = report["served"] / wall
            if keep_windows and len(report["windows"]) > keep_windows:
                report["windows"] = report["windows"][:keep_windows]
            record["systems"][name][workload] = report
    return record


def run_protocol_serving(population: int, queries: int, *,
                         seed: Optional[int] = 0,
                         concurrency: int = 8,
                         workload: str = "uniform",
                         zipf_alpha: float = 0.9,
                         window: Optional[float] = None,
                         metrics: Optional[MetricsRegistry] = None,
                         record_paths: bool = False) -> Dict:
    """Closed-loop serving over the message plane: contending QUERYs.

    Builds a protocol overlay by ``bulk_join`` and keeps ``concurrency``
    queries in flight until the schedule drains.  The report's latency
    figures are virtual transit times (issue → answer delivery), the
    observable the oracle plane has no notion of.
    """
    positions = _positions(population, seed)
    # Byte-identical twin of the oracle adapter built from the same
    # positions/seed — the config seed drives both planes' link draws.
    reference = VoroNetServing(positions, seed=seed, track_paths=False)
    simulator = ProtocolSimulator(reference.config)
    ids = simulator.bulk_join(positions).object_ids
    sampler_seed = None if seed is None else seed + 101
    sampler = make_sampler(workload, population, positions,
                           seed=sampler_seed, zipf_alpha=zipf_alpha)
    schedule = build_schedule(sampler, queries,
                              seed=None if sampler_seed is None
                              else sampler_seed + 1)
    return serve_protocol_closed_loop(
        simulator, ids, schedule, workload, concurrency=concurrency,
        window=window, metrics=metrics, record_paths=record_paths)


def twin_parity(population: int, queries: int, *,
                seed: Optional[int] = 0,
                concurrency: int = 0) -> Dict:
    """Serve one schedule through both planes; compare per-query hops.

    The overlays are byte-identical twins (``bulk_load`` vs. ``bulk_join``
    of the same positions under the same config seed), so greedy
    forwarding must take the same path for every query — any hop mismatch
    is a routing divergence between the planes.  ``concurrency`` 0 means
    *all* queries are injected before the engine runs (maximal
    contention); a positive value caps the in-flight count closed-loop
    style.  Returns the mismatch census the parity tests and the bench
    record assert on.
    """
    positions = _positions(population, seed)
    adapter = VoroNetServing(positions, seed=seed, track_paths=False)
    simulator = ProtocolSimulator(adapter.config)
    ids = simulator.bulk_join(positions).object_ids
    sampler = UniformTargets(population,
                             seed=None if seed is None else seed + 7)
    schedule = build_schedule(sampler, queries,
                              seed=None if seed is None else seed + 8)
    pairs = schedule.pairs()
    oracle_hops = [adapter.route_index(s, t).hops for s, t in pairs]
    if concurrency and concurrency > 0:
        report = serve_protocol_closed_loop(simulator, ids, schedule,
                                            concurrency=concurrency)
        protocol_hops = [simulator.query_answers[k]["hops"]
                         for k in range(len(pairs))]
        virtual_duration = report["virtual_duration"]
    else:
        for k, (s, t) in enumerate(pairs):
            simulator.start_query(simulator.nodes[ids[t]].position,
                                  start=ids[s], query_id=k)
        simulator.engine.run()
        protocol_hops = [simulator.query_answers[k]["hops"]
                         for k in range(len(pairs))]
        virtual_duration = simulator.engine.now
    mismatches = sum(1 for a, b in zip(oracle_hops, protocol_hops) if a != b)
    return {
        "queries": len(pairs),
        "hop_mismatches": mismatches,
        "parity": mismatches == 0,
        "oracle_total_hops": sum(oracle_hops),
        "protocol_total_hops": sum(protocol_hops),
        "virtual_duration": virtual_duration,
    }

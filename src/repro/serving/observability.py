"""Load and trajectory observability for the serving layer.

Two trackers complement the streaming percentile estimators:

* :class:`LoadTracker` — per-node service counters with the imbalance
  summary the shoot-out reports (Gini coefficient and max/mean ratio).
  The paper's load story is about where greedy forwarding concentrates
  work; counting every node on every route path makes that measurable
  under skewed demand.
* :class:`WindowTracker` — periodic time-windowed snapshots (queries per
  second, mean/max hops, mean latency per window of virtual time),
  accumulated as plottable rows and exported through a
  :class:`~repro.simulation.metrics.MetricsRegistry` so a throughput or
  latency trajectory can be reconstructed after the run.
* :class:`AvailabilityTracker` — per-side, per-phase query success
  during a network split, plus heal→converged latencies — the
  availability story of the partition-merge subsystem: what fraction of
  queries each side of a split answered while degraded (views still
  reference the far side) and once stabilised against its own fork, and
  how long each heal took to reach clean views again.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.simulation.metrics import MetricsRegistry

__all__ = ["LoadTracker", "WindowTracker", "AvailabilityTracker"]


class LoadTracker:
    """Per-node service counters and their imbalance summary.

    Parameters
    ----------
    population:
        Total number of nodes the load *could* land on.  When given, the
        imbalance statistics include the nodes that served nothing —
        essential for honest Gini values: a system that funnels all work
        through 1% of nodes must not look egalitarian just because only
        that 1% appears in the counter dict.
    """

    __slots__ = ("population", "counts", "total")

    def __init__(self, population: Optional[int] = None) -> None:
        if population is not None and population < 1:
            raise ValueError(f"population must be >= 1, got {population}")
        self.population = population
        self.counts: Dict[int, int] = {}
        self.total = 0

    def record(self, node_id: int, amount: int = 1) -> None:
        """Count ``amount`` units of service work performed by a node."""
        self.counts[node_id] = self.counts.get(node_id, 0) + amount
        self.total += amount

    def record_path(self, path: Iterable[int]) -> None:
        """Count one unit for every node a route visited."""
        for node_id in path:
            self.record(node_id)

    # ------------------------------------------------------------------
    def values(self) -> np.ndarray:
        """Load vector over the population (zeros included when known)."""
        observed = np.fromiter(self.counts.values(), dtype=np.float64,
                               count=len(self.counts))
        if self.population is None or self.population <= len(observed):
            return observed
        padded = np.zeros(self.population, dtype=np.float64)
        padded[:len(observed)] = observed
        return padded

    def gini(self) -> float:
        """Gini coefficient of the load distribution (0 = perfectly even)."""
        values = np.sort(self.values())
        n = len(values)
        total = values.sum()
        if n == 0 or total == 0.0:
            return 0.0
        ranks = np.arange(1, n + 1, dtype=np.float64)
        return float(((2.0 * ranks - n - 1.0) * values).sum() / (n * total))

    def max_mean(self) -> float:
        """Hottest node's load over the population mean (1 = perfectly even)."""
        values = self.values()
        if len(values) == 0 or self.total == 0:
            return 0.0
        return float(values.max() / values.mean())

    def summary(self) -> Dict[str, float]:
        """Imbalance summary of the load observed so far."""
        values = self.values()
        return {
            "total": float(self.total),
            "nodes_hit": float(len(self.counts)),
            "max": float(values.max()) if len(values) else 0.0,
            "mean": float(values.mean()) if len(values) else 0.0,
            "gini": self.gini(),
            "max_mean": self.max_mean(),
        }


class WindowTracker:
    """Fixed-width time windows of throughput/hops/latency.

    Observations arrive as ``(time, hops, latency)`` with non-decreasing
    ``time`` (drivers sort completions before feeding the tracker); each
    window that fills emits one snapshot row and, when a registry is
    attached, one sample per ``<prefix>.window_*`` histogram — so the
    registry's existing summary machinery (count/mean/p50/p95/max) works
    across windows, while the rows keep the full trajectory.  Windows
    that pass without traffic emit explicit zero-qps rows: a stall is a
    data point, not a gap in the plot.

    Call :meth:`finish` after the last observation to flush the final
    partial window.
    """

    __slots__ = ("window", "metrics", "prefix", "snapshots",
                 "_start", "_hops", "_latency", "_queries")

    def __init__(self, window: float = 50.0,
                 metrics: Optional[MetricsRegistry] = None,
                 prefix: str = "serving") -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = float(window)
        self.metrics = metrics
        self.prefix = prefix
        self.snapshots: List[Dict[str, float]] = []
        self._start: Optional[float] = None
        self._hops = 0.0
        self._latency = 0.0
        self._queries = 0

    def observe(self, time: float, hops: float, latency: float) -> None:
        """Record one served query at virtual ``time``."""
        if self._start is None:
            # Align the first window on a multiple of the width, so rows
            # from different runs of the same workload line up.
            self._start = float(np.floor(time / self.window)) * self.window
        if time < self._start:
            raise ValueError(
                f"time went backwards: {time} < window start {self._start}")
        while time >= self._start + self.window:
            self._flush()
        self._queries += 1
        self._hops += hops
        self._latency += latency

    def _flush(self) -> None:
        queries = self._queries
        row = {
            "start": self._start,
            "end": self._start + self.window,
            "queries": float(queries),
            "qps": queries / self.window,
            "mean_hops": self._hops / queries if queries else 0.0,
            "mean_latency": self._latency / queries if queries else 0.0,
        }
        self.snapshots.append(row)
        if self.metrics is not None:
            self.metrics.observe(f"{self.prefix}.window_qps", row["qps"])
            self.metrics.observe(f"{self.prefix}.window_mean_hops",
                                 row["mean_hops"])
            self.metrics.observe(f"{self.prefix}.window_mean_latency",
                                 row["mean_latency"])
        self._start += self.window
        self._hops = 0.0
        self._latency = 0.0
        self._queries = 0

    def finish(self) -> List[Dict[str, float]]:
        """Flush the trailing partial window; returns all snapshot rows."""
        if self._start is not None and self._queries:
            self._flush()
        return self.snapshots


class AvailabilityTracker:
    """Split-era query availability, per side and phase, plus heal latency.

    The partition-merge harness records every split-era query as
    ``(side, phase, served)`` — ``phase`` is ``"degraded"`` (the cut is
    open but views still reference the far side, so walks die crossing
    it) or ``"stable"`` (each side has repaired against its own fork) —
    and brackets every heal with :meth:`mark_heal` /
    :meth:`mark_converged` so time-to-converge is measured on the same
    virtual clock as the queries.  :meth:`summary` is JSON-safe (string
    keys throughout) for the benchmark records.
    """

    __slots__ = ("_served", "_total", "_heals", "_pending_heal")

    def __init__(self) -> None:
        # (side, phase) -> counts; sides are small ints, phases strings.
        self._served: Dict[tuple, int] = {}
        self._total: Dict[tuple, int] = {}
        self._heals: List[Dict[str, float]] = []
        self._pending_heal: Optional[float] = None

    def record(self, side: int, phase: str, served: bool) -> None:
        """Count one split-era query outcome for ``side`` in ``phase``."""
        key = (side, phase)
        self._total[key] = self._total.get(key, 0) + 1
        if served:
            self._served[key] = self._served.get(key, 0) + 1

    def mark_heal(self, time: float) -> None:
        """The split healed at virtual ``time``; converge timing starts."""
        self._pending_heal = float(time)

    def mark_converged(self, time: float) -> None:
        """Views verified clean at ``time``; closes the pending heal."""
        if self._pending_heal is None:
            raise ValueError("mark_converged without a pending mark_heal")
        self._heals.append({
            "healed_at": self._pending_heal,
            "converged_at": float(time),
            "time_to_converge": float(time) - self._pending_heal,
        })
        self._pending_heal = None

    def success_rate(self, phase: Optional[str] = None) -> float:
        """Served fraction across all sides (optionally one phase)."""
        total = served = 0
        for key, count in self._total.items():
            if phase is not None and key[1] != phase:
                continue
            total += count
            served += self._served.get(key, 0)
        return served / total if total else 0.0

    def summary(self) -> Dict:
        """JSON-safe availability summary for benchmark records."""
        sides: Dict[str, Dict[str, Dict[str, float]]] = {}
        for key in sorted(self._total):
            side, phase = key
            total = self._total[key]
            served = self._served.get(key, 0)
            sides.setdefault(str(side), {})[phase] = {
                "queries": float(total),
                "served": float(served),
                "success_rate": served / total if total else 0.0,
            }
        times = [heal["time_to_converge"] for heal in self._heals]
        return {
            "sides": sides,
            "degraded_success_rate": self.success_rate("degraded"),
            "stable_success_rate": self.success_rate("stable"),
            "heals": list(self._heals),
            "time_to_converge_max": max(times) if times else 0.0,
        }

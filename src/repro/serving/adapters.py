"""Uniform serving adapters over VoroNet and the comparison baselines.

The shoot-out replays *one* sampled query schedule — ``(source index,
target index)`` pairs over a shared object population — against three
systems with three different native interfaces:

* :class:`~repro.core.overlay.VoroNet` routes between object ids over
  the Voronoi/long-link views;
* :class:`~repro.baselines.kleinberg.KleinbergBaseline` routes between
  row-major lattice ids;
* :class:`~repro.baselines.chord.ChordRing` looks up hashed keys from a
  start node.

Each adapter owns the index → native-id mapping and normalises the
outcome into one :class:`ServeOutcome` (hops, success, optional visited
path), so the traffic drivers and the observability layer never branch
on the system under test.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence, Tuple

from repro.baselines.chord import ChordRing
from repro.baselines.kleinberg import KleinbergBaseline
from repro.core.config import VoroNetConfig
from repro.core.overlay import VoroNet
from repro.geometry.point import Point
from repro.utils.rng import RandomSource

__all__ = ["ServeOutcome", "ServingAdapter", "VoroNetServing",
           "KleinbergServing", "ChordServing"]

#: Build-capacity slack over the initial population, leaving room for the
#: moving-object mixin to re-insert near capacity without overflowing.
CAPACITY_HEADROOM = 1.25


class ServeOutcome:
    """One served query, normalised across systems."""

    __slots__ = ("hops", "success", "path")

    def __init__(self, hops: int, success: bool,
                 path: Optional[Tuple[int, ...]] = None) -> None:
        self.hops = hops
        self.success = success
        self.path = path

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ServeOutcome(hops={self.hops}, success={self.success})"


class ServingAdapter(abc.ABC):
    """Route queries addressed by population index; report hops uniformly."""

    #: System name used in benchmark records.
    name: str = "abstract"

    def __init__(self, population: int) -> None:
        self.population = population

    @abc.abstractmethod
    def route_index(self, source: int, target: int) -> ServeOutcome:
        """Serve one query between two population indices."""

    def route_batch(self,
                    pairs: Sequence[Tuple[int, int]]) -> List[ServeOutcome]:
        """Serve a batch of index pairs (overridden where a native batched
        entry point exists)."""
        return [self.route_index(source, target) for source, target in pairs]

    @abc.abstractmethod
    def node_count(self) -> int:
        """Number of nodes load can land on (the LoadTracker population)."""


class VoroNetServing(ServingAdapter):
    """VoroNet under test: objects bulk-loaded at the given positions.

    ``track_paths`` turns on per-route path recording (needed for load
    accounting; costs one list per route).  The ``ids`` list maps
    population index → object id and is deliberately mutable state: the
    moving-object churn mixin updates it on id-reusing moves, and leaves
    it stale on turnover churn — stale entries are then served as defined
    misses by the batched ``route_many(missing="miss")`` path, which is
    exactly the race a schedule sampled before the churn would hit.
    """

    name = "voronet"

    def __init__(self, positions: Sequence[Point], *,
                 seed: Optional[int] = 0,
                 num_long_links: int = 1,
                 track_paths: bool = False) -> None:
        super().__init__(len(positions))
        self.config = VoroNetConfig(
            n_max=max(16, int(len(positions) * CAPACITY_HEADROOM)),
            num_long_links=num_long_links,
            track_paths=track_paths,
            seed=seed,
        )
        self.overlay = VoroNet(config=self.config)
        self.ids: List[int] = self.overlay.bulk_load(positions)

    def route_index(self, source: int, target: int) -> ServeOutcome:
        result = self.overlay.route(self.ids[source], self.ids[target])
        return ServeOutcome(result.hops, result.success,
                            tuple(result.path) if result.path else None)

    def route_batch(self,
                    pairs: Sequence[Tuple[int, int]]) -> List[ServeOutcome]:
        ids = self.ids
        results = self.overlay.route_many(
            [(ids[source], ids[target]) for source, target in pairs],
            missing="miss")
        return [ServeOutcome(r.hops, r.success,
                             tuple(r.path) if r.path else None)
                for r in results]

    def node_count(self) -> int:
        return len(self.overlay)


class KleinbergServing(ServingAdapter):
    """Kleinberg's grid: the navigable small-world reference point.

    The population must be a perfect square (the construction only exists
    on a regular lattice); index ``i`` is the row-major lattice object.
    """

    name = "kleinberg"

    def __init__(self, population: int, *, seed: Optional[int] = 0,
                 exponent: float = 2.0, long_links_per_node: int = 1,
                 track_paths: bool = False) -> None:
        side = round(population ** 0.5)
        if side * side != population:
            raise ValueError(
                f"Kleinberg population must be a perfect square, got {population}")
        super().__init__(population)
        self.track_paths = track_paths
        self.baseline = KleinbergBaseline(
            side, exponent=exponent, long_links_per_node=long_links_per_node,
            rng=RandomSource(seed))

    def route_index(self, source: int, target: int) -> ServeOutcome:
        result = self.baseline.route(source, target,
                                     record_path=self.track_paths)
        path = None
        if result.path is not None:
            path = tuple(self.baseline.node_id(coord) for coord in result.path)
        return ServeOutcome(result.hops, result.success, path)

    def node_count(self) -> int:
        return self.population


class ChordServing(ServingAdapter):
    """Chord DHT: the hash-based structured-overlay reference point.

    Every object index hashes onto the ring as ``object-<i>``; a query
    starts at the source's node and resolves the target's key with finger
    routing.  Hashing destroys attribute locality, which is the paper's
    argument — the shoot-out quantifies what it buys (load spreading) and
    costs (no spatial queries, rigid O(log N) hops).
    """

    name = "chord"

    def __init__(self, population: int, *, bits: int = 32,
                 track_paths: bool = False) -> None:
        super().__init__(population)
        self.track_paths = track_paths
        self.ring = ChordRing(bits=bits)
        self.ids: List[int] = self.ring.bulk_join(
            [f"object-{i}" for i in range(population)])

    def route_index(self, source: int, target: int) -> ServeOutcome:
        result = self.ring.lookup(self.ids[target], start=self.ids[source],
                                  record_path=self.track_paths)
        return ServeOutcome(result.hops, result.owner == self.ids[target],
                            result.path)

    def node_count(self) -> int:
        return len(self.ring)

"""Unit tests for the Delaunay-only, Kleinberg and random-graph baselines."""

import numpy as np
import pytest

from repro.baselines.delaunay_only import DelaunayOnlyOverlay
from repro.baselines.kleinberg import KleinbergBaseline
from repro.baselines.random_graph import RandomGraphOverlay
from repro.utils.rng import RandomSource


class TestDelaunayOnly:
    @pytest.fixture
    def baseline(self, numpy_rng):
        baseline = DelaunayOnlyOverlay(n_max=400, seed=3)
        baseline.insert_many([tuple(p) for p in numpy_rng.random((150, 2))])
        return baseline

    def test_no_long_links(self, baseline):
        for oid in baseline.object_ids():
            assert baseline.overlay.node(oid).long_links == []

    def test_routing_succeeds(self, baseline, numpy_rng):
        ids = baseline.object_ids()
        for _ in range(25):
            a, b = numpy_rng.choice(ids, size=2, replace=False)
            result = baseline.route(int(a), int(b))
            assert result.success and result.owner == int(b)

    def test_remove(self, baseline):
        victim = baseline.object_ids()[0]
        baseline.remove(victim)
        assert victim not in baseline.object_ids()
        assert len(baseline) == 149

    def test_slower_than_voronet_on_average(self, numpy_rng):
        """The whole point of the long links: VoroNet beats Delaunay-only."""
        from repro.core import VoroNet, VoroNetConfig

        positions = [tuple(p) for p in numpy_rng.random((400, 2))]
        voronet = VoroNet(VoroNetConfig(n_max=500, seed=11))
        baseline = DelaunayOnlyOverlay(n_max=500, seed=11)
        for p in positions:
            voronet.insert(p)
            baseline.insert(p)
        ids = voronet.object_ids()
        pairs = [tuple(numpy_rng.choice(ids, size=2, replace=False)) for _ in range(60)]
        voronet_hops = np.mean([voronet.route(int(a), int(b)).hops for a, b in pairs])
        baseline_hops = np.mean([baseline.route(int(a), int(b)).hops for a, b in pairs])
        assert voronet_hops < baseline_hops


class TestKleinbergBaseline:
    def test_size_and_positions(self):
        baseline = KleinbergBaseline(8, rng=RandomSource(1))
        assert len(baseline) == 64
        x, y = baseline.position_of(0)
        assert 0 < x < 1 and 0 < y < 1

    def test_route_between_objects(self):
        baseline = KleinbergBaseline(10, rng=RandomSource(2))
        result = baseline.route(0, 99)
        assert result.success

    def test_mean_route_length(self):
        baseline = KleinbergBaseline(10, rng=RandomSource(3))
        assert baseline.mean_route_length(50, RandomSource(3)) > 0


class TestRandomGraph:
    @pytest.fixture
    def positions(self, numpy_rng):
        return [tuple(p) for p in numpy_rng.random((250, 2))]

    def test_validation(self, positions):
        with pytest.raises(ValueError):
            RandomGraphOverlay(positions[:1])
        with pytest.raises(ValueError):
            RandomGraphOverlay(positions, links_per_node=0)

    def test_adjacency_symmetric(self, positions):
        graph = RandomGraphOverlay(positions, rng=RandomSource(1))
        for node in graph.object_ids():
            for nb in graph.neighbors(node):
                assert node in graph.neighbors(nb)

    def test_route_self_loop(self, positions):
        graph = RandomGraphOverlay(positions, rng=RandomSource(2))
        result = graph.route(3, 3)
        assert result.success and result.hops == 0

    def test_measure_reports_rates(self, positions):
        graph = RandomGraphOverlay(positions, rng=RandomSource(3))
        report = graph.measure(100, RandomSource(4))
        assert 0.0 <= report["success_rate"] <= 1.0

    def test_random_links_are_not_navigable(self, positions, numpy_rng):
        """Greedy routing over uniform random links fails far more often than
        over VoroNet (which never fails)."""
        graph = RandomGraphOverlay(positions, links_per_node=3,
                                   connect_nearest=False, rng=RandomSource(5))
        report = graph.measure(200, RandomSource(6))
        assert report["success_rate"] < 0.9

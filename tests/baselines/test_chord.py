"""Unit tests for the Chord DHT baseline."""

import math

import pytest

from repro.baselines.chord import ChordRing


@pytest.fixture
def ring():
    ring = ChordRing(bits=24)
    for i in range(64):
        ring.join(f"node-{i}")
    return ring


class TestMembership:
    def test_join_count(self, ring):
        assert len(ring) == 64

    def test_node_ids_sorted(self, ring):
        ids = ring.node_ids()
        assert ids == sorted(ids)

    def test_leave(self, ring):
        victim = ring.node_ids()[0]
        ring.leave(victim)
        assert len(ring) == 63
        assert victim not in ring.node_ids()

    def test_leave_unknown_raises(self, ring):
        with pytest.raises(KeyError):
            ring.leave(123456789)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            ChordRing(bits=2)


class TestLookups:
    def test_lookup_owner_is_successor(self, ring):
        key = 12345
        result = ring.lookup(key)
        ids = ring.node_ids()
        successors = [n for n in ids if n >= key]
        expected = successors[0] if successors else ids[0]
        assert result.owner == expected

    def test_lookup_deterministic(self, ring):
        assert ring.lookup_key("object-1").owner == ring.lookup_key("object-1").owner

    def test_lookup_hops_logarithmic(self, ring):
        """Finger-table lookups take O(log N) hops."""
        hops = [ring.lookup_key(f"key-{i}").hops for i in range(200)]
        assert max(hops) <= 2 * math.ceil(math.log2(len(ring))) + 2

    def test_lookup_from_every_start(self, ring):
        key = 999
        owners = {ring.lookup(key, start=s).owner for s in ring.node_ids()[:10]}
        assert len(owners) == 1

    def test_lookup_after_leave_still_correct(self, ring):
        key = 5555
        owner_before = ring.lookup(key).owner
        ring.leave(owner_before)
        owner_after = ring.lookup(key).owner
        assert owner_after != owner_before
        assert owner_after in ring.node_ids()

    def test_messages_equal_hops(self, ring):
        result = ring.lookup_key("x")
        assert result.messages == result.hops

    def test_lookup_on_empty_ring_raises(self):
        with pytest.raises(RuntimeError):
            ChordRing().lookup(5)


class TestRangeQueries:
    def test_range_query_costs_one_lookup_per_value(self, ring):
        values = [f"price-{v}" for v in range(20)]
        total_hops, results = ring.range_query_cost(values)
        assert len(results) == 20
        assert total_hops == sum(r.hops for r in results)

    def test_range_cost_grows_linearly_with_range_size(self, ring):
        small, _ = ring.range_query_cost([f"v-{i}" for i in range(5)])
        large, _ = ring.range_query_cost([f"v-{i}" for i in range(50)])
        assert large > small

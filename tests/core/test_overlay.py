"""Unit tests for the VoroNet overlay (join, leave, views, ownership)."""


import numpy as np
import pytest

from repro.core import VoroNet, VoroNetConfig
from repro.core.errors import (
    DuplicateObjectError,
    EmptyOverlayError,
    ObjectNotFoundError,
    OverlayFullError,
)
from repro.geometry.point import distance


class TestInsertion:
    def test_insert_returns_distinct_ids(self, tiny_overlay):
        assert len(set(tiny_overlay.object_ids())) == 5

    def test_insert_outside_unit_square_rejected(self):
        overlay = VoroNet(n_max=10, seed=1)
        with pytest.raises(ValueError):
            overlay.insert((1.5, 0.5))

    def test_insert_duplicate_position_rejected(self):
        overlay = VoroNet(n_max=10, seed=1)
        overlay.insert((0.5, 0.5))
        with pytest.raises(DuplicateObjectError):
            overlay.insert((0.5, 0.5))

    def test_insert_duplicate_id_rejected(self):
        overlay = VoroNet(n_max=10, seed=1)
        overlay.insert((0.5, 0.5), object_id=3)
        with pytest.raises(DuplicateObjectError):
            overlay.insert((0.6, 0.6), object_id=3)

    def test_insert_with_unknown_introducer_rejected(self):
        overlay = VoroNet(n_max=10, seed=1)
        overlay.insert((0.5, 0.5))
        with pytest.raises(ObjectNotFoundError):
            overlay.insert((0.6, 0.6), introducer=77)

    def test_overlay_full(self):
        overlay = VoroNet(VoroNetConfig(n_max=3, seed=1))
        for p in [(0.1, 0.1), (0.6, 0.2), (0.4, 0.8)]:
            overlay.insert(p)
        with pytest.raises(OverlayFullError):
            overlay.insert((0.5, 0.5))

    def test_overflow_allowed_when_configured(self):
        overlay = VoroNet(VoroNetConfig(n_max=2, allow_overflow=True, seed=1))
        for p in [(0.1, 0.1), (0.6, 0.2), (0.4, 0.8)]:
            overlay.insert(p)
        assert len(overlay) == 3

    def test_each_object_gets_configured_number_of_long_links(self):
        overlay = VoroNet(VoroNetConfig(n_max=100, num_long_links=3, seed=2))
        for p in np.random.default_rng(0).random((30, 2)):
            overlay.insert(tuple(p))
        for oid in overlay.object_ids():
            assert len(overlay.node(oid).long_links) == 3

    def test_join_counts_routing_hops(self, small_overlay):
        assert small_overlay.stats.joins.count == 120
        assert small_overlay.stats.joins.mean_hops > 0

    def test_insert_many_returns_ids_in_order(self):
        overlay = VoroNet(n_max=50, seed=3)
        ids = overlay.insert_many([(0.1, 0.1), (0.5, 0.6), (0.9, 0.2)])
        assert ids == [0, 1, 2]

    def test_failed_insert_does_not_leak_auto_ids(self):
        """Regression: a failed duplicate insert must not burn the next id."""
        overlay = VoroNet(n_max=10, seed=1)
        assert overlay.insert((0.5, 0.5)) == 0
        with pytest.raises(DuplicateObjectError):
            overlay.insert((0.5, 0.5))
        assert overlay.insert((0.25, 0.75)) == 1

    def test_failed_explicit_id_insert_does_not_advance_next_id(self):
        overlay = VoroNet(n_max=10, seed=1)
        overlay.insert((0.5, 0.5))
        with pytest.raises(DuplicateObjectError):
            overlay.insert((0.5, 0.5), object_id=7)
        # The rejected id-7 insert never published, so auto ids continue at 1.
        assert overlay.insert((0.25, 0.75)) == 1


class TestRemoval:
    def test_remove_unknown_raises(self, tiny_overlay):
        with pytest.raises(ObjectNotFoundError):
            tiny_overlay.remove(999)

    def test_remove_shrinks_overlay(self, tiny_overlay):
        victim = tiny_overlay.object_ids()[0]
        tiny_overlay.remove(victim)
        assert victim not in tiny_overlay
        assert len(tiny_overlay) == 4

    def test_remove_all_objects(self, tiny_overlay):
        for oid in list(tiny_overlay.object_ids()):
            tiny_overlay.remove(oid)
        assert len(tiny_overlay) == 0

    def test_consistency_after_random_churn(self, small_overlay, numpy_rng):
        ids = small_overlay.object_ids()
        for victim in numpy_rng.choice(ids, size=40, replace=False):
            small_overlay.remove(int(victim))
        assert small_overlay.check_consistency() == []

    def test_long_links_redelegated_after_departure(self, small_overlay):
        """After any node leaves, every remaining long link must point at the
        current owner of its target point."""
        victim = small_overlay.object_ids()[10]
        small_overlay.remove(victim)
        for oid in small_overlay.object_ids():
            for link in small_overlay.node(oid).long_links:
                assert link.neighbor != victim
                assert small_overlay.owner_of(link.target) == link.neighbor


class TestViews:
    def test_voronoi_neighbors_symmetric(self, small_overlay):
        for oid in small_overlay.object_ids()[:40]:
            for nb in small_overlay.voronoi_neighbors(oid):
                assert oid in small_overlay.voronoi_neighbors(nb)

    def test_neighbor_view_contents(self, small_overlay):
        oid = small_overlay.object_ids()[5]
        view = small_overlay.neighbor_view(oid)
        assert view.object_id == oid
        assert set(view.voronoi) == set(small_overlay.voronoi_neighbors(oid))
        assert oid not in view.routing_neighbors

    def test_close_neighbors_within_d_min(self, numpy_rng):
        config = VoroNetConfig(n_max=64, seed=5)  # large d_min for small n_max
        overlay = VoroNet(config)
        for p in numpy_rng.random((60, 2)):
            overlay.insert(tuple(p))
        d_min = config.effective_d_min
        for oid in overlay.object_ids():
            for cn in overlay.node(oid).close_neighbors:
                assert distance(overlay.position_of(oid),
                                overlay.position_of(cn)) <= d_min + 1e-12

    def test_close_neighbors_complete(self, numpy_rng):
        """Every pair of objects within d_min must know each other (Lemma 1)."""
        config = VoroNetConfig(n_max=64, seed=5)
        overlay = VoroNet(config)
        positions = {}
        for p in numpy_rng.random((60, 2)):
            positions[overlay.insert(tuple(p))] = tuple(p)
        d_min = config.effective_d_min
        for a in positions:
            for b in positions:
                if a < b and distance(positions[a], positions[b]) <= d_min:
                    assert b in overlay.node(a).close_neighbors
                    assert a in overlay.node(b).close_neighbors

    def test_degree_histogram_sums_to_size(self, small_overlay):
        assert sum(small_overlay.degree_histogram().values()) == len(small_overlay)

    def test_view_sizes_are_bounded(self, small_overlay):
        sizes = small_overlay.view_sizes()
        assert np.mean(list(sizes.values())) < 20  # O(1) in practice

    def test_voronoi_cell_contains_site(self, small_overlay):
        oid = small_overlay.object_ids()[7]
        cell = small_overlay.voronoi_cell(oid)
        assert cell.contains(small_overlay.position_of(oid))


class TestOwnership:
    def test_owner_of_matches_nearest(self, small_overlay, numpy_rng):
        ids = small_overlay.object_ids()
        for _ in range(50):
            point = tuple(numpy_rng.random(2))
            owner = small_overlay.owner_of(point)
            nearest = min(ids, key=lambda i: distance(small_overlay.position_of(i), point))
            assert distance(small_overlay.position_of(owner), point) == pytest.approx(
                distance(small_overlay.position_of(nearest), point))

    def test_owner_of_empty_overlay_raises(self):
        with pytest.raises(EmptyOverlayError):
            VoroNet(n_max=4, seed=1).owner_of((0.5, 0.5))

    def test_distance_to_region_zero_for_owner(self, small_overlay):
        point = (0.42, 0.57)
        owner = small_overlay.owner_of(point)
        assert small_overlay.distance_to_region(owner, point) == 0.0

    def test_distance_to_region_positive_for_non_owner(self, small_overlay):
        point = (0.42, 0.57)
        owner = small_overlay.owner_of(point)
        far = max(small_overlay.object_ids(),
                  key=lambda i: distance(small_overlay.position_of(i), point))
        assert far != owner
        assert small_overlay.distance_to_region(far, point) > 0.0

    def test_distance_to_region_zero_on_shared_cell_boundary(self):
        """Regression: an on-boundary point is owned by both incident cells.

        Four objects on a symmetric grid give exactly representable cell
        boundaries at x = 0.5 and y = 0.5; every point on them must report
        distance 0 to both adjacent regions (the Algorithm-5 stopping rule
        depends on it).
        """
        overlay = VoroNet(n_max=16, seed=1)
        ids = overlay.bulk_load([(0.25, 0.25), (0.75, 0.25),
                                 (0.25, 0.75), (0.75, 0.75)])
        for point, owners in [((0.5, 0.25), (ids[0], ids[1])),
                              ((0.5, 0.1), (ids[0], ids[1])),
                              ((0.25, 0.5), (ids[0], ids[2])),
                              ((0.5, 0.5), ids)]:
            for oid in owners:
                assert overlay.distance_to_region(oid, point) == 0.0

    def test_distance_to_polygon_zero_on_boundary(self):
        """Regression for the raw helper: boundary points are inside."""
        from repro.core.overlay import _distance_to_polygon

        square = [(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]
        assert _distance_to_polygon((1.0, 0.5), square) == 0.0  # on an edge
        assert _distance_to_polygon((0.5, 0.0), square) == 0.0  # bottom edge
        assert _distance_to_polygon((0.0, 0.0), square) == 0.0  # vertex
        assert _distance_to_polygon((1.2, 0.5), square) == pytest.approx(0.2)


class TestExportsAndStats:
    def test_to_networkx_node_and_edge_kinds(self, small_overlay):
        graph = small_overlay.to_networkx()
        assert graph.number_of_nodes() == len(small_overlay)
        kinds = {data["kind"] for _, _, data in graph.edges(data=True)}
        assert "voronoi" in kinds and "long" in kinds

    def test_stats_describe_lines(self, small_overlay):
        # 5 operation groups + routing_table_rebuilds + the two
        # operation-hardening counters (timeouts, retries) + query_misses.
        lines = small_overlay.stats.describe()
        assert len(lines) == 9

    def test_routing_table_rebuilds_counted_per_epoch_bump(self):
        """The rebuild counter measures exactly the work a topology-epoch
        bump causes — the baseline for the per-shard-epoch follow-up."""
        overlay = VoroNet(n_max=128, seed=3)
        rng = np.random.default_rng(3)
        ids = [overlay.insert(tuple(rng.random(2))) for _ in range(20)]
        overlay.stats.routing_table_rebuilds = 0
        for object_id in ids:
            overlay.routing_table(object_id)
        assert overlay.stats.routing_table_rebuilds == len(ids)
        # Cache hits: same epoch, no further rebuilds.
        for object_id in ids:
            overlay.routing_table(object_id)
        assert overlay.stats.routing_table_rebuilds == len(ids)
        # One epoch bump invalidates every table; each re-read rebuilds.
        overlay.invalidate_routing_tables()
        for object_id in ids:
            overlay.routing_table(object_id)
        assert overlay.stats.routing_table_rebuilds == 2 * len(ids)

    def test_random_object_id_is_member(self, small_overlay):
        assert small_overlay.random_object_id() in small_overlay

    def test_random_object_id_empty_raises(self):
        with pytest.raises(EmptyOverlayError):
            VoroNet(n_max=4, seed=1).random_object_id()

    def test_config_keyword_shortcuts(self):
        overlay = VoroNet(n_max=77, num_long_links=2, seed=5)
        assert overlay.config.n_max == 77
        assert overlay.config.num_long_links == 2

    def test_config_and_kwargs_mutually_exclusive(self):
        with pytest.raises(ValueError):
            VoroNet(VoroNetConfig(), n_max=10)

    def test_positions_mapping(self, tiny_overlay):
        positions = tiny_overlay.positions()
        assert len(positions) == 5
        for oid, pos in positions.items():
            assert tiny_overlay.position_of(oid) == pos

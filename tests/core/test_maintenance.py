"""Unit tests for overlay maintenance (AddVoronoiRegion / RemoveVoronoiRegion)."""

import pytest

from repro.core import VoroNet, VoroNetConfig
from repro.core.maintenance import view_consistency_report


@pytest.fixture
def overlay(numpy_rng):
    overlay = VoroNet(VoroNetConfig(n_max=400, seed=13))
    for p in numpy_rng.random((150, 2)):
        overlay.insert(tuple(p))
    return overlay


class TestJoinMaintenance:
    def test_long_link_invariant_after_every_join(self, numpy_rng):
        """After each join, every long link in the overlay points at the
        object owning the region containing its target (the invariant
        Section 3.3 promises to keep)."""
        overlay = VoroNet(VoroNetConfig(n_max=200, seed=17))
        for p in numpy_rng.random((60, 2)):
            overlay.insert(tuple(p))
            for oid in overlay.object_ids():
                for link in overlay.node(oid).long_links:
                    assert overlay.owner_of(link.target) == link.neighbor

    def test_back_links_match_long_links(self, overlay):
        for oid in overlay.object_ids():
            for index, link in enumerate(overlay.node(oid).long_links):
                endpoint = overlay.node(link.neighbor)
                assert any(bl.source == oid and bl.link_index == index
                           for bl in endpoint.back_links)

    def test_join_message_cost_is_local(self, overlay):
        """Mean join messages must be far below the overlay size (O(1) + routing)."""
        assert overlay.stats.joins.mean_messages < len(overlay) / 3

    def test_consistency_report_clean(self, overlay):
        assert view_consistency_report(overlay) == []


class TestLeaveMaintenance:
    def test_leave_preserves_long_link_invariant(self, overlay, numpy_rng):
        victims = numpy_rng.choice(overlay.object_ids(), size=50, replace=False)
        for victim in victims:
            overlay.remove(int(victim))
            for oid in overlay.object_ids():
                for link in overlay.node(oid).long_links:
                    assert link.neighbor in overlay
        assert view_consistency_report(overlay) == []

    def test_leave_cleans_close_neighbors(self, numpy_rng):
        overlay = VoroNet(VoroNetConfig(n_max=40, seed=19))
        for p in numpy_rng.random((40, 2)):
            overlay.insert(tuple(p))
        victim = next(oid for oid in overlay.object_ids()
                      if overlay.node(oid).close_neighbors)
        neighbours = set(overlay.node(victim).close_neighbors)
        overlay.remove(victim)
        for nb in neighbours:
            assert victim not in overlay.node(nb).close_neighbors

    def test_leave_cleans_back_registrations(self, overlay):
        victim = overlay.object_ids()[0]
        endpoints = [link.neighbor for link in overlay.node(victim).long_links
                     if link.neighbor != victim]
        overlay.remove(victim)
        for endpoint in endpoints:
            if endpoint in overlay:
                assert victim not in overlay.node(endpoint).back_link_sources()

    def test_leave_message_cost_is_constant_like(self, overlay, numpy_rng):
        victims = numpy_rng.choice(overlay.object_ids(), size=30, replace=False)
        for victim in victims:
            overlay.remove(int(victim))
        assert overlay.stats.leaves.mean_messages < 40

    def test_view_consistency_detects_dangling_link(self, overlay):
        # Manually corrupt a long link to point at a non-existent object.
        oid = overlay.object_ids()[0]
        overlay.node(oid).long_links[0].neighbor = 10_000
        problems = view_consistency_report(overlay)
        assert any("departed" in p or "points at" in p for p in problems)


class TestAblations:
    def test_without_back_links_departures_leave_dangling_links(self, numpy_rng):
        overlay = VoroNet(VoroNetConfig(n_max=300, seed=23,
                                        maintain_back_links=False))
        ids = [overlay.insert(tuple(p)) for p in numpy_rng.random((120, 2))]
        # Remove a third of the objects; without BLRn nothing re-points links.
        for victim in numpy_rng.choice(ids, size=40, replace=False):
            overlay.remove(int(victim))
        dangling = 0
        for oid in overlay.object_ids():
            for link in overlay.node(oid).long_links:
                if link.neighbor not in overlay:
                    dangling += 1
        assert dangling > 0

"""Unit tests for the Choose-LRT long-range target sampler."""

import math

import numpy as np
import pytest

from repro.core.long_range import (
    choose_long_range_target,
    choose_long_range_targets,
    expected_link_count_in_disk,
    link_length_density,
    target_area_density,
)
from repro.utils.rng import RandomSource


class TestChooseTarget:
    def test_length_within_support(self):
        rng = RandomSource(1)
        d_min = 0.01
        for _ in range(500):
            target = choose_long_range_target((0.5, 0.5), d_min, rng)
            length = math.dist((0.5, 0.5), target)
            assert d_min - 1e-12 <= length <= math.sqrt(2) + 1e-12

    def test_target_may_leave_unit_square(self):
        rng = RandomSource(2)
        outside = 0
        for _ in range(500):
            target = choose_long_range_target((0.05, 0.05), 0.01, rng)
            if not (0 <= target[0] <= 1 and 0 <= target[1] <= 1):
                outside += 1
        assert outside > 0  # corners frequently shoot outside, as the paper allows

    def test_invalid_d_min_raises(self):
        rng = RandomSource(3)
        with pytest.raises(ValueError):
            choose_long_range_target((0.5, 0.5), 0.0, rng)
        with pytest.raises(ValueError):
            choose_long_range_target((0.5, 0.5), 2.0, rng)

    def test_deterministic_given_seed(self):
        a = choose_long_range_target((0.5, 0.5), 0.01, RandomSource(9))
        b = choose_long_range_target((0.5, 0.5), 0.01, RandomSource(9))
        assert a == b

    def test_lengths_are_log_uniform(self):
        """The log of the link length must be (approximately) uniform."""
        rng = RandomSource(4)
        d_min = 0.001
        logs = []
        for _ in range(4000):
            target = choose_long_range_target((0.5, 0.5), d_min, rng)
            logs.append(math.log(math.dist((0.5, 0.5), target)))
        logs = np.array(logs)
        lo, hi = math.log(d_min), math.log(math.sqrt(2))
        # Compare quartiles of the empirical distribution with the uniform ones.
        expected_quartiles = lo + (hi - lo) * np.array([0.25, 0.5, 0.75])
        observed_quartiles = np.percentile(logs, [25, 50, 75])
        np.testing.assert_allclose(observed_quartiles, expected_quartiles, atol=0.12)

    def test_angles_are_uniform(self):
        rng = RandomSource(5)
        angles = []
        for _ in range(4000):
            target = choose_long_range_target((0.5, 0.5), 0.01, rng)
            angles.append(math.atan2(target[1] - 0.5, target[0] - 0.5))
        quadrants = np.histogram(angles, bins=4, range=(-math.pi, math.pi))[0]
        assert quadrants.min() > 0.8 * quadrants.max()


class TestBatchSampling:
    def test_count(self):
        targets = choose_long_range_targets((0.5, 0.5), 0.01, 10, RandomSource(1))
        assert len(targets) == 10

    def test_zero_count(self):
        assert choose_long_range_targets((0.5, 0.5), 0.01, 0, RandomSource(1)) == []

    def test_invalid_d_min(self):
        with pytest.raises(ValueError):
            choose_long_range_targets((0.5, 0.5), 0.0, 3, RandomSource(1))

    def test_batch_lengths_within_support(self):
        targets = choose_long_range_targets((0.2, 0.8), 0.05, 200, RandomSource(2))
        for target in targets:
            length = math.dist((0.2, 0.8), target)
            assert 0.05 - 1e-12 <= length <= math.sqrt(2) + 1e-12


class TestDensities:
    def test_link_length_density_integrates_to_one(self):
        d_min = 0.01
        xs = np.linspace(d_min, math.sqrt(2), 20000)
        ys = [link_length_density(x, d_min) for x in xs]
        assert np.trapezoid(ys, xs) == pytest.approx(1.0, rel=1e-3)

    def test_density_zero_outside_support(self):
        assert link_length_density(0.001, 0.01) == 0.0
        assert link_length_density(2.0, 0.01) == 0.0

    def test_area_density_inverse_square(self):
        d_min = 0.01
        near = target_area_density(0.1, d_min)
        far = target_area_density(0.2, d_min)
        assert near / far == pytest.approx(4.0)

    def test_lemma3_bound_distance_independent(self):
        d_min = 0.01
        assert expected_link_count_in_disk(0.1, 1 / 6, d_min) == pytest.approx(
            expected_link_count_in_disk(0.7, 1 / 6, d_min))

    def test_lemma3_bound_positive_and_small(self):
        bound = expected_link_count_in_disk(0.3, 1 / 6, 0.01)
        assert 0.0 < bound < 1.0

    def test_empirical_hit_rate_respects_lemma3_bound(self):
        """The probability of the target landing in a remote disk is at least
        the Lemma 3 lower bound."""
        rng = RandomSource(6)
        d_min = 0.01
        source = (0.2, 0.2)
        center = (0.7, 0.7)
        r = math.dist(source, center)
        fraction = 1 / 6
        radius = fraction * r
        hits = 0
        samples = 8000
        for _ in range(samples):
            target = choose_long_range_target(source, d_min, rng)
            if math.dist(target, center) <= radius:
                hits += 1
        bound = expected_link_count_in_disk(r, fraction, d_min)
        assert hits / samples >= bound * 0.8  # generous slack for sampling noise

"""Regression: batched routes targeting departed objects must not crash.

A serving batch is sampled against a snapshot of the population; churn can
remove a target before the batch executes.  ``route_many(missing="miss")``
turns that race into a defined miss record instead of an exception.
"""

import math

import pytest

from repro.core.errors import ObjectNotFoundError
from repro.core.overlay import VoroNet
from repro.core.routing import MISS_OWNER, missed_route
from repro.utils.rng import RandomSource


@pytest.fixture()
def overlay():
    rng = RandomSource(21)
    net = VoroNet(n_max=128, seed=21)
    net.bulk_load([tuple(p) for p in rng.generator.uniform(0.05, 0.95, (60, 2))])
    return net


class TestRouteManyMisses:
    def test_default_still_raises(self, overlay):
        ids = overlay.object_ids()
        gone = ids[7]
        overlay.remove(gone)
        with pytest.raises(ObjectNotFoundError):
            overlay.route_many([(ids[0], gone)])

    def test_removed_target_becomes_defined_miss(self, overlay):
        ids = overlay.object_ids()
        gone = ids[7]
        overlay.remove(gone)
        pairs = [(ids[0], ids[1]), (ids[2], gone), (ids[3], ids[4])]
        results = overlay.route_many(pairs, missing="miss")
        assert [r.success for r in results] == [True, False, True]
        miss = results[1]
        assert miss.owner == MISS_OWNER
        assert miss.hops == 0
        assert math.isinf(miss.final_distance)
        assert overlay.stats.query_misses == 1

    def test_removed_source_becomes_defined_miss(self, overlay):
        ids = overlay.object_ids()
        gone = ids[3]
        overlay.remove(gone)
        results = overlay.route_many([(gone, ids[0])], missing="miss")
        assert not results[0].success
        assert results[0].owner == MISS_OWNER

    def test_point_targets_never_miss(self, overlay):
        # Point queries route to whoever owns the region — no id to be
        # stale — so miss mode must leave them untouched.
        ids = overlay.object_ids()
        results = overlay.route_many([(ids[0], (0.4, 0.6))], missing="miss")
        assert results[0].success
        assert overlay.stats.query_misses == 0

    def test_miss_mode_matches_raise_mode_for_live_pairs(self, overlay):
        rng = RandomSource(8)
        ids = overlay.object_ids()
        pairs = [(ids[rng.integer(0, len(ids))], ids[rng.integer(0, len(ids))])
                 for _ in range(25)]
        strict = overlay.route_many(pairs)
        lenient = overlay.route_many(pairs, missing="miss")
        assert ([(r.owner, r.hops) for r in strict]
                == [(r.owner, r.hops) for r in lenient])

    def test_invalid_mode_rejected(self, overlay):
        ids = overlay.object_ids()
        with pytest.raises(ValueError):
            overlay.route_many([(ids[0], ids[1])], missing="ignore")

    def test_missed_route_helper_shapes(self):
        by_id = missed_route(4, 9)
        assert by_id.source == 4
        assert by_id.owner == MISS_OWNER
        assert by_id.path is None
        by_point = missed_route(4, (0.25, 0.75))
        assert by_point.target == (0.25, 0.75)

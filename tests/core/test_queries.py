"""Unit tests for point, range, radius and segment queries."""


import numpy as np
import pytest

from repro.core import VoroNet, VoroNetConfig
from repro.core.errors import EmptyOverlayError
from repro.core.queries import point_query, radius_query, range_query, segment_query
from repro.geometry.bounding import BoundingBox
from repro.geometry.point import distance


@pytest.fixture
def overlay(numpy_rng):
    overlay = VoroNet(VoroNetConfig(n_max=500, seed=21))
    for p in numpy_rng.random((250, 2)):
        overlay.insert(tuple(p))
    return overlay


class TestPointQuery:
    def test_owner_is_nearest_object(self, overlay, numpy_rng):
        for _ in range(25):
            point = tuple(numpy_rng.random(2))
            result = point_query(overlay, point)
            nearest = min(overlay.object_ids(),
                          key=lambda i: distance(overlay.position_of(i), point))
            assert distance(overlay.position_of(result.matches[0]), point) == \
                pytest.approx(distance(overlay.position_of(nearest), point))

    def test_single_match(self, overlay):
        result = point_query(overlay, (0.5, 0.5))
        assert len(result.matches) == 1

    def test_empty_overlay_raises(self):
        with pytest.raises(EmptyOverlayError):
            point_query(VoroNet(n_max=4, seed=1), (0.5, 0.5))


class TestRangeQuery:
    def test_matches_are_exactly_the_objects_in_the_box(self, overlay):
        box = BoundingBox(0.25, 0.3, 0.55, 0.6)
        result = range_query(overlay, box)
        expected = sorted(oid for oid in overlay.object_ids()
                          if box.contains(overlay.position_of(oid)))
        assert result.matches == expected

    def test_empty_box_returns_no_matches(self, overlay):
        box = BoundingBox(0.5, 0.5, 0.5001, 0.5001)
        result = range_query(overlay, box)
        expected = sorted(oid for oid in overlay.object_ids()
                          if box.contains(overlay.position_of(oid)))
        assert result.matches == expected  # usually empty

    def test_full_square_returns_everything(self, overlay):
        box = BoundingBox(0.0, 0.0, 1.0, 1.0)
        result = range_query(overlay, box)
        assert result.matches == sorted(overlay.object_ids())

    def test_visited_superset_of_matches(self, overlay):
        box = BoundingBox(0.1, 0.1, 0.4, 0.3)
        result = range_query(overlay, box)
        assert set(result.matches) <= result.visited

    def test_message_accounting(self, overlay):
        box = BoundingBox(0.2, 0.2, 0.5, 0.5)
        result = range_query(overlay, box)
        assert result.total_messages == result.route.messages + result.spread_messages
        assert result.spread_messages >= len(result.matches) - 1

    def test_spread_cost_scales_with_answer_not_overlay(self, overlay):
        small = range_query(overlay, BoundingBox(0.45, 0.45, 0.55, 0.55))
        large = range_query(overlay, BoundingBox(0.1, 0.1, 0.9, 0.9))
        assert small.spread_messages < large.spread_messages
        assert small.spread_messages < len(overlay)

    def test_one_attribute_range_as_degenerate_box(self, overlay):
        """A range on attribute 0 only is a box spanning all of attribute 1."""
        box = BoundingBox(0.3, 0.0, 0.4, 1.0)
        result = range_query(overlay, box)
        expected = sorted(oid for oid in overlay.object_ids()
                          if 0.3 <= overlay.position_of(oid)[0] <= 0.4)
        assert result.matches == expected


class TestRadiusQuery:
    def test_matches_are_exactly_the_objects_in_the_disk(self, overlay):
        center, radius = (0.6, 0.4), 0.12
        result = radius_query(overlay, center, radius)
        expected = sorted(oid for oid in overlay.object_ids()
                          if distance(overlay.position_of(oid), center) <= radius)
        assert result.matches == expected

    def test_zero_radius(self, overlay):
        result = radius_query(overlay, (0.5, 0.5), 0.0)
        assert result.matches == [] or len(result.matches) <= 1

    def test_negative_radius_raises(self, overlay):
        with pytest.raises(ValueError):
            radius_query(overlay, (0.5, 0.5), -0.1)

    def test_radius_covering_everything(self, overlay):
        result = radius_query(overlay, (0.5, 0.5), 1.0)
        assert result.matches == sorted(overlay.object_ids())


class TestSegmentQuery:
    def test_segment_owners_are_crossed_regions(self, overlay):
        """Every object whose region contains a sample of the segment must be
        among the matches."""
        a, b = (0.1, 0.45), (0.9, 0.45)
        result = segment_query(overlay, a, b)
        for t in np.linspace(0.0, 1.0, 60):
            sample = (a[0] + t * (b[0] - a[0]), a[1] + t * (b[1] - a[1]))
            assert overlay.owner_of(sample) in result.matches

    def test_short_segment_few_matches(self, overlay):
        result = segment_query(overlay, (0.5, 0.5), (0.52, 0.5))
        assert 1 <= len(result.matches) <= 12

    def test_start_parameter_respected(self, overlay):
        start = overlay.object_ids()[0]
        result = segment_query(overlay, (0.2, 0.2), (0.3, 0.2), start=start)
        assert result.route.source == start

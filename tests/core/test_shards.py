"""Tests of the Morton-sharded node store and its per-shard epochs.

Four layers:

* unit tests of :class:`ShardedNodeStore` (Morton codes, swap-remove,
  locators, epoch bump semantics, range partitioning);
* **sharded vs flat equivalence** — twin overlays differing only in
  ``shard_level`` answer byte-identically (owners, hops, views) through
  churn: sharding changes *when tables rebuild*, never what they contain;
* **per-shard invalidation** — churn inside one shard leaves warm tables
  of a distant shard untouched (``routing_table_rebuilds`` stays flat),
  while the flat-store baseline rebuilds all of them;
* a Hypothesis suite hammering shard-*boundary* inserts/removes (points
  on and around the 2^level grid lines, where clamping and code
  assignment could disagree).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import VoroNet, VoroNetConfig
from repro.core.shards import MAX_SHARD_LEVEL, ShardedNodeStore, morton_shard_codes


class TestMortonCodes:
    def test_level_zero_is_single_shard(self):
        store = ShardedNodeStore(0)
        assert store.num_shards == 1
        assert store.shard_of_point(0.0, 0.0) == 0
        assert store.shard_of_point(1.0, 1.0) == 0
        points = np.random.default_rng(1).random((50, 2))
        assert np.all(morton_shard_codes(points, 0) == 0)

    def test_z_order_of_level_one_quadrants(self):
        store = ShardedNodeStore(1)
        # Z-order: (x<.5,y<.5)=0, (x>=.5,y<.5)=1, (x<.5,y>=.5)=2, else 3.
        assert store.shard_of_point(0.1, 0.1) == 0
        assert store.shard_of_point(0.9, 0.1) == 1
        assert store.shard_of_point(0.1, 0.9) == 2
        assert store.shard_of_point(0.9, 0.9) == 3

    @pytest.mark.parametrize("level", [1, 2, 4, 7, MAX_SHARD_LEVEL])
    def test_vectorised_codes_match_scalar(self, level):
        store = ShardedNodeStore(level)
        rng = np.random.default_rng(level)
        points = rng.random((500, 2))
        codes = morton_shard_codes(points, level)
        assert codes.min() >= 0 and codes.max() < store.num_shards
        for point, code in zip(points, codes):
            assert store.shard_of_point(point[0], point[1]) == code

    def test_boundary_points_clamp_into_grid(self):
        level = 3
        store = ShardedNodeStore(level)
        side = 1 << level
        edges = [0.0, 1.0, 1.0 / side, 0.5, (side - 1) / side]
        points = np.array([(x, y) for x in edges for y in edges])
        codes = morton_shard_codes(points, level)
        assert codes.min() >= 0 and codes.max() < store.num_shards
        for point, code in zip(points, codes):
            assert store.shard_of_point(point[0], point[1]) == code

    def test_invalid_level_rejected(self):
        with pytest.raises(ValueError):
            ShardedNodeStore(-1)
        with pytest.raises(ValueError):
            ShardedNodeStore(MAX_SHARD_LEVEL + 1)


class TestStoreMembership:
    def test_insert_discard_roundtrip(self):
        store = ShardedNodeStore(2)
        shard = store.insert(7, (0.1, 0.1))
        assert 7 in store and len(store) == 1
        assert store.shard_of(7) == shard == store.shard_of_point(0.1, 0.1)
        assert store.discard(7) == shard
        assert 7 not in store and len(store) == 0
        assert store.discard(7) is None

    def test_duplicate_insert_rejected(self):
        store = ShardedNodeStore(1)
        store.insert(1, (0.2, 0.2))
        with pytest.raises(ValueError):
            store.insert(1, (0.8, 0.8))

    def test_swap_remove_keeps_locators_valid(self):
        store = ShardedNodeStore(1)
        # Five objects in the same quadrant: removing from the middle
        # swap-moves the last slot and must re-point its locator.
        for object_id in range(5):
            store.insert(object_id, (0.1 + 0.01 * object_id, 0.1))
        store.discard(1)
        assert 1 not in store
        for object_id in (0, 2, 3, 4):
            shard = store.shard_of(object_id)
            slot_ids = store.shard_ids(shard)
            assert object_id in set(slot_ids.tolist())
        positions = store.shard_positions(store.shard_of_point(0.1, 0.1))
        assert positions.shape == (4, 2)

    def test_bulk_insert_matches_sequential(self):
        rng = np.random.default_rng(3)
        points = rng.random((200, 2))
        bulk = ShardedNodeStore(3)
        bulk.bulk_insert(list(range(200)), points)
        sequential = ShardedNodeStore(3)
        for object_id, point in enumerate(points):
            sequential.insert(object_id, tuple(point))
        assert len(bulk) == len(sequential) == 200
        for object_id in range(200):
            assert bulk.shard_of(object_id) == sequential.shard_of(object_id)
        assert bulk.occupancies() == sequential.occupancies()

    def test_shard_blocks_align_ids_and_positions(self):
        store = ShardedNodeStore(2)
        rng = np.random.default_rng(4)
        points = rng.random((64, 2))
        store.bulk_insert(list(range(100, 164)), points)
        for shard in range(store.num_shards):
            ids = store.shard_ids(shard)
            positions = store.shard_positions(shard)
            assert len(ids) == len(positions) == store.shard_count(shard)
            for object_id, position in zip(ids.tolist(), positions):
                assert tuple(position) == tuple(points[object_id - 100])


class TestEpochSemantics:
    def test_epoch_list_is_mutated_in_place(self):
        """Hot loops hoist `store.epochs` once; bumps must stay visible."""
        store = ShardedNodeStore(2)
        hoisted = store.epochs
        store.insert(1, (0.1, 0.1))
        store.bump_object_ids([1])
        assert hoisted is store.epochs
        assert hoisted[store.shard_of(1)] == 1
        store.bump_all()
        assert hoisted is store.epochs
        assert all(epoch >= 1 for epoch in hoisted)

    def test_targeted_bump_touches_only_holding_shards(self):
        store = ShardedNodeStore(1)
        store.insert(1, (0.1, 0.1))  # shard 0
        store.insert(2, (0.9, 0.9))  # shard 3
        assert store.bump_object_ids([1]) == 1
        assert store.epochs == [1, 0, 0, 0]
        # Absent ids are skipped; present ones bump their shard once each.
        assert store.bump_object_ids([2, 2, 99]) == 1
        assert store.epochs == [1, 0, 0, 1]

    def test_bump_all_touches_every_shard(self):
        store = ShardedNodeStore(1)
        store.bump_all()
        assert store.epochs == [1, 1, 1, 1]


class TestRangePartitioning:
    def test_ranges_cover_curve_and_balance_population(self):
        store = ShardedNodeStore(3)
        rng = np.random.default_rng(5)
        store.bulk_insert(list(range(1000)), rng.random((1000, 2)))
        ranges = store.shard_ranges(4)
        assert ranges[0][0] == 0 and ranges[-1][1] == store.num_shards
        for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
            assert hi == lo  # contiguous, disjoint
        counts = [len(store.ids_in_range(lo, hi)) for lo, hi in ranges]
        assert sum(counts) == 1000
        assert max(counts) <= 2 * min(counts) + store.num_shards

    def test_single_part_is_whole_curve(self):
        store = ShardedNodeStore(2)
        store.insert(1, (0.5, 0.5))
        assert store.shard_ranges(1) == [(0, store.num_shards)]
        with pytest.raises(ValueError):
            store.shard_ranges(0)


def _twin_overlays(seed=3100, n_max=4096, shard_level=3):
    """Two overlays differing only in shard level (sharded vs flat)."""
    overlays = []
    for level in (shard_level, 0):
        overlays.append(VoroNet(VoroNetConfig(
            n_max=n_max, num_long_links=1, seed=seed, shard_level=level)))
    return overlays


class TestShardedFlatEquivalence:
    def test_answers_identical_through_churn(self):
        """Owners, hops and views stay byte-identical between the sharded
        store and the flat baseline through bulk load + churn bursts."""
        sharded, flat = _twin_overlays()
        assert sharded.shard_store.num_shards == 64
        assert flat.shard_store.num_shards == 1
        pool = np.random.default_rng(31)
        batch = [tuple(p) for p in pool.random((300, 2))]
        sharded.bulk_load(batch)
        flat.bulk_load(batch)

        probe = np.random.default_rng(32)
        for _ in range(2):
            ids = sharded.object_ids()
            for object_id in probe.choice(ids, size=20, replace=False):
                sharded.remove(int(object_id))
                flat.remove(int(object_id))
            for point in pool.random((20, 2)):
                sharded.insert(tuple(point))
                flat.insert(tuple(point))

            assert sharded.object_ids() == flat.object_ids()
            ids = sharded.object_ids()
            for object_id in probe.choice(ids, size=25, replace=False):
                view_s = sharded.neighbor_view(int(object_id))
                view_f = flat.neighbor_view(int(object_id))
                assert view_s == view_f
            for point in probe.random((25, 2)):
                point = tuple(point)
                assert sharded.owner_of(point) == flat.owner_of(point)
                lookup_s = sharded.lookup(point)
                lookup_f = flat.lookup(point)
                assert (lookup_s.owner, lookup_s.hops) == \
                    (lookup_f.owner, lookup_f.hops)
            for a, b in [probe.choice(ids, size=2, replace=False)
                         for _ in range(25)]:
                route_s = sharded.route(int(a), int(b))
                route_f = flat.route(int(a), int(b))
                assert (route_s.owner, route_s.hops) == \
                    (route_f.owner, route_f.hops)

        assert sharded.check_consistency() == []
        assert flat.check_consistency() == []

    def test_store_tracks_membership_through_churn(self):
        overlay = VoroNet(VoroNetConfig(n_max=1024, seed=33, shard_level=2))
        ids = overlay.bulk_load(
            [tuple(p) for p in np.random.default_rng(33).random((80, 2))])
        store = overlay.shard_store
        assert len(store) == len(overlay)
        for object_id in ids[:10]:
            overlay.remove(object_id)
            assert object_id not in store
        assert len(store) == len(overlay)
        for object_id in overlay.object_ids():
            assert store.shard_of(object_id) == store.shard_of_point(
                *overlay.position_of(object_id))


def _corner_overlay(shard_level):
    """Filler grid plus dense corner clusters A (0.1,0.1) and B (0.9,0.9).

    The filler keeps Delaunay adjacency local, so churn inside cluster A
    cannot touch cluster B's forwarding candidates; ``num_long_links=0``
    removes the one link type whose invalidation legitimately crosses the
    square.
    """
    overlay = VoroNet(VoroNetConfig(
        n_max=4096, num_long_links=0, seed=77, shard_level=shard_level))
    filler = [((i + 0.5) / 12, (j + 0.5) / 12)
              for i in range(12) for j in range(12)]
    rng = np.random.default_rng(77)
    cluster_a = [(0.08 + 0.04 * x, 0.08 + 0.04 * y) for x, y in rng.random((15, 2))]
    cluster_b = [(0.88 + 0.04 * x, 0.88 + 0.04 * y) for x, y in rng.random((15, 2))]
    overlay.bulk_load(filler + cluster_a)
    b_ids = overlay.bulk_load(cluster_b)
    return overlay, b_ids


class TestPerShardInvalidation:
    def test_churn_in_one_shard_leaves_distant_tables_warm(self):
        overlay, b_ids = _corner_overlay(shard_level=2)
        for object_id in b_ids:
            overlay.routing_table(object_id)
        # Insert + remove inside cluster A, far from every B shard.  (The
        # join itself may build tables along its route, so the counter is
        # read after the churn: only re-request rebuilds are measured.)
        victim = overlay.insert((0.1, 0.12))
        overlay.remove(victim)
        before = overlay.stats.routing_table_rebuilds
        for object_id in b_ids:
            overlay.routing_table(object_id)
        assert overlay.stats.routing_table_rebuilds == before

    def test_flat_baseline_rebuilds_everything(self):
        overlay, b_ids = _corner_overlay(shard_level=0)
        for object_id in b_ids:
            overlay.routing_table(object_id)
        victim = overlay.insert((0.1, 0.12))
        overlay.remove(victim)
        before = overlay.stats.routing_table_rebuilds
        for object_id in b_ids:
            overlay.routing_table(object_id)
        # The global epoch invalidated every warm table.
        assert overlay.stats.routing_table_rebuilds == before + len(b_ids)

    def test_churn_inside_shard_does_invalidate_it(self):
        """Sanity check that the targeted bump is not simply never firing:
        churn next to cluster B must rebuild B's tables."""
        overlay, b_ids = _corner_overlay(shard_level=2)
        for object_id in b_ids:
            overlay.routing_table(object_id)
        victim = overlay.insert((0.9, 0.91))
        overlay.remove(victim)
        before = overlay.stats.routing_table_rebuilds
        for object_id in b_ids:
            overlay.routing_table(object_id)
        assert overlay.stats.routing_table_rebuilds > before


#: Coordinates on and around level-3 shard boundaries (grid pitch 1/8),
#: including the square's edges and exact grid lines.
_boundary_coord = st.one_of(
    st.sampled_from([0.0, 1.0, 0.125, 0.25, 0.5, 0.875]),
    st.builds(lambda k, e: min(max(k / 8 + e, 0.0), 1.0),
              st.integers(min_value=0, max_value=8),
              st.floats(min_value=-1e-9, max_value=1e-9)),
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)


class TestShardBoundaryHypothesis:
    @settings(max_examples=40, deadline=None)
    @given(points=st.lists(st.tuples(_boundary_coord, _boundary_coord),
                           min_size=1, max_size=40, unique=True),
           removals=st.lists(st.integers(min_value=0), max_size=20))
    def test_store_consistent_under_boundary_churn(self, points, removals):
        store = ShardedNodeStore(3)
        for object_id, point in enumerate(points):
            shard = store.insert(object_id, point)
            assert shard == store.shard_of_point(point[0], point[1])
        alive = dict(enumerate(points))
        for token in removals:
            if not alive:
                break
            object_id = sorted(alive)[token % len(alive)]
            assert store.discard(object_id) is not None
            del alive[object_id]
        assert len(store) == len(alive)
        for object_id, point in alive.items():
            assert store.shard_of(object_id) == \
                store.shard_of_point(point[0], point[1])
        total = sum(store.shard_count(s) for s in range(store.num_shards))
        assert total == len(alive)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_overlay_boundary_inserts_keep_store_in_sync(self, seed):
        """Overlay-level churn with positions snapped near shard lines."""
        rng = np.random.default_rng(seed)
        snapped = np.round(rng.random((24, 2)) * 8) / 8
        jitter = (rng.random((24, 2)) - 0.5) * 1e-6
        points = np.clip(snapped + jitter, 0.0, 1.0)
        overlay = VoroNet(VoroNetConfig(
            n_max=2048, seed=seed, shard_level=3, num_long_links=1))
        ids = []
        for point in points:
            ids.append(overlay.insert(tuple(point)))
        for object_id in ids[: len(ids) // 2]:
            overlay.remove(object_id)
        assert overlay.check_consistency() == []
        store = overlay.shard_store
        assert len(store) == len(overlay)
        for object_id in overlay.object_ids():
            assert store.shard_of(object_id) == store.shard_of_point(
                *overlay.position_of(object_id))

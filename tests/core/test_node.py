"""Unit tests for per-object state (ObjectNode, LongLink, BackLink)."""

import pytest

from repro.core.node import BackLink, LongLink, ObjectNode


@pytest.fixture
def node():
    return ObjectNode(object_id=7, position=(0.4, 0.6))


class TestLongLinks:
    def test_set_long_link(self, node):
        node.set_long_link(0, target=(0.9, 0.9), neighbor=3)
        assert node.long_links[0].target == (0.9, 0.9)
        assert node.long_link_neighbors() == [3]

    def test_set_long_link_extends_list(self, node):
        node.set_long_link(2, target=(0.1, 0.1), neighbor=5)
        assert len(node.long_links) == 3
        assert node.long_links[2].neighbor == 5

    def test_retarget_long_link(self, node):
        node.set_long_link(0, target=(0.9, 0.9), neighbor=3)
        node.retarget_long_link(0, 11)
        assert node.long_links[0].neighbor == 11
        assert node.long_links[0].target == (0.9, 0.9)

    def test_long_link_as_tuple(self):
        link = LongLink(target=(0.2, 0.3), neighbor=4)
        assert link.as_tuple() == ((0.2, 0.3), 4)


class TestBackLinks:
    def test_add_and_remove(self, node):
        node.add_back_link(source=3, link_index=0, target=(0.5, 0.5))
        assert node.back_link_sources() == {3}
        node.remove_back_link(3, 0)
        assert node.back_link_sources() == set()

    def test_remove_only_matching_index(self, node):
        node.add_back_link(3, 0, (0.5, 0.5))
        node.add_back_link(3, 1, (0.6, 0.6))
        node.remove_back_link(3, 0)
        assert len(node.back_links) == 1

    def test_remove_missing_is_noop(self, node):
        node.remove_back_link(99, 0)
        assert node.back_links == set()

    def test_back_link_is_hashable_value_object(self):
        a = BackLink(source=1, link_index=0, target=(0.1, 0.2))
        b = BackLink(source=1, link_index=0, target=(0.1, 0.2))
        assert a == b
        assert len({a, b}) == 1


class TestCloseNeighbors:
    def test_add_close_neighbor(self, node):
        node.add_close_neighbor(12)
        assert node.close_neighbors == {12}

    def test_add_self_is_ignored(self, node):
        node.add_close_neighbor(7)
        assert node.close_neighbors == set()

    def test_discard_close_neighbor(self, node):
        node.add_close_neighbor(12)
        node.discard_close_neighbor(12)
        node.discard_close_neighbor(99)  # absent: no error
        assert node.close_neighbors == set()


class TestViewSize:
    def test_view_size_counts_everything(self, node):
        node.set_long_link(0, (0.9, 0.9), 3)
        node.add_back_link(4, 0, (0.2, 0.2))
        node.add_close_neighbor(5)
        assert node.view_size(voronoi_neighbor_count=6) == 6 + 1 + 1 + 1

    def test_view_size_empty(self, node):
        assert node.view_size(voronoi_neighbor_count=0) == 0

"""Unit tests for VoroNetConfig."""

import math

import pytest

from repro.core.config import DEFAULT_N_MAX, VoroNetConfig


class TestDefaults:
    def test_default_values(self):
        config = VoroNetConfig()
        assert config.n_max == DEFAULT_N_MAX
        assert config.num_long_links == 1
        assert config.maintain_close_neighbors
        assert config.maintain_back_links
        assert not config.allow_overflow

    def test_effective_d_min_formula(self):
        config = VoroNetConfig(n_max=10_000)
        assert config.effective_d_min == pytest.approx(1.0 / math.sqrt(math.pi * 10_000))

    def test_explicit_d_min_wins(self):
        config = VoroNetConfig(n_max=10_000, d_min=0.05)
        assert config.effective_d_min == 0.05

    def test_d_min_shrinks_with_n_max(self):
        small = VoroNetConfig(n_max=100).effective_d_min
        large = VoroNetConfig(n_max=100_000).effective_d_min
        assert large < small

    def test_long_link_normalization(self):
        config = VoroNetConfig(n_max=1000)
        expected = 2 * math.pi * math.log(math.sqrt(2) / config.effective_d_min)
        assert config.long_link_normalization == pytest.approx(expected)

    def test_expected_route_bound(self):
        config = VoroNetConfig(n_max=1000)
        assert config.expected_route_bound() == pytest.approx(math.log(1000) ** 2)
        assert config.expected_route_bound(alpha=2.0) == pytest.approx(
            2 * math.log(1000) ** 2)


class TestValidation:
    @pytest.mark.parametrize("n_max", [0, -1])
    def test_invalid_n_max(self, n_max):
        with pytest.raises(ValueError):
            VoroNetConfig(n_max=n_max)

    def test_invalid_num_long_links(self):
        with pytest.raises(ValueError):
            VoroNetConfig(num_long_links=-1)

    @pytest.mark.parametrize("d_min", [0.0, -0.1, 2.0])
    def test_invalid_d_min(self, d_min):
        with pytest.raises(ValueError):
            VoroNetConfig(d_min=d_min)

    def test_zero_long_links_allowed(self):
        assert VoroNetConfig(num_long_links=0).num_long_links == 0

    def test_frozen(self):
        config = VoroNetConfig()
        with pytest.raises(Exception):
            config.n_max = 5  # type: ignore[misc]


class TestWithUpdates:
    def test_with_updates_changes_field(self):
        config = VoroNetConfig(n_max=500)
        updated = config.with_updates(num_long_links=4)
        assert updated.num_long_links == 4
        assert updated.n_max == 500
        assert config.num_long_links == 1

    def test_with_updates_validates(self):
        with pytest.raises(ValueError):
            VoroNetConfig().with_updates(n_max=-5)

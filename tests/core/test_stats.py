"""Unit tests for operation statistics."""


from repro.core.stats import OperationStats, OverlayStats


class TestOperationStats:
    def test_empty_stats(self):
        stats = OperationStats()
        assert stats.count == 0
        assert stats.mean_hops == 0.0
        assert stats.mean_messages == 0.0

    def test_record_accumulates(self):
        stats = OperationStats()
        stats.record(hops=3, messages=10)
        stats.record(hops=5, messages=20)
        assert stats.count == 2
        assert stats.mean_hops == 4.0
        assert stats.mean_messages == 15.0
        assert stats.max_hops == 5
        assert stats.max_messages == 20

    def test_as_dict_keys(self):
        stats = OperationStats()
        stats.record(1, 2)
        d = stats.as_dict()
        assert set(d) == {"count", "mean_hops", "max_hops", "mean_messages",
                          "max_messages"}


class TestOverlayStats:
    def test_groups_present(self):
        stats = OverlayStats()
        assert set(stats.as_dict()) == {
            "joins", "leaves", "routes", "queries", "long_link_searches",
            "routing_table_rebuilds", "operation_timeouts",
            "operation_retries", "query_misses"}

    def test_reset(self):
        stats = OverlayStats()
        stats.joins.record(3, 5)
        stats.routing_table_rebuilds = 7
        stats.operation_timeouts = 2
        stats.operation_retries = 1
        stats.reset()
        assert stats.joins.count == 0
        assert stats.routing_table_rebuilds == 0
        assert stats.operation_timeouts == 0
        assert stats.operation_retries == 0

    def test_describe_is_human_readable(self):
        stats = OverlayStats()
        stats.routes.record(7, 7)
        lines = stats.describe()
        assert len(lines) == 9
        assert any("routes" in line for line in lines)
        assert any("routing_table_rebuilds" in line for line in lines)

"""Property-based tests for overlay invariants under arbitrary operation mixes."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import VoroNet, VoroNetConfig
from repro.core.maintenance import view_consistency_report
from repro.core.routing import route_to_object
from repro.geometry.point import distance

# Operations: True = join at a pseudo-random position, False = leave a random member.
operations = st.lists(st.booleans(), min_size=4, max_size=60)
seeds = st.integers(min_value=0, max_value=2**16)


def run_operations(ops, seed):
    """Apply a join/leave sequence and return the overlay."""
    rng = np.random.default_rng(seed)
    overlay = VoroNet(VoroNetConfig(n_max=256, seed=seed))
    alive = []
    for is_join in ops:
        if is_join or len(alive) <= 2:
            oid = overlay.insert(tuple(rng.random(2)))
            alive.append(oid)
        else:
            victim = alive.pop(int(rng.integers(len(alive))))
            overlay.remove(victim)
    return overlay, rng


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(operations, seeds)
def test_views_stay_consistent_under_churn(ops, seed):
    """All cross-object invariants hold after any join/leave sequence."""
    overlay, _ = run_operations(ops, seed)
    assert view_consistency_report(overlay) == []
    assert overlay.check_consistency() == []


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(operations, seeds)
def test_routing_always_reaches_destination(ops, seed):
    """Greedy routing between any two live objects terminates at the destination."""
    overlay, rng = run_operations(ops, seed)
    ids = overlay.object_ids()
    if len(ids) < 2:
        return
    for _ in range(5):
        a, b = rng.choice(ids, size=2, replace=False)
        result = route_to_object(overlay, int(a), int(b))
        assert result.success
        assert result.owner == int(b)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(operations, seeds)
def test_ownership_matches_nearest_object(ops, seed):
    """owner_of(p) is always the object closest to p."""
    overlay, rng = run_operations(ops, seed)
    ids = overlay.object_ids()
    for _ in range(5):
        point = tuple(rng.random(2))
        owner = overlay.owner_of(point)
        nearest = min(ids, key=lambda i: distance(overlay.position_of(i), point))
        assert abs(distance(overlay.position_of(owner), point)
                   - distance(overlay.position_of(nearest), point)) < 1e-12


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(operations, seeds)
def test_voronoi_degree_structure(ops, seed):
    """Degree histogram covers all objects and planarity bounds the mean degree."""
    overlay, _ = run_operations(ops, seed)
    histogram = overlay.degree_histogram()
    assert sum(histogram.values()) == len(overlay)
    if len(overlay) >= 4:
        mean_degree = sum(k * v for k, v in histogram.items()) / len(overlay)
        assert mean_degree < 6.0

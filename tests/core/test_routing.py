"""Unit tests for greedy routing."""


import numpy as np
import pytest

from repro.core import VoroNet, VoroNetConfig
from repro.core.errors import EmptyOverlayError, ObjectNotFoundError
from repro.core.routing import greedy_route, route_to_object, route_with_stopping_rule
from repro.geometry.point import distance


class TestGreedyRoute:
    def test_route_to_own_position_is_zero_hops(self, small_overlay):
        oid = small_overlay.object_ids()[3]
        result = greedy_route(small_overlay, oid, small_overlay.position_of(oid))
        assert result.hops == 0
        assert result.owner == oid

    def test_route_terminates_at_region_owner(self, small_overlay, numpy_rng):
        ids = small_overlay.object_ids()
        for _ in range(40):
            source = int(numpy_rng.choice(ids))
            target = tuple(numpy_rng.random(2))
            result = greedy_route(small_overlay, source, target)
            nearest = min(ids, key=lambda i: distance(small_overlay.position_of(i), target))
            assert distance(small_overlay.position_of(result.owner), target) == \
                pytest.approx(distance(small_overlay.position_of(nearest), target))

    def test_route_between_all_pairs_small(self, tiny_overlay):
        ids = tiny_overlay.object_ids()
        for a in ids:
            for b in ids:
                if a == b:
                    continue
                result = route_to_object(tiny_overlay, a, b)
                assert result.success and result.owner == b

    def test_route_to_object_success_flag(self, small_overlay, numpy_rng):
        ids = small_overlay.object_ids()
        for _ in range(30):
            a, b = numpy_rng.choice(ids, size=2, replace=False)
            result = route_to_object(small_overlay, int(a), int(b))
            assert result.success
            assert result.owner == int(b)
            assert result.final_distance == pytest.approx(0.0)

    def test_empty_overlay_raises(self):
        with pytest.raises(EmptyOverlayError):
            greedy_route(VoroNet(n_max=4, seed=1), 0, (0.5, 0.5))

    def test_unknown_source_raises(self, tiny_overlay):
        with pytest.raises(ObjectNotFoundError):
            greedy_route(tiny_overlay, 999, (0.5, 0.5))

    def test_unknown_destination_raises(self, tiny_overlay):
        with pytest.raises(ObjectNotFoundError):
            route_to_object(tiny_overlay, tiny_overlay.object_ids()[0], 999)

    def test_path_recording_when_enabled(self, numpy_rng):
        overlay = VoroNet(VoroNetConfig(n_max=200, seed=4, track_paths=True))
        ids = [overlay.insert(tuple(p)) for p in numpy_rng.random((80, 2))]
        result = route_to_object(overlay, ids[0], ids[-1])
        assert result.path is not None
        assert result.path[0] == ids[0]
        assert result.path[-1] == ids[-1]
        assert len(result.path) == result.hops + 1

    def test_path_not_recorded_by_default(self, small_overlay):
        ids = small_overlay.object_ids()
        result = route_to_object(small_overlay, ids[0], ids[1])
        assert result.path is None

    def test_path_strictly_approaches_target(self, numpy_rng):
        overlay = VoroNet(VoroNetConfig(n_max=200, seed=4, track_paths=True))
        ids = [overlay.insert(tuple(p)) for p in numpy_rng.random((100, 2))]
        target = overlay.position_of(ids[7])
        result = greedy_route(overlay, ids[50], target)
        distances = [distance(overlay.position_of(oid), target) for oid in result.path]
        assert all(b < a for a, b in zip(distances, distances[1:]))

    def test_messages_equal_hops(self, small_overlay):
        ids = small_overlay.object_ids()
        result = route_to_object(small_overlay, ids[0], ids[5])
        assert result.messages == result.hops


class TestLongLinkEffect:
    def test_long_links_do_not_hurt_routing(self, numpy_rng):
        """With long links enabled the mean hop count must not be worse than
        the Delaunay-only routing on the same overlay."""
        overlay = VoroNet(VoroNetConfig(n_max=600, seed=9))
        ids = [overlay.insert(tuple(p)) for p in numpy_rng.random((400, 2))]
        pairs = [tuple(numpy_rng.choice(ids, size=2, replace=False)) for _ in range(80)]
        with_links = np.mean([
            route_to_object(overlay, int(a), int(b)).hops for a, b in pairs])
        without_links = np.mean([
            route_to_object(overlay, int(a), int(b), use_long_links=False).hops
            for a, b in pairs])
        assert with_links <= without_links

    def test_route_without_long_links_still_succeeds(self, small_overlay, numpy_rng):
        ids = small_overlay.object_ids()
        for _ in range(20):
            a, b = numpy_rng.choice(ids, size=2, replace=False)
            result = route_to_object(small_overlay, int(a), int(b), use_long_links=False)
            assert result.success


class TestStoppingRule:
    def test_stopping_rule_lands_near_target(self, small_overlay, numpy_rng):
        """Algorithm 5's weak termination: the final object's region is within
        1/3 of the remaining distance, or within d_min of the target."""
        ids = small_overlay.object_ids()
        d_min = small_overlay.config.effective_d_min
        for _ in range(20):
            source = int(numpy_rng.choice(ids))
            target = tuple(numpy_rng.random(2))
            result = route_with_stopping_rule(small_overlay, source, target)
            remaining = distance(small_overlay.position_of(result.owner), target)
            region_distance = small_overlay.distance_to_region(result.owner, target)
            assert (remaining <= d_min + 1e-12
                    or region_distance <= remaining / 3.0 + 1e-12)

    def test_stopping_rule_not_longer_than_full_greedy(self, small_overlay, numpy_rng):
        ids = small_overlay.object_ids()
        for _ in range(20):
            source = int(numpy_rng.choice(ids))
            target = tuple(numpy_rng.random(2))
            early = route_with_stopping_rule(small_overlay, source, target)
            full = greedy_route(small_overlay, source, target)
            assert early.hops <= full.hops

    def test_stopping_rule_empty_overlay_raises(self):
        with pytest.raises(EmptyOverlayError):
            route_with_stopping_rule(VoroNet(n_max=4, seed=1), 0, (0.5, 0.5))

    def test_stopping_rule_unknown_source_raises(self, tiny_overlay):
        with pytest.raises(ObjectNotFoundError):
            route_with_stopping_rule(tiny_overlay, 999, (0.5, 0.5))

    def test_stopping_rule_records_path_when_enabled(self, numpy_rng):
        """Regression: the stopping-rule variant must honour track_paths."""
        overlay = VoroNet(VoroNetConfig(n_max=200, seed=4, track_paths=True))
        ids = [overlay.insert(tuple(p)) for p in numpy_rng.random((80, 2))]
        result = route_with_stopping_rule(overlay, ids[0], (0.93, 0.91))
        assert result.path is not None
        assert result.path[0] == ids[0]
        assert result.path[-1] == result.owner
        assert len(result.path) == result.hops + 1


class TestMaxHopsValidation:
    """User-supplied max_hops ≤ 0 must be rejected, not silently explode."""

    @pytest.mark.parametrize("bad_max_hops", [0, -1, -100])
    def test_greedy_route_rejects_non_positive_max_hops(self, tiny_overlay,
                                                        bad_max_hops):
        with pytest.raises(ValueError, match="max_hops"):
            greedy_route(tiny_overlay, tiny_overlay.object_ids()[0],
                         (0.9, 0.9), max_hops=bad_max_hops)

    @pytest.mark.parametrize("bad_max_hops", [0, -1])
    def test_route_to_object_rejects_non_positive_max_hops(self, tiny_overlay,
                                                           bad_max_hops):
        ids = tiny_overlay.object_ids()
        with pytest.raises(ValueError, match="max_hops"):
            route_to_object(tiny_overlay, ids[0], ids[1],
                            max_hops=bad_max_hops)

    @pytest.mark.parametrize("bad_max_hops", [0, -1])
    def test_stopping_rule_rejects_non_positive_max_hops(self, tiny_overlay,
                                                         bad_max_hops):
        with pytest.raises(ValueError, match="max_hops"):
            route_with_stopping_rule(tiny_overlay, tiny_overlay.object_ids()[0],
                                     (0.9, 0.9), max_hops=bad_max_hops)

    def test_positive_max_hops_still_enforced(self, small_overlay):
        """A tight positive cap keeps raising RoutingError as before."""
        from repro.core.errors import RoutingError
        ids = small_overlay.object_ids()
        with pytest.raises(RoutingError):
            # Routing across the overlay needs more than one hop for at
            # least one of these pairs.
            for a in ids[:10]:
                for b in ids[-10:]:
                    if a != b:
                        route_to_object(small_overlay, a, b, max_hops=1)


class TestOverlayRouteAPI:
    def test_route_accepts_object_id(self, small_overlay):
        ids = small_overlay.object_ids()
        result = small_overlay.route(ids[0], ids[1])
        assert result.owner == ids[1]

    def test_route_accepts_point(self, small_overlay):
        ids = small_overlay.object_ids()
        result = small_overlay.route(ids[0], (0.3, 0.3))
        assert result.owner in small_overlay

    def test_route_updates_stats(self, small_overlay):
        before = small_overlay.stats.routes.count
        ids = small_overlay.object_ids()
        small_overlay.route(ids[0], ids[1])
        assert small_overlay.stats.routes.count == before + 1

    def test_lookup_returns_owner(self, small_overlay):
        point = (0.77, 0.22)
        result = small_overlay.lookup(point)
        assert result.owner == small_overlay.owner_of(point)

    def test_lookup_empty_overlay_raises(self):
        with pytest.raises(EmptyOverlayError):
            VoroNet(n_max=4, seed=1).lookup((0.5, 0.5))

    def test_route_accepts_numpy_integer_target(self, small_overlay):
        """Regression: numpy integer ids must route as object ids, not points."""
        ids = small_overlay.object_ids()
        for target in (np.int64(ids[5]), np.int32(ids[5]),
                       np.intp(ids[5]), np.uint16(ids[5])):
            result = small_overlay.route(ids[0], target)
            assert result.owner == ids[5]
            assert result.success

    def test_route_accepts_id_drawn_from_random_source(self, small_overlay, rng):
        """Ids drawn via RandomSource.integers are numpy scalars, not ints."""
        ids = small_overlay.object_ids()
        target = rng.integers(0, len(ids), 1)[0]  # np.int64, a valid id here
        assert not isinstance(target, int)
        result = small_overlay.route(ids[0], target)
        assert result.owner == int(target)

    def test_route_rejects_bool_target_as_id(self, small_overlay):
        """Booleans are Integral in Python; they must not be treated as ids."""
        with pytest.raises(TypeError):
            small_overlay.route(small_overlay.object_ids()[0], True)

"""Bulk construction: structural equivalence with sequential joins.

The property at the heart of :meth:`VoroNet.bulk_load`: for any batch of
positions, the bulk fast path and ``N`` sequential routed joins produce the
same Voronoi adjacency (cross-checked against scipy) and the same
close-neighbour sets, and hinted point location agrees with unhinted
descent everywhere.
"""

import numpy as np
import pytest

from repro.core import VoroNet, VoroNetConfig
from repro.core.errors import DuplicateObjectError, OverlayFullError
from repro.geometry.kdtree import KDTree
from repro.geometry.scipy_backend import adjacency_of, compare_with_scipy
from repro.utils.rng import RandomSource
from repro.workloads.distributions import PowerLawDistribution, UniformDistribution
from repro.workloads.generators import generate_objects


def _pair(count, seed, distribution=None, **config_kwargs):
    """Build the same overlay sequentially and in bulk."""
    distribution = distribution or UniformDistribution()
    positions = generate_objects(distribution, count, RandomSource(seed))
    config = VoroNetConfig(n_max=4 * count, seed=seed, **config_kwargs)
    sequential = VoroNet(config)
    sequential.insert_many(positions)
    bulk = VoroNet(config)
    bulk.bulk_load(positions)
    return sequential, bulk


class TestStructuralEquivalence:
    @pytest.mark.parametrize("count,seed", [(40, 1), (150, 2), (400, 3)])
    def test_same_voronoi_adjacency_and_scipy_agreement(self, count, seed):
        sequential, bulk = _pair(count, seed)
        assert bulk.object_ids() == sequential.object_ids()
        assert adjacency_of(bulk.triangulation) == adjacency_of(sequential.triangulation)
        assert compare_with_scipy(bulk.triangulation) == []

    @pytest.mark.parametrize("count,seed", [(150, 5), (300, 6)])
    def test_same_close_neighbor_sets(self, count, seed):
        sequential, bulk = _pair(count, seed)
        for oid in sequential.object_ids():
            assert bulk.node(oid).close_neighbors == \
                sequential.node(oid).close_neighbors

    def test_skewed_distribution(self):
        sequential, bulk = _pair(200, 7, distribution=PowerLawDistribution(alpha=2.0))
        assert adjacency_of(bulk.triangulation) == adjacency_of(sequential.triangulation)
        for oid in sequential.object_ids():
            assert bulk.node(oid).close_neighbors == \
                sequential.node(oid).close_neighbors

    @pytest.mark.parametrize("count,seed", [(60, 11), (250, 12)])
    def test_bulk_overlay_is_consistent(self, count, seed):
        _, bulk = _pair(count, seed)
        assert bulk.check_consistency() == []

    def test_long_links_per_object_and_ownership(self):
        _, bulk = _pair(120, 13, num_long_links=3)
        for oid in bulk.object_ids():
            links = bulk.node(oid).long_links
            assert len(links) == 3
            for link in links:
                assert bulk.owner_of(link.target) == link.neighbor
        assert bulk.check_consistency() == []


class TestIncrementalBulkLoad:
    def test_bulk_into_populated_overlay_stays_consistent(self):
        positions = generate_objects(UniformDistribution(), 240, RandomSource(21))
        overlay = VoroNet(VoroNetConfig(n_max=1000, seed=21))
        overlay.insert_many(positions[:120])
        ids = overlay.bulk_load(positions[120:])
        assert len(overlay) == 240
        assert ids == list(range(120, 240))
        assert overlay.check_consistency() == []
        assert compare_with_scipy(overlay.triangulation) == []

    def test_existing_long_links_handed_over(self):
        """A bulk-loaded object stealing a long-link target gets the link."""
        positions = generate_objects(UniformDistribution(), 200, RandomSource(23))
        overlay = VoroNet(VoroNetConfig(n_max=800, seed=23))
        overlay.insert_many(positions[:100])
        overlay.bulk_load(positions[100:])
        for oid in overlay.object_ids():
            for link in overlay.node(oid).long_links:
                assert overlay.owner_of(link.target) == link.neighbor


class TestBulkLoadGuards:
    def test_empty_batch(self):
        overlay = VoroNet(n_max=10, seed=1)
        assert overlay.bulk_load([]) == []
        assert len(overlay) == 0

    def test_ids_assigned_in_input_order(self):
        overlay = VoroNet(n_max=10, seed=1)
        assert overlay.bulk_load([(0.1, 0.1), (0.9, 0.9), (0.5, 0.2)]) == [0, 1, 2]

    def test_duplicate_within_batch_rejected_without_partial_state(self):
        overlay = VoroNet(n_max=10, seed=1)
        with pytest.raises(DuplicateObjectError):
            overlay.bulk_load([(0.1, 0.1), (0.5, 0.5), (0.5, 0.5)])
        assert len(overlay) == 0
        assert overlay.bulk_load([(0.1, 0.1), (0.5, 0.5)]) == [0, 1]

    def test_duplicate_of_existing_object_rejected(self):
        overlay = VoroNet(n_max=10, seed=1)
        overlay.insert((0.5, 0.5))
        with pytest.raises(DuplicateObjectError):
            overlay.bulk_load([(0.2, 0.2), (0.5, 0.5)])
        assert len(overlay) == 1

    def test_position_outside_unit_square_rejected(self):
        overlay = VoroNet(n_max=10, seed=1)
        with pytest.raises(ValueError):
            overlay.bulk_load([(0.2, 0.2), (1.4, 0.5)])
        assert len(overlay) == 0

    def test_capacity_enforced_up_front(self):
        overlay = VoroNet(VoroNetConfig(n_max=3, seed=1))
        with pytest.raises(OverlayFullError):
            overlay.bulk_load([(0.1, 0.1), (0.6, 0.2), (0.4, 0.8), (0.5, 0.5)])
        assert len(overlay) == 0

    def test_overflow_allowed_when_configured(self):
        overlay = VoroNet(VoroNetConfig(n_max=2, allow_overflow=True, seed=1))
        overlay.bulk_load([(0.1, 0.1), (0.6, 0.2), (0.4, 0.8)])
        assert len(overlay) == 3

    def test_numpy_array_input(self):
        overlay = VoroNet(n_max=50, seed=1)
        ids = overlay.bulk_load(np.random.default_rng(0).random((20, 2)))
        assert len(ids) == 20
        assert overlay.check_consistency() == []

    def test_join_stats_recorded_with_zero_hops(self):
        overlay = VoroNet(n_max=100, seed=1)
        overlay.bulk_load(np.random.default_rng(1).random((30, 2)))
        assert overlay.stats.joins.count == 30
        assert overlay.stats.joins.mean_hops == 0.0
        assert overlay.stats.joins.mean_messages > 0


class TestHintedPointLocation:
    """Grid-hinted and unhinted location/routing agree everywhere."""

    @pytest.fixture
    def overlay(self):
        positions = generate_objects(UniformDistribution(), 250, RandomSource(31))
        overlay = VoroNet(VoroNetConfig(n_max=1000, seed=31))
        overlay.bulk_load(positions)
        return overlay

    def test_owner_of_matches_unhinted_descent_and_kdtree(self, overlay, numpy_rng):
        ids = overlay.object_ids()
        tree = KDTree([overlay.position_of(oid) for oid in ids])
        for _ in range(60):
            point = tuple(numpy_rng.random(2))
            hinted = overlay.owner_of(point)
            unhinted = overlay.triangulation.nearest_vertex(point, hint=None)
            assert hinted == unhinted == ids[tree.nearest(point)]

    def test_lookup_owner_independent_of_entry_point(self, overlay, numpy_rng):
        starts = overlay.object_ids()[:5]
        for _ in range(20):
            point = tuple(numpy_rng.random(2))
            hinted_owner = overlay.lookup(point).owner  # grid-hinted entry
            for start in starts:
                assert overlay.lookup(point, start=start).owner == hinted_owner

    def test_disabled_locate_index_same_owners(self, numpy_rng):
        positions = generate_objects(UniformDistribution(), 150, RandomSource(33))
        hinted = VoroNet(VoroNetConfig(n_max=600, seed=33))
        hinted.bulk_load(positions)
        unhinted = VoroNet(VoroNetConfig(n_max=600, seed=33,
                                         use_locate_index=False))
        unhinted.bulk_load(positions)
        for _ in range(40):
            point = tuple(numpy_rng.random(2))
            assert hinted.owner_of(point) == unhinted.owner_of(point)
            assert hinted.lookup(point).owner == unhinted.lookup(point).owner

    def test_route_many_matches_individual_routes(self, overlay):
        rng = RandomSource(35)
        ids = overlay.object_ids()
        pairs = [(ids[rng.integer(0, len(ids))], ids[rng.integer(0, len(ids))])
                 for _ in range(30)]
        batched = overlay.route_many(pairs)
        for (source, destination), result in zip(pairs, batched):
            single = overlay.route(source, destination)
            assert result.owner == single.owner
            assert result.hops == single.hops

    def test_lookup_many_matches_owner_of(self, overlay, numpy_rng):
        points = [tuple(p) for p in numpy_rng.random((25, 2))]
        results = overlay.lookup_many(points)
        assert [r.owner for r in results] == [overlay.owner_of(p) for p in points]

    def test_hinted_insert_same_structure_as_random_introducer(self, numpy_rng):
        """insert(hinted=True) carves the same regions, just cheaper joins."""
        points = [tuple(p) for p in numpy_rng.random((80, 2))]
        plain = VoroNet(VoroNetConfig(n_max=320, seed=41))
        hinted = VoroNet(VoroNetConfig(n_max=320, seed=41))
        for p in points:
            plain.insert(p)
            hinted.insert(p, hinted=True)
        assert adjacency_of(hinted.triangulation) == adjacency_of(plain.triangulation)
        for oid in plain.object_ids():
            assert hinted.node(oid).close_neighbors == plain.node(oid).close_neighbors
        assert hinted.check_consistency() == []
        assert hinted.stats.joins.mean_hops <= plain.stats.joins.mean_hops

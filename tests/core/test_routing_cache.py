"""Tests of the epoch-cached flat routing tables.

Three layers of protection for the routing hot path:

* a Hypothesis *stateful* machine interleaving inserts, removes, bulk
  loads and long-link churn, asserting after every step that each cached
  table equals a freshly assembled view (the module-level contract of
  :mod:`repro.core.overlay`);
* a churn stress test at N≈500 keeping ``owner_of`` / ``lookup`` /
  ``route`` answers identical with the cache on vs. off through
  alternating insert/remove/link-reset bursts (locate-grid and table
  invalidation under churn);
* direct parity regressions for ``route`` / ``route_many`` /
  ``lookup_many`` and the Algorithm 5 stopping rule.
"""

import numpy as np
import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.core import VoroNet, VoroNetConfig
from repro.core.errors import DuplicateObjectError
from repro.core.routing import route_with_stopping_rule
from repro.utils.rng import RandomSource
from repro.workloads.generators import generate_routing_pairs


def fresh_routing_sets(overlay, object_id):
    """Ground truth: forwarding candidates assembled from a fresh view."""
    view = overlay.neighbor_view(object_id)
    with_links = view.routing_neighbors
    delaunay_only = set(view.voronoi) | set(view.close)
    delaunay_only.discard(object_id)
    return with_links, delaunay_only


def assert_tables_match_views(overlay):
    """Every cached table equals the freshly assembled view of its object."""
    for object_id in overlay.object_ids():
        with_links, delaunay_only = fresh_routing_sets(overlay, object_id)
        for use_long_links, expected in ((True, with_links),
                                         (False, delaunay_only)):
            ids, positions = overlay.routing_table(object_id, use_long_links)
            assert set(int(i) for i in ids) == expected
            assert positions.shape == (len(ids), 2)
            for row, candidate in enumerate(ids):
                assert tuple(positions[row]) == \
                    overlay.position_of(int(candidate))


class RoutingCacheMachine(RuleBasedStateMachine):
    """Arbitrary interleavings of topology mutations never leave a cached
    routing table out of sync with the fresh ``NeighborView``."""

    def __init__(self):
        super().__init__()
        self.overlay = VoroNet(VoroNetConfig(
            n_max=64, allow_overflow=True, num_long_links=2, seed=1202))
        self.last_epoch = self.overlay.topology_epoch

    def _pick(self, token):
        ids = self.overlay.object_ids()
        return ids[token % len(ids)]

    @rule(x=st.floats(0.01, 0.99), y=st.floats(0.01, 0.99))
    def insert_object(self, x, y):
        try:
            self.overlay.insert((x, y))
        except DuplicateObjectError:
            pass

    @rule(xs=st.lists(st.tuples(st.floats(0.01, 0.99), st.floats(0.01, 0.99)),
                      min_size=1, max_size=4))
    def bulk_load_batch(self, xs):
        try:
            self.overlay.bulk_load(xs)
        except DuplicateObjectError:
            pass

    @precondition(lambda self: len(self.overlay) > 1)
    @rule(token=st.integers(min_value=0))
    def remove_object(self, token):
        self.overlay.remove(self._pick(token))

    @precondition(lambda self: len(self.overlay) > 0)
    @rule(token=st.integers(min_value=0))
    def churn_long_links(self, token):
        self.overlay.reset_long_links(self._pick(token))

    @invariant()
    def epoch_is_monotone(self):
        epoch = self.overlay.topology_epoch
        assert epoch >= self.last_epoch
        self.last_epoch = epoch

    @invariant()
    def tables_equal_fresh_views(self):
        assert_tables_match_views(self.overlay)


TestRoutingCacheStateful = RoutingCacheMachine.TestCase
TestRoutingCacheStateful.settings = settings(
    max_examples=15, stateful_step_count=25, deadline=None)


def _twin_overlays(num_long_links=1, seed=2024, n_max=2000):
    """Two structurally identical overlays, one cached, one not.

    Both consume their internal RNGs in the same order for the same
    operation sequence, so their structures stay byte-identical and any
    divergence in answers is the cache's fault.
    """
    overlays = []
    for use_cache in (True, False):
        overlays.append(VoroNet(VoroNetConfig(
            n_max=n_max, num_long_links=num_long_links, seed=seed,
            use_routing_cache=use_cache)))
    return overlays


class TestChurnStress:
    def test_churn_bursts_keep_answers_identical(self):
        """Alternating insert/remove/link-churn bursts at N≈500: owner_of,
        lookup and route answer identically with the cache on vs. off, and
        the locate grid stays exactly in sync."""
        cached, uncached = _twin_overlays(seed=501)
        pool = np.random.default_rng(501)
        batch = [tuple(p) for p in pool.random((500, 2))]
        cached.bulk_load(batch)
        uncached.bulk_load(batch)

        probe_rng = np.random.default_rng(777)
        for burst in range(3):
            # Removal burst: the same ids leave both overlays.
            ids = cached.object_ids()
            doomed = probe_rng.choice(ids, size=40, replace=False)
            for object_id in doomed:
                cached.remove(int(object_id))
                uncached.remove(int(object_id))
            # Insert burst (routed joins; both overlays draw identically).
            for point in pool.random((40, 2)):
                cached.insert(tuple(point))
                uncached.insert(tuple(point))
            # Long-link churn burst.
            ids = cached.object_ids()
            for object_id in probe_rng.choice(ids, size=10, replace=False):
                cached.reset_long_links(int(object_id))
                uncached.reset_long_links(int(object_id))

            # The two overlays must still be structurally identical …
            assert cached.object_ids() == uncached.object_ids()
            # … the locate grid exactly in sync with the membership …
            assert set(cached.object_ids()) == {
                oid for oid in cached.object_ids()
                if oid in cached.locate_index}
            assert len(cached.locate_index) == len(cached)
            # … and every answer identical, cache on vs. off.
            ids = cached.object_ids()
            for point in probe_rng.random((30, 2)):
                point = tuple(point)
                assert cached.owner_of(point) == uncached.owner_of(point)
                lookup_c = cached.lookup(point)
                lookup_u = uncached.lookup(point)
                assert lookup_c.owner == lookup_u.owner
                assert lookup_c.hops == lookup_u.hops
            for a, b in [probe_rng.choice(ids, size=2, replace=False)
                         for _ in range(30)]:
                route_c = cached.route(int(a), int(b))
                route_u = uncached.route(int(a), int(b))
                assert route_c.owner == route_u.owner
                assert route_c.hops == route_u.hops

        assert cached.check_consistency() == []
        assert_tables_match_views(cached)


class TestCacheParity:
    @pytest.fixture(scope="class")
    def twins(self):
        cached, uncached = _twin_overlays(num_long_links=2, seed=88)
        pool = np.random.default_rng(88)
        for point in pool.random((150, 2)):
            cached.insert(tuple(point))
            uncached.insert(tuple(point))
        return cached, uncached

    @pytest.mark.parametrize("use_long_links", [True, False])
    def test_route_parity(self, twins, use_long_links):
        cached, uncached = twins
        ids = cached.object_ids()
        rng = np.random.default_rng(5)
        for a, b in [rng.choice(ids, size=2, replace=False) for _ in range(40)]:
            route_c = cached.route(int(a), int(b), use_long_links=use_long_links)
            route_u = uncached.route(int(a), int(b), use_long_links=use_long_links)
            assert route_c.owner == route_u.owner
            assert route_c.hops == route_u.hops

    @pytest.mark.parametrize("use_long_links", [True, False])
    def test_route_many_parity(self, twins, use_long_links):
        cached, uncached = twins
        pairs = list(generate_routing_pairs(
            cached.object_ids(), 60, RandomSource(6)))
        results_c = cached.route_many(pairs, use_long_links=use_long_links)
        results_u = uncached.route_many(pairs, use_long_links=use_long_links)
        assert [(r.owner, r.hops) for r in results_c] == \
            [(r.owner, r.hops) for r in results_u]

    def test_lookup_many_parity(self, twins):
        cached, uncached = twins
        points = [tuple(p) for p in np.random.default_rng(7).random((60, 2))]
        results_c = cached.lookup_many(points)
        results_u = uncached.lookup_many(points)
        assert [(r.owner, r.hops) for r in results_c] == \
            [(r.owner, r.hops) for r in results_u]

    def test_stopping_rule_parity(self, twins):
        """The Algorithm 5 stopping rule fires at the same hop either way."""
        cached, uncached = twins
        ids = cached.object_ids()
        rng = np.random.default_rng(8)
        for _ in range(40):
            source = int(rng.choice(ids))
            target = tuple(rng.random(2))
            early_c = route_with_stopping_rule(cached, source, target)
            early_u = route_with_stopping_rule(uncached, source, target)
            assert early_c.owner == early_u.owner
            assert early_c.hops == early_u.hops


class TestEpochContract:
    def test_epoch_bumps_on_every_mutation_kind(self):
        overlay = VoroNet(VoroNetConfig(n_max=64, seed=9))
        epoch = overlay.topology_epoch
        a = overlay.insert((0.2, 0.2))
        assert overlay.topology_epoch > epoch

        epoch = overlay.topology_epoch
        overlay.bulk_load([(0.7, 0.3), (0.4, 0.8), (0.6, 0.6)])
        assert overlay.topology_epoch > epoch

        epoch = overlay.topology_epoch
        overlay.reset_long_links(a)
        assert overlay.topology_epoch > epoch

        epoch = overlay.topology_epoch
        overlay.remove(a)
        assert overlay.topology_epoch > epoch

        epoch = overlay.topology_epoch
        overlay.invalidate_routing_tables()
        assert overlay.topology_epoch == epoch + 1

    def test_stale_table_rebuilt_after_direct_view_mutation(self):
        """External node mutations must call invalidate_routing_tables —
        after which the table reflects the new state."""
        overlay = VoroNet(VoroNetConfig(n_max=64, seed=10))
        ids = overlay.bulk_load([(0.1, 0.1), (0.9, 0.1), (0.5, 0.9), (0.5, 0.4)])
        overlay.routing_table(ids[0])  # warm the cache
        overlay.node(ids[0]).add_close_neighbor(ids[2])
        overlay.node(ids[2]).add_close_neighbor(ids[0])
        overlay.invalidate_routing_tables()
        table_ids, _ = overlay.routing_table(ids[0])
        assert ids[2] in set(int(i) for i in table_ids)

    def test_removed_object_leaves_no_table_behind(self):
        overlay = VoroNet(VoroNetConfig(n_max=64, seed=11))
        ids = overlay.bulk_load([(0.1, 0.1), (0.9, 0.1), (0.5, 0.9), (0.5, 0.4)])
        for object_id in ids:
            overlay.routing_table(object_id)
        overlay.remove(ids[0])
        assert not any(ids[0] in variant
                       for variant in overlay._routing_tables.values())
        assert_tables_match_views(overlay)

    def test_cache_disabled_stores_nothing(self):
        overlay = VoroNet(VoroNetConfig(
            n_max=64, seed=12, use_routing_cache=False))
        overlay.bulk_load([(0.1, 0.1), (0.9, 0.1), (0.5, 0.9), (0.5, 0.4)])
        for object_id in overlay.object_ids():
            overlay.routing_table(object_id)
        assert all(not variant for variant in overlay._routing_tables.values())
        assert_tables_match_views(overlay)

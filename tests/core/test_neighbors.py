"""Unit tests for neighbour views and close-neighbour discovery (Lemma 1)."""

import numpy as np
import pytest

from repro.core import VoroNet, VoroNetConfig
from repro.core.neighbors import (
    NeighborView,
    brute_force_close_neighbors,
    compute_close_neighbors,
)


class TestNeighborView:
    def test_routing_neighbors_excludes_self_and_back_links(self):
        view = NeighborView(
            object_id=1,
            voronoi=frozenset({1, 2, 3}),
            close=frozenset({4}),
            long_range=frozenset({5}),
            back_long_range=frozenset({6}),
        )
        assert view.routing_neighbors == {2, 3, 4, 5}
        assert 6 not in view.routing_neighbors

    def test_all_neighbors_includes_back_links(self):
        view = NeighborView(object_id=1, voronoi=frozenset({2}),
                            back_long_range=frozenset({6}))
        assert view.all_neighbors == {2, 6}

    def test_size_counts_all_sets(self):
        view = NeighborView(
            object_id=1,
            voronoi=frozenset({2, 3}),
            close=frozenset({4}),
            long_range=frozenset({5}),
            back_long_range=frozenset({6, 7}),
        )
        assert view.size == 6

    def test_empty_view(self):
        view = NeighborView(object_id=9)
        assert view.routing_neighbors == set()
        assert view.size == 0


class TestCloseNeighborDiscovery:
    @pytest.fixture
    def dense_overlay(self):
        """An overlay whose d_min is large enough for plenty of close pairs."""
        overlay = VoroNet(VoroNetConfig(n_max=40, seed=11))
        rng = np.random.default_rng(11)
        for p in rng.random((80, 2)):
            # allow_overflow is off but n_max=40 < 80: use a dedicated config.
            if len(overlay) >= 40:
                break
            overlay.insert(tuple(p))
        return overlay

    def test_discovery_matches_brute_force(self, dense_overlay):
        positions = dense_overlay.positions()
        d_min = dense_overlay.config.effective_d_min
        for oid in dense_overlay.object_ids():
            expected = brute_force_close_neighbors(positions, oid, d_min)
            assert dense_overlay.node(oid).close_neighbors == expected

    def test_compute_close_neighbors_lemma1(self, dense_overlay):
        """Recomputing via the Lemma 1 procedure matches the brute force."""
        positions = dense_overlay.positions()
        d_min = dense_overlay.config.effective_d_min
        for oid in dense_overlay.object_ids():
            computed = compute_close_neighbors(dense_overlay, oid)
            expected = brute_force_close_neighbors(positions, oid, d_min)
            assert computed == expected

    def test_symmetry(self, dense_overlay):
        for oid in dense_overlay.object_ids():
            for cn in dense_overlay.node(oid).close_neighbors:
                assert oid in dense_overlay.node(cn).close_neighbors

    def test_ablation_disables_close_neighbors(self):
        overlay = VoroNet(VoroNetConfig(n_max=40, seed=3,
                                        maintain_close_neighbors=False))
        rng = np.random.default_rng(3)
        for p in rng.random((40, 2)):
            overlay.insert(tuple(p))
        assert all(not overlay.node(oid).close_neighbors
                   for oid in overlay.object_ids())

    def test_brute_force_excludes_self(self):
        positions = {0: (0.5, 0.5), 1: (0.50001, 0.5)}
        assert brute_force_close_neighbors(positions, 0, 0.1) == {1}

"""Unit tests for the exception hierarchy."""

import pytest

from repro.core.errors import (
    DuplicateObjectError,
    EmptyOverlayError,
    ObjectNotFoundError,
    OverlayFullError,
    RoutingError,
    VoroNetError,
)


class TestHierarchy:
    @pytest.mark.parametrize("exc_class", [
        ObjectNotFoundError, DuplicateObjectError, OverlayFullError,
        EmptyOverlayError, RoutingError,
    ])
    def test_all_derive_from_voronet_error(self, exc_class):
        assert issubclass(exc_class, VoroNetError)

    def test_object_not_found_is_keyerror(self):
        assert issubclass(ObjectNotFoundError, KeyError)

    def test_duplicate_is_valueerror(self):
        assert issubclass(DuplicateObjectError, ValueError)

    def test_object_not_found_carries_id(self):
        error = ObjectNotFoundError(42)
        assert error.object_id == 42
        assert "42" in str(error)

    def test_overlay_full_carries_n_max(self):
        error = OverlayFullError(1000)
        assert error.n_max == 1000
        assert "1000" in str(error)

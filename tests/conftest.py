"""Shared fixtures of the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import VoroNet, VoroNetConfig
from repro.geometry import DelaunayTriangulation
from repro.utils.rng import RandomSource


@pytest.fixture
def rng() -> RandomSource:
    """A deterministic random source."""
    return RandomSource(12345)


@pytest.fixture
def numpy_rng() -> np.random.Generator:
    """A deterministic raw numpy generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def random_points(numpy_rng) -> list:
    """200 uniform random points in the unit square (deterministic)."""
    return [tuple(p) for p in numpy_rng.random((200, 2))]


@pytest.fixture
def triangulation(random_points) -> DelaunayTriangulation:
    """A triangulation of 200 random points."""
    dt = DelaunayTriangulation()
    for point in random_points:
        dt.insert(point)
    return dt


@pytest.fixture
def small_overlay(numpy_rng) -> VoroNet:
    """A 120-object overlay with one long link per object."""
    overlay = VoroNet(VoroNetConfig(n_max=500, seed=7))
    for point in numpy_rng.random((120, 2)):
        overlay.insert(tuple(point))
    return overlay


@pytest.fixture
def tiny_overlay() -> VoroNet:
    """A 5-object overlay with hand-placed positions."""
    overlay = VoroNet(VoroNetConfig(n_max=32, seed=3))
    for point in [(0.2, 0.2), (0.8, 0.2), (0.5, 0.8), (0.5, 0.45), (0.25, 0.7)]:
        overlay.insert(point)
    return overlay

"""CLI behaviour: formats, exit codes, and the self-lint acceptance gate."""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.lint.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]


def write_snippet(tmp_path: Path, source: str) -> Path:
    path = tmp_path / "repro" / "simulation" / "snippet.py"
    path.parent.mkdir(parents=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return tmp_path


DIRTY = """\
    class Hot:
        def __init__(self):
            self.value = 1
"""


def test_exit_zero_on_clean_tree(tmp_path, capsys):
    write_snippet(tmp_path, "VALUE = 1\n")
    assert main([str(tmp_path)]) == 0
    assert capsys.readouterr().out == ""


def test_exit_one_with_text_findings(tmp_path, capsys):
    target = write_snippet(tmp_path, DIRTY)
    assert main([str(target)]) == 1
    out = capsys.readouterr().out
    assert "SIM003" in out
    assert "simlint: 1 finding" in out


def test_json_format_is_machine_readable(tmp_path, capsys):
    target = write_snippet(tmp_path, DIRTY)
    assert main([str(target), "--format", "json"]) == 1
    findings = json.loads(capsys.readouterr().out)
    assert len(findings) == 1
    assert findings[0]["rule"] == "SIM003"
    assert findings[0]["line"] == 1


def test_select_and_ignore_flags(tmp_path):
    target = write_snippet(tmp_path, DIRTY)
    assert main([str(target), "--select", "SIM001,SIM002"]) == 0
    assert main([str(target), "--ignore", "SIM003"]) == 0
    assert main([str(target), "--select", "SIM003"]) == 1


def test_unknown_rule_code_is_a_usage_error(tmp_path, capsys):
    target = write_snippet(tmp_path, "VALUE = 1\n")
    assert main([str(target), "--select", "SIM999"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("SIM001", "SIM002", "SIM003", "SIM004", "SIM005", "SIM006"):
        assert code in out


def test_config_flag_reads_pyproject(tmp_path, capsys):
    target = write_snippet(tmp_path, DIRTY)
    pyproject = tmp_path / "pyproject.toml"
    pyproject.write_text('[tool.simlint]\nignore = ["SIM003"]\n',
                         encoding="utf-8")
    assert main([str(target), "--config", str(pyproject)]) == 0


def test_self_lint_shipped_tree_exits_zero():
    """Acceptance gate: ``python -m repro.lint src/`` is clean."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    result = subprocess.run(
        [sys.executable, "-m", "repro.lint", "src"],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True)
    assert result.returncode == 0, result.stdout + result.stderr

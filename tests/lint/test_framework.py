"""Framework-level tests: suppressions, config, file collection, driver."""

import textwrap
from pathlib import Path

import pytest

from repro.lint import (Finding, LintConfig, ParseError, RULES,
                        iter_source_files, parse_modules, run_lint)
from repro.lint.framework import ModuleInfo, scan_suppressions


def write(tmp_path: Path, name: str, source: str) -> Path:
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


# ----------------------------------------------------------------------
# findings
# ----------------------------------------------------------------------
def test_finding_render_and_dict():
    finding = Finding(path="a.py", line=3, col=5, rule="SIM002", message="boom")
    assert finding.render() == "a.py:3:5: SIM002 boom"
    assert finding.as_dict() == {"path": "a.py", "line": 3, "col": 5,
                                 "rule": "SIM002", "message": "boom"}


def test_findings_sort_by_location():
    first = Finding(path="a.py", line=1, col=1, rule="SIM003", message="x")
    later = Finding(path="a.py", line=9, col=1, rule="SIM001", message="x")
    other = Finding(path="b.py", line=1, col=1, rule="SIM001", message="x")
    assert sorted([other, later, first]) == [first, later, other]


# ----------------------------------------------------------------------
# suppressions
# ----------------------------------------------------------------------
def test_scan_suppressions_blanket_and_coded():
    source = (
        "x = 1  # simlint: ignore\n"
        "y = 2  # simlint: ignore[SIM001]\n"
        "z = 3  # simlint: ignore[SIM001, SIM002]\n"
        "plain = 4\n"
    )
    suppressions = scan_suppressions(source)
    assert suppressions[1] is None
    assert suppressions[2] == frozenset({"SIM001"})
    assert suppressions[3] == frozenset({"SIM001", "SIM002"})
    assert 4 not in suppressions


def test_suppression_with_trailing_justification():
    source = "class C:  # simlint: ignore[SIM003] — one per experiment\n"
    assert scan_suppressions(source)[1] == frozenset({"SIM003"})


def test_module_suppressed_lookup(tmp_path):
    path = write(tmp_path, "m.py", "x = 1  # simlint: ignore[SIM002]\n")
    module = ModuleInfo.parse(path)
    assert module.suppressed("SIM002", 1)
    assert not module.suppressed("SIM003", 1)
    assert not module.suppressed("SIM002", 2)


# ----------------------------------------------------------------------
# config
# ----------------------------------------------------------------------
def test_from_pyproject_missing_file_gives_defaults(tmp_path):
    config = LintConfig.from_pyproject(tmp_path / "nope.toml")
    assert config.paths == ("src",)
    assert "repro/simulation" in config.determinism_paths


def test_from_pyproject_overrides_with_dashes(tmp_path):
    pyproject = write(tmp_path, "pyproject.toml", """\
        [tool.simlint]
        paths = ["lib"]
        determinism-paths = ["lib/sim"]
        slots-exempt = ["BigCoordinator"]
    """)
    config = LintConfig.from_pyproject(pyproject)
    assert config.paths == ("lib",)
    assert config.determinism_paths == ("lib/sim",)
    assert config.slots_exempt == frozenset({"BigCoordinator"})


def test_from_pyproject_rejects_unknown_key(tmp_path):
    pyproject = write(tmp_path, "pyproject.toml", """\
        [tool.simlint]
        not-a-key = true
    """)
    with pytest.raises(ParseError, match="unknown"):
        LintConfig.from_pyproject(pyproject)


def test_active_rules_select_ignore_and_validation():
    config = LintConfig()
    assert config.active_rules() == frozenset(RULES)
    assert config.active_rules(select=["SIM002"]) == frozenset({"SIM002"})
    assert "SIM002" not in config.active_rules(ignore=["SIM002"])
    with pytest.raises(ParseError, match="unknown rule"):
        config.active_rules(select=["SIM999"])


def test_repo_pyproject_parses():
    repo_pyproject = Path(__file__).resolve().parents[2] / "pyproject.toml"
    config = LintConfig.from_pyproject(repo_pyproject)
    assert config.paths == ("src",)


# ----------------------------------------------------------------------
# file collection and the driver
# ----------------------------------------------------------------------
def test_iter_source_files_skips_hidden_and_pycache(tmp_path):
    write(tmp_path, "pkg/a.py", "x = 1\n")
    write(tmp_path, "pkg/__pycache__/b.py", "x = 1\n")
    write(tmp_path, "pkg/.hidden/c.py", "x = 1\n")
    files = iter_source_files([tmp_path])
    assert [f.name for f in files] == ["a.py"]


def test_iter_source_files_missing_path_raises(tmp_path):
    with pytest.raises(ParseError, match="no such file"):
        iter_source_files([tmp_path / "missing"])


def test_parse_modules_reports_syntax_error_as_sim000(tmp_path):
    path = write(tmp_path, "broken.py", "def f(:\n")
    modules, errors = parse_modules([path])
    assert modules == []
    assert len(errors) == 1
    assert errors[0].rule == "SIM000"


def test_sim000_is_not_suppressible(tmp_path):
    write(tmp_path, "broken.py", "def f(:  # simlint: ignore\n")
    findings = run_lint([tmp_path])
    assert [f.rule for f in findings] == ["SIM000"]


def test_run_lint_clean_tree(tmp_path):
    write(tmp_path, "ok.py", "VALUE = 1\n")
    assert run_lint([tmp_path]) == []

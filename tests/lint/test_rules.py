"""Fixture-snippet tests: positive, negative and suppressed per rule."""

import textwrap
from pathlib import Path
from typing import List

from repro.lint import run_lint


def lint_snippet(tmp_path: Path, source: str, *,
                 name: str = "repro/simulation/snippet.py",
                 select=None) -> List[str]:
    """Lint one dedented snippet; returns ``rule:line`` strings."""
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    findings = run_lint([tmp_path], select=select)
    return [f"{f.rule}:{f.line}" for f in findings]


# ----------------------------------------------------------------------
# SIM001 — epoch contract
# ----------------------------------------------------------------------
SIM001 = ["SIM001"]


def test_sim001_positive_mutation_without_bump(tmp_path):
    found = lint_snippet(tmp_path, """\
        class Node:
            def _on_region_update(self, message):
                self.voronoi[1] = message
    """, select=SIM001)
    assert found == ["SIM001:3"]


def test_sim001_positive_branch_missing_bump(tmp_path):
    # The bump in the if-branch does not cover the else-branch mutation.
    found = lint_snippet(tmp_path, """\
        class Node:
            def _on_close_declare(self, message):
                if message:
                    self.close[1] = message
                    self.touch_view()
                else:
                    self.close.pop(2, None)
    """, select=SIM001)
    assert found == ["SIM001:7"]


def test_sim001_positive_mutating_method_call(tmp_path):
    found = lint_snippet(tmp_path, """\
        class Node:
            def handle_join(self, message):
                self.long_links.append(message)
    """, select=SIM001)
    assert found == ["SIM001:3"]


def test_sim001_negative_bump_after_mutation(tmp_path):
    found = lint_snippet(tmp_path, """\
        class Node:
            def _on_region_update(self, message):
                self.voronoi[1] = message
                self.touch_view()
    """, select=SIM001)
    assert found == []


def test_sim001_negative_changed_flag_idiom(tmp_path):
    found = lint_snippet(tmp_path, """\
        class Node:
            def _on_view_scrub(self, message):
                changed = False
                if message:
                    self.voronoi.pop(1, None)
                    changed = True
                if changed:
                    self.touch_view()
    """, select=SIM001)
    assert found == []


def test_sim001_negative_direct_epoch_increment(tmp_path):
    found = lint_snippet(tmp_path, """\
        class Node:
            def _on_backlink_remove(self, message):
                self.back_links.pop(message, None)
                self.view_epoch += 1
    """, select=SIM001)
    assert found == []


def test_sim001_negative_alias_mutation_then_bump(tmp_path):
    found = lint_snippet(tmp_path, """\
        class Node:
            def _on_long_link_retarget(self, message):
                link = self.long_links[0]
                link.neighbor = message
                self.touch_view()
    """, select=SIM001)
    assert found == []


def test_sim001_positive_alias_mutation_without_bump(tmp_path):
    found = lint_snippet(tmp_path, """\
        class Node:
            def _on_long_link_retarget(self, message):
                link = self.long_links[0]
                link.neighbor = message
    """, select=SIM001)
    assert found == ["SIM001:4"]


def test_sim001_negative_non_handler_method(tmp_path):
    found = lint_snippet(tmp_path, """\
        class Node:
            def rebuild(self):
                self.voronoi = {}
    """, select=SIM001)
    assert found == []


def test_sim001_suppressed(tmp_path):
    found = lint_snippet(tmp_path, """\
        class Node:
            def _on_region_update(self, message):
                self.voronoi[1] = message  # simlint: ignore[SIM001]
    """, select=SIM001)
    assert found == []


# ----------------------------------------------------------------------
# SIM002 — determinism
# ----------------------------------------------------------------------
SIM002 = ["SIM002"]


def test_sim002_positive_global_random(tmp_path):
    found = lint_snippet(tmp_path, """\
        import random

        def pick():
            return random.random()
    """, select=SIM002)
    assert found == ["SIM002:4"]


def test_sim002_positive_unseeded_generators(tmp_path):
    found = lint_snippet(tmp_path, """\
        import random
        import numpy as np
        from repro.utils.rng import RandomSource

        A = random.Random()
        B = np.random.default_rng()
        C = RandomSource()
    """, select=SIM002)
    assert found == ["SIM002:5", "SIM002:6", "SIM002:7"]


def test_sim002_negative_seeded_generators(tmp_path):
    found = lint_snippet(tmp_path, """\
        import random
        import numpy as np
        from repro.utils.rng import RandomSource

        A = random.Random(7)
        B = np.random.default_rng(7)
        C = RandomSource(7)
    """, select=SIM002)
    assert found == []


def test_sim002_positive_wall_clock(tmp_path):
    found = lint_snippet(tmp_path, """\
        import time
        import datetime

        def stamp():
            return time.time(), datetime.datetime.now()
    """, select=SIM002)
    assert found == ["SIM002:5", "SIM002:5"]


def test_sim002_positive_set_iteration(tmp_path):
    found = lint_snippet(tmp_path, """\
        def spread(node):
            peers = set(node.neighbors)
            for peer in peers:
                node.send(peer)
    """, select=SIM002)
    assert found == ["SIM002:3"]


def test_sim002_positive_set_annotated_param(tmp_path):
    found = lint_snippet(tmp_path, """\
        from typing import Set

        def spread(peers: Set[int]):
            for peer in peers:
                pass
    """, select=SIM002)
    assert found == ["SIM002:4"]


def test_sim002_negative_sorted_iteration(tmp_path):
    found = lint_snippet(tmp_path, """\
        def spread(node):
            peers = set(node.neighbors)
            for peer in sorted(peers):
                node.send(peer)
    """, select=SIM002)
    assert found == []


def test_sim002_negative_set_comprehension_derivation(tmp_path):
    # Set-to-set derivations are order-independent and exempt.
    found = lint_snippet(tmp_path, """\
        def scrub(node, crashed):
            stale = {c for c in node.close if c in crashed}
            node.close -= stale
    """, select=SIM002)
    assert found == []


def test_sim002_negative_rebound_variable(tmp_path):
    # After rebinding to a list the name is no longer set-typed.
    found = lint_snippet(tmp_path, """\
        def spread(node):
            peers = set(node.neighbors)
            peers = sorted(peers)
            for peer in peers:
                node.send(peer)
    """, select=SIM002)
    assert found == []


def test_sim002_out_of_scope_path_not_linted(tmp_path):
    found = lint_snippet(tmp_path, """\
        import random

        def pick():
            return random.random()
    """, name="repro/experiments/runner.py", select=SIM002)
    assert found == []


def test_sim002_suppressed(tmp_path):
    found = lint_snippet(tmp_path, """\
        from repro.utils.rng import RandomSource

        RNG = RandomSource()  # simlint: ignore[SIM002]
    """, select=SIM002)
    assert found == []


# ----------------------------------------------------------------------
# SIM003 — slots
# ----------------------------------------------------------------------
SIM003 = ["SIM003"]


def test_sim003_positive_unslotted_class(tmp_path):
    found = lint_snippet(tmp_path, """\
        class Hot:
            def __init__(self):
                self.value = 1
    """, select=SIM003)
    assert found == ["SIM003:1"]


def test_sim003_negative_slotted_class(tmp_path):
    found = lint_snippet(tmp_path, """\
        class Hot:
            __slots__ = ("value",)

            def __init__(self):
                self.value = 1
    """, select=SIM003)
    assert found == []


def test_sim003_negative_dataclass(tmp_path):
    found = lint_snippet(tmp_path, """\
        from dataclasses import dataclass

        @dataclass
        class Report:
            value: int = 0
    """, select=SIM003)
    assert found == []


def test_sim003_negative_no_init_attrs(tmp_path):
    found = lint_snippet(tmp_path, """\
        class Stateless:
            def compute(self):
                return 1
    """, select=SIM003)
    assert found == []


def test_sim003_out_of_scope_path_not_linted(tmp_path):
    found = lint_snippet(tmp_path, """\
        class Cold:
            def __init__(self):
                self.value = 1
    """, name="repro/analysis/report.py", select=SIM003)
    assert found == []


def test_sim003_suppressed(tmp_path):
    found = lint_snippet(tmp_path, """\
        class Coordinator:  # simlint: ignore[SIM003] — one per experiment
            def __init__(self):
                self.value = 1
    """, select=SIM003)
    assert found == []


# ----------------------------------------------------------------------
# SIM004 — dispatch consistency
# ----------------------------------------------------------------------
SIM004 = ["SIM004"]


def test_sim004_positive_sent_but_unhandled(tmp_path):
    found = lint_snippet(tmp_path, """\
        class Node:
            def _on_ping(self, message):
                self.send(self, message.sender, "PONG")

            def _on_pong(self, message):
                pass

        def probe(node, peer):
            node.send(node, peer, "PING")
            node.send(node, peer, "HEARTBEAT")
    """, select=SIM004)
    assert found == ["SIM004:10"]


def test_sim004_positive_handled_but_never_sent(tmp_path):
    found = lint_snippet(tmp_path, """\
        class Node:
            def _on_ping(self, message):
                pass

            def _on_pong(self, message):
                pass

        def probe(node, peer):
            node.send(node, peer, "PING")
    """, select=SIM004)
    assert found == ["SIM004:5"]


def test_sim004_negative_balanced_kinds(tmp_path):
    found = lint_snippet(tmp_path, """\
        class Node:
            def _on_ping(self, message):
                self.send(self, message.sender, "PONG")

            def _on_pong(self, message):
                pass

        def probe(node, peer):
            node.send(node, peer, kind="PING")
    """, select=SIM004)
    assert found == []


def test_sim004_message_construction_counts_as_send(tmp_path):
    found = lint_snippet(tmp_path, """\
        class Node:
            def _on_query(self, message):
                pass

        def ask(network, a, b):
            network.deliver(Message(a, b, "QUERY"))
    """, select=SIM004)
    assert found == []


def test_sim004_skips_programs_without_handlers(tmp_path):
    # Linting a subset with no _on_* handlers must not flag sent kinds.
    found = lint_snippet(tmp_path, """\
        def probe(node, peer):
            node.send(node, peer, "PING")
    """, select=SIM004)
    assert found == []


def test_sim004_suppressed(tmp_path):
    found = lint_snippet(tmp_path, """\
        class Node:
            def _on_ping(self, message):
                pass

            def _on_pong(self, message):  # simlint: ignore[SIM004]
                pass

        def probe(node, peer):
            node.send(node, peer, "PING")
    """, select=SIM004)
    assert found == []


# ----------------------------------------------------------------------
# SIM005 — stats accounting
# ----------------------------------------------------------------------
SIM005 = ["SIM005"]

STATS_DEF = """\
    class OverlayStats:
        joins: int = 0
        routes: int = 0

        def reset(self):
            self.joins = 0
            self.routes = 0
"""


def test_sim005_positive_unknown_counter(tmp_path):
    found = lint_snippet(tmp_path, STATS_DEF + """\

        class Overlay:
            def route(self):
                self._stats.rouets += 1
    """, select=SIM005)
    assert found == ["SIM005:11"]


def test_sim005_positive_unknown_record_call(tmp_path):
    found = lint_snippet(tmp_path, STATS_DEF + """\

        class Overlay:
            def join(self):
                self.stats.jonis.record(2)
    """, select=SIM005)
    assert found == ["SIM005:11"]


def test_sim005_negative_known_counter(tmp_path):
    found = lint_snippet(tmp_path, STATS_DEF + """\

        class Overlay:
            def route(self):
                self._stats.routes += 1
                self.stats.reset()
    """, select=SIM005)
    assert found == []


def test_sim005_reads_are_not_flagged(tmp_path):
    found = lint_snippet(tmp_path, STATS_DEF + """\

        def summarize(overlay):
            return overlay.stats.anything_at_all
    """, select=SIM005)
    assert found == []


def test_sim005_skips_programs_without_stats_classes(tmp_path):
    found = lint_snippet(tmp_path, """\
        class Overlay:
            def route(self):
                self._stats.rouets += 1
    """, select=SIM005)
    assert found == []


def test_sim005_suppressed(tmp_path):
    found = lint_snippet(tmp_path, STATS_DEF + """\

        class Overlay:
            def route(self):
                self._stats.shadow_counter += 1  # simlint: ignore[SIM005]
    """, select=SIM005)
    assert found == []


# ----------------------------------------------------------------------
# SIM006 — shard epoch contract
# ----------------------------------------------------------------------
SIM006 = ["SIM006"]
CORE = "repro/core/snippet.py"


def test_sim006_positive_mutator_call_without_bump(tmp_path):
    found = lint_snippet(tmp_path, """\
        def integrate(overlay, object_id):
            node = overlay.node(object_id)
            node.add_close_neighbor(7)
    """, name=CORE, select=SIM006)
    assert found == ["SIM006:3"]


def test_sim006_positive_container_mutation_without_bump(tmp_path):
    found = lint_snippet(tmp_path, """\
        def reset(overlay, object_id):
            overlay.node(object_id).long_links.clear()
    """, name=CORE, select=SIM006)
    assert found == ["SIM006:2"]


def test_sim006_positive_branch_missing_bump(tmp_path):
    # The bump in the if-branch does not cover the else-branch mutation.
    found = lint_snippet(tmp_path, """\
        def churn(overlay, node, fast):
            if fast:
                node.set_long_link(0, (0.5, 0.5), 3)
                overlay.invalidate_routing_tables([3])
            else:
                node.retarget_long_link(0, 4)
    """, name=CORE, select=SIM006)
    assert found == ["SIM006:6"]


def test_sim006_negative_bump_after_mutation(tmp_path):
    found = lint_snippet(tmp_path, """\
        def integrate(overlay, object_id):
            node = overlay.node(object_id)
            node.add_close_neighbor(7)
            overlay.invalidate_routing_tables([object_id, 7])
    """, name=CORE, select=SIM006)
    assert found == []


def test_sim006_negative_loop_mutation_bump_after_loop(tmp_path):
    found = lint_snippet(tmp_path, """\
        def register(overlay, node, declared):
            for neighbor_id in declared:
                node.add_close_neighbor(neighbor_id)
            overlay.invalidate_routing_tables(declared)
    """, name=CORE, select=SIM006)
    assert found == []


def test_sim006_negative_store_bump_discharges(tmp_path):
    found = lint_snippet(tmp_path, """\
        def surgery(store, node):
            node.close_neighbors.add(9)
            store.bump_object_ids([9])
    """, name=CORE, select=SIM006)
    assert found == []


def test_sim006_negative_back_links_exempt(tmp_path):
    # BLRn is not routed on: back-link churn needs no invalidation.
    found = lint_snippet(tmp_path, """\
        def hand_over(node, source, index, target):
            node.add_back_link(source, index, target)
            node.back_links.clear()
    """, name=CORE, select=SIM006)
    assert found == []


def test_sim006_negative_self_receiver_is_primitive_mutator(tmp_path):
    # ObjectNode's own mutator bodies cannot reach the overlay; the
    # contract binds their call sites instead.
    found = lint_snippet(tmp_path, """\
        class ObjectNode:
            def add_close_neighbor(self, object_id):
                self.close_neighbors.add(object_id)
    """, name=CORE, select=SIM006)
    assert found == []


def test_sim006_out_of_scope_paths_ignored(tmp_path):
    found = lint_snippet(tmp_path, """\
        def integrate(overlay, node):
            node.add_close_neighbor(7)
    """, name="repro/analysis/snippet.py", select=SIM006)
    assert found == []


def test_sim006_nested_def_checked_separately(tmp_path):
    # A bump in the enclosing function does not run after the nested
    # def's mutation; the nested function is held to the contract alone.
    found = lint_snippet(tmp_path, """\
        def outer(overlay, node):
            def worker():
                node.retarget_long_link(0, 4)
            overlay.invalidate_routing_tables()
            return worker
    """, name=CORE, select=SIM006)
    assert found == ["SIM006:3"]


def test_sim006_suppressed(tmp_path):
    found = lint_snippet(tmp_path, """\
        def integrate(overlay, node):
            node.add_close_neighbor(7)  # simlint: ignore[SIM006]
    """, name=CORE, select=SIM006)
    assert found == []
